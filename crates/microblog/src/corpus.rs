//! The corpus: users, tweets and the indexes the expert detector needs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::arena::CorpusArena;
use crate::index::{intersect, union_sorted, PostingsIndex};
use crate::intern::SymbolTable;
use crate::tokenize::tokenize;
use crate::types::{TokenId, Tweet, TweetId, User, UserId};
use std::cell::RefCell;
use std::collections::HashMap;

/// An indexed microblog corpus.
///
/// Besides the raw tables, the corpus maintains:
/// * a corpus-wide symbol table interning every token to a dense
///   [`TokenId`] (tokens are interned once at build time; the online
///   path never hashes a tweet token again),
/// * each tweet's interned tokens in a flat CSR arena
///   ([`Corpus::tweet_tokens`]),
/// * a CSR token inverted index ([`PostingsIndex`]) for all-terms query
///   matching (§3),
/// * per-user totals (#tweets, #mentions received, #retweets received) —
///   the denominators of the TS / MI / RI features,
/// * an LSM-style **delta segment** for streaming ingestion: tweets
///   appended after the last (re)build land in per-token delta posting
///   lists instead of the immutable CSR arena, deletions become
///   tombstones, and the read path merges base + delta and filters
///   tombstones before anything is ranked. [`Corpus::compact`] folds the
///   delta back into a fresh base, bit-identical to a from-scratch
///   rebuild of the same logical corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    users: Vec<User>,
    tweets: Vec<Tweet>,
    /// Token text ↔ dense id.
    symbols: SymbolTable,
    /// Tweet `t`'s tokens (in text order, duplicates kept) are
    /// `token_ids[token_offsets[t] .. token_offsets[t + 1]]`. Either
    /// owned (build / decode-copy) or borrowed zero-copy from a loaded
    /// segment buffer; appends materialize them copy-on-write.
    token_offsets: CorpusArena,
    token_ids: CorpusArena,
    /// token id → sorted tweet ids containing it (base segment only).
    postings: PostingsIndex,
    /// handle → user id.
    handle_index: HashMap<String, UserId>,
    /// Per-user totals.
    tweets_by_user: Vec<u64>,
    mentions_of_user: Vec<u64>,
    retweets_of_user: Vec<u64>,
    /// Tweets `[0, base_tweets)` are covered by the CSR postings; later
    /// ids live in `delta_postings`. Appended ids are always larger than
    /// every base id, so base ++ delta concatenation stays sorted.
    base_tweets: u32,
    /// Tokens `[0, base_tokens)` have CSR posting lists; tokens interned
    /// by appends are delta-only until compaction.
    base_tokens: u32,
    /// token id → sorted tweet ids appended since the last compaction.
    delta_postings: HashMap<TokenId, Vec<TweetId>>,
    /// Sorted ids of logically deleted tweets (filtered from every match
    /// set; physically removed by compaction).
    tombstones: Vec<TweetId>,
}

impl Corpus {
    /// Build an indexed corpus from users and tweets. Tweet and user ids
    /// must equal their indices. Tokenization and interning happen here —
    /// this is the only place tweet text is ever tokenized.
    pub fn new(users: Vec<User>, tweets: Vec<Tweet>) -> Corpus {
        let mut handle_index = HashMap::with_capacity(users.len());
        for u in &users {
            handle_index.insert(u.handle.clone(), u.id);
        }
        let mut tweets_by_user = vec![0u64; users.len()];
        let mut mentions_of_user = vec![0u64; users.len()];
        let mut retweets_of_user = vec![0u64; users.len()];
        let mut symbols = SymbolTable::new();
        let mut token_offsets = Vec::with_capacity(tweets.len() + 1);
        let mut token_ids: Vec<TokenId> = Vec::new();
        token_offsets.push(0);
        for (index, t) in tweets.iter().enumerate() {
            debug_assert_eq!(
                t.id as usize, index,
                "tweet ids must equal their index for the per-user total vectors"
            );
            tweets_by_user[t.author as usize] += 1;
            for &m in &t.mentions {
                mentions_of_user[m as usize] += 1;
            }
            if let Some(orig) = t.retweet_of {
                retweets_of_user[orig as usize] += 1;
            }
            for token in tokenize(&t.text) {
                token_ids.push(symbols.intern(&token));
            }
            token_offsets.push(token_ids.len() as u32);
        }
        let postings = PostingsIndex::build(
            symbols.len(),
            token_offsets.windows(2).map(|w| &token_ids[w[0] as usize..w[1] as usize]),
        );
        let base_tweets = tweets.len() as u32;
        let base_tokens = symbols.len() as u32;
        Corpus {
            users,
            tweets,
            symbols,
            token_offsets: CorpusArena::Owned(token_offsets),
            token_ids: CorpusArena::Owned(token_ids),
            postings,
            handle_index,
            tweets_by_user,
            mentions_of_user,
            retweets_of_user,
            base_tweets,
            base_tokens,
            delta_postings: HashMap::new(),
            tombstones: Vec::new(),
        }
    }

    /// Reassemble a corpus from pre-built interned parts (the binary load
    /// path — no re-tokenization, no postings rebuild). Only the two small
    /// hash indexes (handle → user, token text → id) are reconstructed.
    /// The token arenas and postings may be owned or zero-copy views.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        users: Vec<User>,
        tweets: Vec<Tweet>,
        symbols: SymbolTable,
        token_offsets: CorpusArena,
        token_ids: CorpusArena,
        postings: PostingsIndex,
        tweets_by_user: Vec<u64>,
        mentions_of_user: Vec<u64>,
        retweets_of_user: Vec<u64>,
    ) -> Corpus {
        let mut handle_index = HashMap::with_capacity(users.len());
        for u in &users {
            handle_index.insert(u.handle.clone(), u.id);
        }
        let base_tweets = tweets.len() as u32;
        let base_tokens = symbols.len() as u32;
        Corpus {
            users,
            tweets,
            symbols,
            token_offsets,
            token_ids,
            postings,
            handle_index,
            tweets_by_user,
            mentions_of_user,
            retweets_of_user,
            base_tweets,
            base_tokens,
            delta_postings: HashMap::new(),
            tombstones: Vec::new(),
        }
    }

    /// All users.
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// All tweets.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// One user.
    pub fn user(&self, id: UserId) -> &User {
        &self.users[id as usize]
    }

    /// One tweet.
    pub fn tweet(&self, id: TweetId) -> &Tweet {
        &self.tweets[id as usize]
    }

    /// A tweet's interned tokens, in text order (duplicates kept).
    pub fn tweet_tokens(&self, id: TweetId) -> &[TokenId] {
        let t = id as usize;
        let offsets = self.token_offsets.as_slice();
        &self.token_ids.as_slice()[offsets[t] as usize..offsets[t + 1] as usize]
    }

    /// The id of a token text, if interned anywhere in the corpus.
    pub fn token_id(&self, text: &str) -> Option<TokenId> {
        self.symbols.get(text)
    }

    /// The text of an interned token.
    pub fn token_text(&self, id: TokenId) -> &str {
        self.symbols.text(id)
    }

    /// Distinct tokens in the corpus.
    pub fn num_tokens(&self) -> usize {
        self.symbols.len()
    }

    /// The sorted **base-segment** tweet ids containing `token`. Tweets
    /// appended since the last compaction live in the delta segment and
    /// are not visible here; the query path ([`Corpus::match_query`],
    /// [`Corpus::match_terms`]) merges both segments. Tokens first
    /// interned by an append have no base list yet and return empty.
    pub fn postings(&self, token: TokenId) -> &[TweetId] {
        if token >= self.base_tokens {
            return &[];
        }
        self.postings.postings(token)
    }

    /// Resolve a handle to a user id.
    pub fn user_by_handle(&self, handle: &str) -> Option<UserId> {
        self.handle_index.get(handle).copied()
    }

    /// Total tweets authored by `user`.
    pub fn tweets_by(&self, user: UserId) -> u64 {
        self.tweets_by_user[user as usize]
    }

    /// Total mentions received by `user`.
    pub fn mentions_of(&self, user: UserId) -> u64 {
        self.mentions_of_user[user as usize]
    }

    /// Total retweets received by `user`.
    pub fn retweets_of(&self, user: UserId) -> u64 {
        self.retweets_of_user[user as usize]
    }

    /// Tweets matching a query: the tweet must contain **all** the query's
    /// tokens after lower-casing (§3). A sorted-postings intersection
    /// starting from the rarest token; a single-token query borrows its
    /// posting list and copies it only once, at the end.
    pub fn match_query(&self, query: &str) -> Vec<TweetId> {
        let matched = match self.match_term(query) {
            TermMatch::Borrowed(list) => list.to_vec(),
            TermMatch::Owned(list) => list,
            TermMatch::Pooled(buf) => buf.take(),
        };
        self.without_tombstones(matched)
    }

    /// Like [`Corpus::match_query`], borrowing the posting list outright
    /// when no intersection shrinks it (single-token queries — the common
    /// case for expansion terms).
    pub(crate) fn match_term(&self, term: &str) -> TermMatch<'_> {
        // Fast path: a term already in normalized form — space-separated
        // ASCII lowercase alphanumeric words, which `tokenize` maps to
        // themselves — feeds the symbol table directly. Expansion terms
        // ("draft", "sarah palin news") are stored in exactly this form,
        // so the tokenizer's per-term `Vec<String>` never materializes on
        // the expansion-union path; anything else (sigils, punctuation,
        // uppercase, non-ASCII) takes the full tokenizer below.
        let normalized = term
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b' ');
        let mut lists: Vec<TermMatch<'_>>;
        if normalized {
            lists = Vec::new();
            for word in term.split_ascii_whitespace() {
                match self.symbols.get(word) {
                    Some(id) => lists.push(self.merged_postings(id)),
                    None => return TermMatch::Owned(Vec::new()),
                }
            }
        } else {
            let tokens = tokenize(term);
            lists = Vec::with_capacity(tokens.len());
            for token in &tokens {
                match self.symbols.get(token) {
                    Some(id) => lists.push(self.merged_postings(id)),
                    None => return TermMatch::Owned(Vec::new()),
                }
            }
        }
        match lists.len() {
            0 => TermMatch::Owned(Vec::new()),
            1 => lists.remove(0),
            _ => {
                let mut slices: Vec<&[TweetId]> =
                    lists.iter().map(TermMatch::as_slice).collect();
                slices.sort_by_key(|list| list.len());
                let mut result = intersect(slices[0], slices[1]);
                for list in &slices[2..] {
                    if result.is_empty() {
                        break;
                    }
                    result = intersect(&result, list);
                }
                TermMatch::Owned(result)
            }
        }
    }

    /// Base ++ delta posting list for one token. Every delta id is larger
    /// than every base id, so simple concatenation is the k-way merge.
    /// When the token genuinely has both segments the concatenation lands
    /// in a pooled per-thread scratch buffer ([`PooledBuf`]) instead of a
    /// fresh allocation — the base+delta read overhead measured in
    /// BENCH_ingest.json was partly this per-term, per-query `Vec`.
    fn merged_postings(&self, token: TokenId) -> TermMatch<'_> {
        let base: &[TweetId] = if token < self.base_tokens {
            self.postings.postings(token)
        } else {
            &[]
        };
        match self.delta_postings.get(&token) {
            None => TermMatch::Borrowed(base),
            Some(delta) if base.is_empty() => TermMatch::Borrowed(delta),
            Some(delta) => {
                let mut buf = PooledBuf::checkout(base.len() + delta.len());
                buf.0.extend_from_slice(base);
                buf.0.extend_from_slice(delta);
                TermMatch::Pooled(buf)
            }
        }
    }

    /// Drop tombstoned ids from a sorted match set — the last step before
    /// any match set escapes to ranking.
    pub(crate) fn without_tombstones(&self, mut matched: Vec<TweetId>) -> Vec<TweetId> {
        if !self.tombstones.is_empty() {
            matched.retain(|id| self.tombstones.binary_search(id).is_err());
        }
        matched
    }

    /// Tweets matching **any** of `terms` (each term itself conjunctive,
    /// as in [`Corpus::match_query`]): a k-way merge over the sorted
    /// per-term match sets. This is the expansion-union hot path —
    /// single-token terms contribute borrowed postings slices, so the
    /// only allocations are the intersections that actually shrink and
    /// the final merged result.
    pub fn match_terms(&self, terms: &[String]) -> Vec<TweetId> {
        let matches: Vec<TermMatch<'_>> =
            terms.iter().map(|term| self.match_term(term)).collect();
        let lists: Vec<&[TweetId]> = matches
            .iter()
            .map(TermMatch::as_slice)
            .filter(|list| !list.is_empty())
            .collect();
        self.without_tombstones(union_sorted(&lists))
    }

    /// [`Corpus::match_terms`] with scatter-gather over the postings
    /// shards: terms are grouped by the shard holding their first token,
    /// each group's postings traversal + partial union runs as one task
    /// on the shared worker pool, and the partials are merged in shard
    /// order at the gather. A union is a set operation over sorted
    /// deduplicated lists, so the result is **bit-identical** to the
    /// serial path at every shard count and worker count; the grouping
    /// only distributes work (a multi-token term may still read postings
    /// across shard boundaries — all shards are in-process).
    pub fn match_terms_with(&self, terms: &[String], workers: usize) -> Vec<TweetId> {
        let k = self.postings.shard_count();
        if workers <= 1 || k <= 1 || terms.len() <= 1 {
            return self.match_terms(terms);
        }
        let mut groups: Vec<Vec<&String>> = vec![Vec::new(); k];
        for term in terms {
            groups[self.term_home_shard(term)].push(term);
        }
        let tasks: Vec<_> = groups
            .iter()
            .filter(|group| !group.is_empty())
            .map(|group| {
                move || {
                    let matches: Vec<TermMatch<'_>> =
                        group.iter().map(|term| self.match_term(term)).collect();
                    let lists: Vec<&[TweetId]> = matches
                        .iter()
                        .map(TermMatch::as_slice)
                        .filter(|list| !list.is_empty())
                        .collect();
                    union_sorted(&lists)
                }
            })
            .collect();
        let partials = esharp_par::shared_pool(workers).run(tasks);
        let lists: Vec<&[TweetId]> = partials
            .iter()
            .map(Vec::as_slice)
            .filter(|list| !list.is_empty())
            .collect();
        self.without_tombstones(union_sorted(&lists))
    }

    /// Batch form of [`Corpus::match_terms_with`]: one entry of
    /// `expansions` per query, one result per query, in order. The
    /// planner dedups terms across the whole batch (first-seen order),
    /// performs each distinct term's posting-list traversal **once** —
    /// scatter-gathered over the postings shards exactly like the
    /// single-query path — and then assembles every query's union from
    /// the memoized per-term match sets.
    ///
    /// Each query's result is **bit-identical** to
    /// `match_terms_with(&expansions[i], workers)`: a union over sorted
    /// deduplicated lists is a set operation, so sharing the per-term
    /// traversals across queries cannot change any query's answer
    /// (property-tested in `proptest_batch`).
    pub fn match_terms_batch_with(
        &self,
        expansions: &[Vec<String>],
        workers: usize,
    ) -> Vec<Vec<TweetId>> {
        // Distinct terms across the batch, first-seen order — the
        // cross-query sharing the Zipf query mix makes common.
        let mut term_index: HashMap<&str, usize> = HashMap::new();
        let mut distinct: Vec<&String> = Vec::new();
        for terms in expansions {
            for term in terms {
                if !term_index.contains_key(term.as_str()) {
                    term_index.insert(term.as_str(), distinct.len());
                    distinct.push(term);
                }
            }
        }
        let k = self.postings.shard_count();
        let matches: Vec<TermMatch<'_>> = if workers <= 1 || k <= 1 || distinct.len() <= 1 {
            distinct.iter().map(|term| self.match_term(term)).collect()
        } else {
            // Group distinct terms by home shard and traverse each
            // group's postings as one task on the shared pool, then
            // scatter the per-term match sets back into memo order.
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (i, term) in distinct.iter().enumerate() {
                groups[self.term_home_shard(term)].push(i);
            }
            let distinct_ref = &distinct;
            let tasks: Vec<_> = groups
                .iter()
                .filter(|group| !group.is_empty())
                .map(|group| {
                    move || {
                        group
                            .iter()
                            .map(|&i| (i, self.match_term(distinct_ref[i])))
                            .collect::<Vec<_>>()
                    }
                })
                .collect();
            let mut memo: Vec<Option<TermMatch<'_>>> =
                (0..distinct.len()).map(|_| None).collect();
            for part in esharp_par::shared_pool(workers).run(tasks) {
                for (i, matched) in part {
                    memo[i] = Some(matched);
                }
            }
            memo.into_iter()
                .map(|m| m.unwrap_or(TermMatch::Owned(Vec::new())))
                .collect()
        };
        expansions
            .iter()
            .map(|terms| {
                let lists: Vec<&[TweetId]> = terms
                    .iter()
                    .map(|term| matches[term_index[term.as_str()]].as_slice())
                    .filter(|list| !list.is_empty())
                    .collect();
                self.without_tombstones(union_sorted(&lists))
            })
            .collect()
    }

    /// The shard a term's postings traversal is charged to: the shard of
    /// its first known token. Load distribution only — correctness never
    /// depends on the assignment. Public so the chaos bench can aim a
    /// stall plan at the genuine home shard of its query mix.
    pub fn term_home_shard(&self, term: &str) -> usize {
        let first = term
            .split_ascii_whitespace()
            .next()
            .map(str::to_ascii_lowercase)
            .and_then(|w| self.symbols.get(&w))
            .or_else(|| tokenize(term).first().and_then(|t| self.symbols.get(t)));
        first.map_or(0, |token| self.postings.shard_of(token))
    }

    // ------------------------------------------------------------------
    // Shard layout: observation and re-cutting.
    // ------------------------------------------------------------------

    /// Number of postings shards in the in-memory layout.
    pub fn shard_count(&self) -> usize {
        self.postings.shard_count()
    }

    /// Re-cut the base postings into `k` contiguous token-range shards
    /// balanced by postings bytes. Query results are unaffected (the
    /// shard layout is invisible to matching); the delta segment and
    /// tombstones are untouched.
    pub fn reshard(&mut self, k: usize) {
        self.postings = self.postings.resharded(k);
    }

    /// Payload bytes of each postings shard (offsets + arena), in shard
    /// order — the raw series behind the skew metrics.
    pub fn shard_postings_bytes(&self) -> Vec<u64> {
        self.postings.shards().iter().map(|s| s.byte_size()).collect()
    }

    /// True when any arena borrows from a shared segment buffer (the
    /// zero-copy load path).
    pub fn is_zero_copy(&self) -> bool {
        self.token_offsets.is_shared()
            || self.token_ids.is_shared()
            || self.postings.is_zero_copy()
    }

    /// The postings index (read-only; used by the sharded segment
    /// writer).
    pub(crate) fn postings_index(&self) -> &PostingsIndex {
        &self.postings
    }

    /// The flat per-tweet token columns `(offsets, ids)` (used by the
    /// sharded segment writer).
    pub(crate) fn token_arena_parts(&self) -> (&[u32], &[TokenId]) {
        (self.token_offsets.as_slice(), self.token_ids.as_slice())
    }

    /// Approximate corpus payload size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.tweets.iter().map(|t| t.text.len() as u64).sum()
    }

    // ------------------------------------------------------------------
    // Streaming ingestion: the delta segment (esharp-ingest's substrate).
    // ------------------------------------------------------------------

    /// Register a new user so later appends can author and mention them.
    /// Ingested users start with no expert labels and are never spam —
    /// labels are an evaluation-side concept.
    pub fn add_user(
        &mut self,
        handle: &str,
        display_name: &str,
        description: &str,
        followers: u64,
        verified: bool,
    ) -> Result<UserId, String> {
        if handle.is_empty() {
            return Err("user handle must be non-empty".to_string());
        }
        if self.handle_index.contains_key(handle) {
            return Err(format!("handle {handle:?} already exists"));
        }
        if self.users.len() >= u32::MAX as usize {
            return Err("user id space exhausted".to_string());
        }
        let id = self.users.len() as UserId;
        self.users.push(User {
            id,
            handle: handle.to_string(),
            display_name: display_name.to_string(),
            description: description.to_string(),
            followers,
            verified,
            expert_domains: Vec::new(),
            spam: false,
        });
        self.handle_index.insert(handle.to_string(), id);
        self.tweets_by_user.push(0);
        self.mentions_of_user.push(0);
        self.retweets_of_user.push(0);
        Ok(id)
    }

    /// Append one tweet to the delta segment. The text is tokenized and
    /// interned through the same symbol table as the base build (new
    /// tokens get fresh dense ids past the base watermark), per-user
    /// totals update in place, and the tweet joins the per-token delta
    /// posting lists. `author` is a handle so ingest streams are
    /// self-contained.
    pub fn append_tweet(&mut self, author: &str, text: &str) -> Result<TweetId, String> {
        let Some(&author_id) = self.handle_index.get(author) else {
            return Err(format!("unknown author handle {author:?}"));
        };
        if self.tweets.len() >= u32::MAX as usize {
            return Err("tweet id space exhausted".to_string());
        }
        let id = self.tweets.len() as TweetId;
        let tweet = {
            let handles = &self.handle_index;
            Tweet::parse(id, author_id, text, |h| handles.get(h).copied())
        };
        self.tweets_by_user[author_id as usize] += 1;
        for &m in &tweet.mentions {
            self.mentions_of_user[m as usize] += 1;
        }
        if let Some(orig) = tweet.retweet_of {
            self.retweets_of_user[orig as usize] += 1;
        }
        for token in tokenize(&tweet.text) {
            let tok = self.symbols.intern(&token);
            self.token_ids.make_owned().push(tok);
            let list = self.delta_postings.entry(tok).or_default();
            // Appended ids are monotonic, so dedup needs only a last-entry
            // check and every delta list stays sorted by construction.
            if list.last() != Some(&id) {
                list.push(id);
            }
        }
        let token_total = self.token_ids.len() as u32;
        self.token_offsets.make_owned().push(token_total);
        self.tweets.push(tweet);
        Ok(id)
    }

    /// Logically delete a tweet: a tombstone hides it from every match
    /// set immediately and per-user totals drop as if it never existed.
    /// The bytes are reclaimed at the next [`Corpus::compact`].
    pub fn delete_tweet(&mut self, id: TweetId) -> Result<(), String> {
        if (id as usize) >= self.tweets.len() {
            return Err(format!("tweet {id} does not exist"));
        }
        let pos = match self.tombstones.binary_search(&id) {
            Ok(_) => return Err(format!("tweet {id} is already deleted")),
            Err(pos) => pos,
        };
        let (author, retweet_of) = {
            let t = &self.tweets[id as usize];
            (t.author, t.retweet_of)
        };
        self.tweets_by_user[author as usize] =
            self.tweets_by_user[author as usize].saturating_sub(1);
        for i in 0..self.tweets[id as usize].mentions.len() {
            let m = self.tweets[id as usize].mentions[i] as usize;
            self.mentions_of_user[m] = self.mentions_of_user[m].saturating_sub(1);
        }
        if let Some(orig) = retweet_of {
            self.retweets_of_user[orig as usize] =
                self.retweets_of_user[orig as usize].saturating_sub(1);
        }
        self.tombstones.insert(pos, id);
        Ok(())
    }

    /// `true` once any append or delete landed since the last (re)build —
    /// i.e. the corpus carries delta state the binary format cannot
    /// represent until [`Corpus::compact`] folds it in.
    pub fn has_delta(&self) -> bool {
        self.tweets.len() > self.base_tweets as usize || !self.tombstones.is_empty()
    }

    /// Tweets covered by the immutable base CSR postings.
    pub fn base_tweet_count(&self) -> usize {
        self.base_tweets as usize
    }

    /// Tweets appended since the last compaction (tombstoned or not).
    pub fn delta_tweet_count(&self) -> usize {
        self.tweets.len() - self.base_tweets as usize
    }

    /// Logically deleted tweets awaiting physical removal.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Tweets visible to queries (total minus tombstones).
    pub fn live_tweet_count(&self) -> usize {
        self.tweets.len() - self.tombstones.len()
    }

    /// Whether `id` is tombstoned.
    pub fn is_deleted(&self, id: TweetId) -> bool {
        self.tombstones.binary_search(&id).is_ok()
    }

    /// Fold the delta segment into a fresh base: drop tombstoned tweets,
    /// renumber survivors densely, and rebuild the CSR postings — without
    /// re-tokenizing (the interned arenas are remapped in first-appearance
    /// order, which makes the result bit-identical to
    /// `Corpus::new(users, surviving_tweets)`).
    pub fn compact(&self) -> Corpus {
        self.compact_with_map().0
    }

    /// [`Corpus::compact`] plus the old-id → new-id map (`None` for
    /// tombstoned tweets) so callers holding ids minted before the
    /// compaction — e.g. queued deletes — can remap them.
    pub fn compact_with_map(&self) -> (Corpus, Vec<Option<TweetId>>) {
        let mut map: Vec<Option<TweetId>> = vec![None; self.tweets.len()];
        // Token remap table, filled in first-appearance order over the
        // surviving tweets — exactly the order `Corpus::new` would intern.
        const UNMAPPED: TokenId = u32::MAX;
        let mut token_map: Vec<TokenId> = vec![UNMAPPED; self.symbols.len()];
        let mut new_texts: Vec<Box<str>> = Vec::new();

        let live = self.live_tweet_count();
        let mut tweets: Vec<Tweet> = Vec::with_capacity(live);
        let mut token_offsets: Vec<u32> = Vec::with_capacity(live + 1);
        let mut token_ids: Vec<TokenId> = Vec::new();
        token_offsets.push(0);
        let mut tweets_by_user = vec![0u64; self.users.len()];
        let mut mentions_of_user = vec![0u64; self.users.len()];
        let mut retweets_of_user = vec![0u64; self.users.len()];

        for t in &self.tweets {
            if self.tombstones.binary_search(&t.id).is_ok() {
                continue;
            }
            let new_id = tweets.len() as TweetId;
            map[t.id as usize] = Some(new_id);
            tweets_by_user[t.author as usize] += 1;
            for &m in &t.mentions {
                mentions_of_user[m as usize] += 1;
            }
            if let Some(orig) = t.retweet_of {
                retweets_of_user[orig as usize] += 1;
            }
            for &old_tok in self.tweet_tokens(t.id) {
                let new_tok = if token_map[old_tok as usize] == UNMAPPED {
                    let fresh = new_texts.len() as TokenId;
                    new_texts.push(self.symbols.text(old_tok).into());
                    token_map[old_tok as usize] = fresh;
                    fresh
                } else {
                    token_map[old_tok as usize]
                };
                token_ids.push(new_tok);
            }
            token_offsets.push(token_ids.len() as u32);
            let mut survivor = t.clone();
            survivor.id = new_id;
            tweets.push(survivor);
        }

        // token_map pushes each surviving text exactly once, so interning
        // assigns the same sequential ids `from_texts` would — without a
        // fallible constructor on this panic-free path.
        let mut symbols = SymbolTable::with_capacity(new_texts.len());
        for text in &new_texts {
            symbols.intern(text);
        }
        let postings = PostingsIndex::build(
            symbols.len(),
            token_offsets.windows(2).map(|w| &token_ids[w[0] as usize..w[1] as usize]),
        );
        let base_tweets = tweets.len() as u32;
        let base_tokens = symbols.len() as u32;
        // Compaction preserves the shard layout: the delta folds into a
        // fresh single-shard build, re-cut to the old K so a sharded
        // serving layout survives ingest churn (no-op for K = 1).
        let shard_count = self.postings.shard_count();
        let postings = if shard_count > 1 {
            postings.resharded(shard_count)
        } else {
            postings
        };
        let compacted = Corpus {
            users: self.users.clone(),
            tweets,
            symbols,
            token_offsets: CorpusArena::Owned(token_offsets),
            token_ids: CorpusArena::Owned(token_ids),
            postings,
            handle_index: self.handle_index.clone(),
            tweets_by_user,
            mentions_of_user,
            retweets_of_user,
            base_tweets,
            base_tokens,
            delta_postings: HashMap::new(),
            tombstones: Vec::new(),
        };
        (compacted, map)
    }

    /// Persist the corpus to a JSON file (indexes are rebuilt on load, so
    /// only users and tweets pay serialization cost). For the O(bytes)
    /// binary format that skips the rebuild, see [`Corpus::save_binary`].
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if self.has_delta() {
            return Err(std::io::Error::other(
                "corpus has uncompacted delta state (appends or tombstones); \
                 call Corpus::compact() before persisting",
            ));
        }
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let payload = (&self.users, &self.tweets);
        let json = serde_json::to_string(&payload).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a corpus persisted by [`Corpus::save`] (JSON, indexes
    /// rebuilt), [`Corpus::save_binary`] (checksummed frames, indexes
    /// loaded as-is), or [`Corpus::save_sharded`] (a shard manifest —
    /// loaded zero-copy, the arenas borrowed from the segment buffers).
    /// The format is sniffed from the leading bytes: a JSON payload is a
    /// `[users, tweets]` array, a manifest starts with its magic, and a
    /// monolithic binary file starts with a frame length.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Corpus> {
        let path = path.as_ref();
        let data = std::fs::read(path)?;
        if data.first() == Some(&b'[') {
            let (users, tweets): (Vec<User>, Vec<Tweet>) =
                serde_json::from_slice(&data).map_err(std::io::Error::other)?;
            Ok(Corpus::new(users, tweets))
        } else if data.starts_with(crate::segio::MANIFEST_MAGIC) {
            crate::segio::load_sharded_manifest(path, &data, crate::segio::LoadMode::ZeroCopy)
        } else {
            crate::binio::decode_corpus(&data)
        }
    }
}

/// Incremental corpus construction: [`Corpus::new`] decomposed into a
/// push-per-tweet form so a generator can tokenize, intern and total
/// each tweet as it is produced instead of materializing the whole
/// tweet list first and then re-walking it. `finish` runs the same
/// counting-sort postings build, so for the same users and tweet
/// sequence the result is bit-identical to [`Corpus::new`] — the
/// million-user synthetic scale is built this way with peak memory
/// equal to the finished corpus.
pub(crate) struct CorpusBuilder {
    users: Vec<User>,
    tweets: Vec<Tweet>,
    handle_index: HashMap<String, UserId>,
    symbols: SymbolTable,
    token_offsets: Vec<u32>,
    token_ids: Vec<TokenId>,
    tweets_by_user: Vec<u64>,
    mentions_of_user: Vec<u64>,
    retweets_of_user: Vec<u64>,
}

impl CorpusBuilder {
    /// Start a build over a fixed user table (tweets stream in after).
    pub(crate) fn new(users: Vec<User>) -> CorpusBuilder {
        let mut handle_index = HashMap::with_capacity(users.len());
        for u in &users {
            handle_index.insert(u.handle.clone(), u.id);
        }
        let n = users.len();
        CorpusBuilder {
            users,
            tweets: Vec::new(),
            handle_index,
            symbols: SymbolTable::new(),
            token_offsets: vec![0],
            token_ids: Vec::new(),
            tweets_by_user: vec![0; n],
            mentions_of_user: vec![0; n],
            retweets_of_user: vec![0; n],
        }
    }

    /// The user table (generators need handles for mention text).
    pub(crate) fn users(&self) -> &[User] {
        &self.users
    }

    /// The id the next pushed tweet must carry.
    pub(crate) fn next_tweet_id(&self) -> TweetId {
        self.tweets.len() as TweetId
    }

    /// Ingest one tweet: update per-user totals, tokenize and intern its
    /// text into the CSR arena, and retain it.
    pub(crate) fn push_tweet(&mut self, tweet: Tweet) {
        debug_assert_eq!(tweet.id, self.next_tweet_id());
        self.tweets_by_user[tweet.author as usize] += 1;
        for &m in &tweet.mentions {
            self.mentions_of_user[m as usize] += 1;
        }
        if let Some(orig) = tweet.retweet_of {
            self.retweets_of_user[orig as usize] += 1;
        }
        for token in tokenize(&tweet.text) {
            self.token_ids.push(self.symbols.intern(&token));
        }
        self.token_offsets.push(self.token_ids.len() as u32);
        self.tweets.push(tweet);
    }

    /// Build the postings index and assemble the corpus.
    pub(crate) fn finish(self) -> Corpus {
        let postings = PostingsIndex::build(
            self.symbols.len(),
            self.token_offsets
                .windows(2)
                .map(|w| &self.token_ids[w[0] as usize..w[1] as usize]),
        );
        let base_tweets = self.tweets.len() as u32;
        let base_tokens = self.symbols.len() as u32;
        Corpus {
            users: self.users,
            tweets: self.tweets,
            symbols: self.symbols,
            token_offsets: CorpusArena::Owned(self.token_offsets),
            token_ids: CorpusArena::Owned(self.token_ids),
            postings,
            handle_index: self.handle_index,
            tweets_by_user: self.tweets_by_user,
            mentions_of_user: self.mentions_of_user,
            retweets_of_user: self.retweets_of_user,
            base_tweets,
            base_tokens,
            delta_postings: HashMap::new(),
            tombstones: Vec::new(),
        }
    }
}

/// A per-term match set: borrowed straight from the postings arena when
/// no intersection shrank it, or held in a pooled scratch buffer when
/// the base+delta concatenation had to materialize.
pub(crate) enum TermMatch<'c> {
    Borrowed(&'c [TweetId]),
    Owned(Vec<TweetId>),
    Pooled(PooledBuf),
}

impl TermMatch<'_> {
    pub(crate) fn as_slice(&self) -> &[TweetId] {
        match self {
            TermMatch::Borrowed(list) => list,
            TermMatch::Owned(list) => list.as_slice(),
            TermMatch::Pooled(buf) => buf.0.as_slice(),
        }
    }
}

thread_local! {
    /// Reusable base++delta concatenation buffers, per thread (each
    /// scatter-gather worker keeps its own pool). Checked out by
    /// [`Corpus::merged_postings`], returned on drop at the end of the
    /// query, so steady-state base+delta reads allocate nothing.
    static UNION_BUFS: RefCell<Vec<Vec<TweetId>>> = const { RefCell::new(Vec::new()) };
}

/// Cap on pooled buffers per thread: queries hold at most one buffer per
/// delta-dirty term, and expansion sets are small.
const MAX_POOLED_BUFS: usize = 32;

/// A `Vec<TweetId>` borrowed from the thread-local pool; cleared and
/// returned on drop.
pub(crate) struct PooledBuf(Vec<TweetId>);

impl PooledBuf {
    fn checkout(capacity: usize) -> PooledBuf {
        let mut buf = UNION_BUFS
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        buf.clear();
        buf.reserve(capacity);
        PooledBuf(buf)
    }

    /// Keep the contents, returning nothing to the pool (the
    /// `match_query` exit, where the caller owns the result).
    fn take(mut self) -> Vec<TweetId> {
        std::mem::take(&mut self.0)
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if self.0.capacity() == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.0);
        UNION_BUFS.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < MAX_POOLED_BUFS {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(id: UserId, handle: &str) -> User {
        User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_uppercase(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }
    }

    fn corpus() -> Corpus {
        let users = vec![user(0, "alice"), user(1, "bob"), user(2, "carol")];
        let resolve = |h: &str| match h {
            "alice" => Some(0),
            "bob" => Some(1),
            "carol" => Some(2),
            _ => None,
        };
        let tweets = vec![
            Tweet::parse(0, 0, "the 49ers draft was exciting", resolve),
            Tweet::parse(1, 1, "RT @alice: the 49ers draft was exciting", resolve),
            Tweet::parse(2, 1, "niners game today with @carol", resolve),
            Tweet::parse(3, 2, "cooking pasta tonight", resolve),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn match_query_is_conjunctive_and_case_insensitive() {
        let c = corpus();
        assert_eq!(c.match_query("49ers DRAFT"), vec![0, 1]);
        assert_eq!(c.match_query("49ers pasta"), Vec::<TweetId>::new());
        assert_eq!(c.match_query("niners"), vec![2]);
        assert!(c.match_query("").is_empty());
        assert!(c.match_query("unknowntoken").is_empty());
    }

    #[test]
    fn match_terms_unions_per_term_matches() {
        let c = corpus();
        assert_eq!(
            c.match_terms(&["49ers draft".to_string(), "niners".to_string()]),
            vec![0, 1, 2]
        );
        // Overlapping terms dedup; unknown terms contribute nothing.
        assert_eq!(
            c.match_terms(&[
                "49ers".to_string(),
                "draft".to_string(),
                "zzz".to_string()
            ]),
            vec![0, 1]
        );
        assert!(c.match_terms(&[]).is_empty());
    }

    #[test]
    fn totals_count_mentions_and_retweets() {
        let c = corpus();
        assert_eq!(c.tweets_by(1), 2);
        assert_eq!(c.mentions_of(0), 1); // from the RT text
        assert_eq!(c.mentions_of(2), 1);
        assert_eq!(c.retweets_of(0), 1);
        assert_eq!(c.retweets_of(1), 0);
    }

    #[test]
    fn duplicate_tokens_index_once() {
        let users = vec![user(0, "a")];
        let tweets = vec![Tweet::parse(0, 0, "go go go niners", |_| None)];
        let c = Corpus::new(users, tweets);
        assert_eq!(c.match_query("go"), vec![0]);
        // The per-tweet token list keeps text order and duplicates …
        let go = c.token_id("go").unwrap();
        assert_eq!(c.tweet_tokens(0).iter().filter(|&&t| t == go).count(), 3);
        // … but the posting list holds the tweet once.
        assert_eq!(c.postings(go), &[0]);
    }

    #[test]
    fn interned_tokens_round_trip_text() {
        let c = corpus();
        let id = c.token_id("niners").unwrap();
        assert_eq!(c.token_text(id), "niners");
        assert!(c.num_tokens() > 0);
        assert_eq!(c.token_id("absent"), None);
    }

    #[test]
    fn save_load_round_trip_rebuilds_indexes() {
        let c = corpus();
        let dir = std::env::temp_dir().join("esharp_corpus_io_test");
        let path = dir.join("corpus.json");
        c.save(&path).unwrap();
        let back = Corpus::load(&path).unwrap();
        assert_eq!(back.users().len(), c.users().len());
        assert_eq!(back.tweets().len(), c.tweets().len());
        assert_eq!(back.match_query("49ers draft"), c.match_query("49ers draft"));
        assert_eq!(back.mentions_of(0), c.mentions_of(0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_json_with_tokens_field_still_loads() {
        // Corpora saved before interning carried a redundant per-tweet
        // `tokens` array; serde skips unknown fields, and load
        // re-tokenizes from text.
        let json = r#"[
            [{"id":0,"handle":"a","display_name":"A","description":"",
              "followers":1,"verified":false,"expert_domains":[],"spam":false}],
            [{"id":0,"author":0,"text":"niners win","tokens":["niners","win"],
              "mentions":[],"retweet_of":null}]
        ]"#;
        let dir = std::env::temp_dir().join("esharp_corpus_legacy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, json).unwrap();
        let c = Corpus::load(&path).unwrap();
        assert_eq!(c.match_query("niners"), vec![0]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn handle_lookup() {
        let c = corpus();
        assert_eq!(c.user_by_handle("bob"), Some(1));
        assert_eq!(c.user_by_handle("nobody"), None);
    }

    #[test]
    fn appended_tweets_are_searchable_immediately() {
        let mut c = corpus();
        assert!(!c.has_delta());
        let id = c.append_tweet("alice", "the niners draft steal").unwrap();
        assert_eq!(id, 4);
        assert!(c.has_delta());
        assert_eq!(c.delta_tweet_count(), 1);
        // Merged read path: base hits ++ delta hits, still sorted.
        assert_eq!(c.match_query("niners"), vec![2, 4]);
        assert_eq!(c.match_query("draft"), vec![0, 1, 4]);
        // A brand-new token exists only in the delta segment.
        let steal = c.token_id("steal").unwrap();
        assert_eq!(c.postings(steal), &[] as &[TweetId]);
        assert_eq!(c.match_query("steal"), vec![4]);
        // Totals updated in place.
        assert_eq!(c.tweets_by(0), 2);
    }

    #[test]
    fn append_resolves_mentions_and_retweets() {
        let mut c = corpus();
        let before = c.mentions_of(2);
        c.append_tweet("bob", "RT @carol: cooking pasta tonight").unwrap();
        assert_eq!(c.mentions_of(2), before + 1);
        assert_eq!(c.retweets_of(2), 1);
        assert!(c.append_tweet("nobody", "hi").is_err(), "unknown author");
    }

    #[test]
    fn added_users_can_author_and_be_mentioned() {
        let mut c = corpus();
        let dave = c.add_user("dave", "Dave", "bio", 42, true).unwrap();
        assert_eq!(c.user_by_handle("dave"), Some(dave));
        assert!(c.add_user("dave", "", "", 0, false).is_err(), "dup handle");
        let t = c.append_tweet("dave", "pasta recipes by @dave").unwrap();
        assert_eq!(c.tweets_by(dave), 1);
        assert_eq!(c.mentions_of(dave), 1);
        assert_eq!(c.match_query("pasta"), vec![3, t]);
    }

    #[test]
    fn tombstones_hide_tweets_and_reverse_totals() {
        let mut c = corpus();
        c.delete_tweet(1).unwrap();
        assert!(c.is_deleted(1));
        assert!(c.has_delta());
        assert_eq!(c.live_tweet_count(), 3);
        // Hidden from both conjunctive match and expansion union.
        assert_eq!(c.match_query("draft"), vec![0]);
        assert_eq!(
            c.match_terms(&["draft".to_string(), "niners".to_string()]),
            vec![0, 2]
        );
        // Totals roll back the RT's contribution.
        assert_eq!(c.tweets_by(1), 1);
        assert_eq!(c.mentions_of(0), 0);
        assert_eq!(c.retweets_of(0), 0);
        // Double delete and out-of-range are errors.
        assert!(c.delete_tweet(1).is_err());
        assert!(c.delete_tweet(99).is_err());
    }

    #[test]
    fn compaction_is_bit_identical_to_rebuild() {
        let mut c = corpus();
        c.add_user("dave", "Dave", "", 5, false).unwrap();
        c.append_tweet("dave", "niners niners go").unwrap();
        c.delete_tweet(1).unwrap();
        c.append_tweet("alice", "draft day pasta").unwrap();
        c.delete_tweet(4).unwrap(); // delete a delta tweet too

        let (compacted, map) = c.compact_with_map();
        assert!(!compacted.has_delta());
        assert_eq!(map[0], Some(0));
        assert_eq!(map[1], None);
        assert_eq!(map[4], None);
        assert_eq!(map[5], Some(3));

        // The reference: a from-scratch rebuild of the surviving tweets.
        let survivors: Vec<Tweet> = c
            .tweets()
            .iter()
            .filter(|t| !c.is_deleted(t.id))
            .enumerate()
            .map(|(i, t)| {
                let mut t = t.clone();
                t.id = i as TweetId;
                t
            })
            .collect();
        let rebuilt = Corpus::new(c.users().to_vec(), survivors);
        let a = crate::binio::encode_corpus(&compacted).unwrap();
        let b = crate::binio::encode_corpus(&rebuilt).unwrap();
        assert_eq!(a, b, "compacted bytes must equal a cold rebuild");

        // Query results survive the renumbering (delta view vs compacted).
        let live: Vec<TweetId> = c.match_query("niners");
        let remapped: Vec<TweetId> =
            live.iter().map(|&id| map[id as usize].unwrap()).collect();
        assert_eq!(compacted.match_query("niners"), remapped);
    }

    #[test]
    fn delta_corpus_refuses_json_save() {
        let mut c = corpus();
        c.append_tweet("alice", "ephemeral").unwrap();
        let dir = std::env::temp_dir().join("esharp_corpus_delta_save_test");
        assert!(c.save(dir.join("c.json")).is_err());
        let compacted = c.compact();
        assert!(compacted.save(dir.join("c.json")).is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }
}
