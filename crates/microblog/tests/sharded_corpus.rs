//! Integration tests of the sharded corpus: scatter-gather search must
//! be bit-identical to the serial single-shard union at every shard and
//! worker count, both load modes must reproduce the exact corpus, and
//! any corruption of the on-disk segments — truncation at every header
//! boundary, a single flipped bit anywhere — must fail at open with an
//! error (never a panic, never a silently wrong corpus).

use esharp_microblog::segio;
use esharp_microblog::{Corpus, LoadMode, Tweet, User};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn user(id: u32, handle: &str) -> User {
    User {
        id,
        handle: handle.to_string(),
        display_name: handle.to_string(),
        description: String::new(),
        followers: 0,
        verified: false,
        expert_domains: vec![],
        spam: false,
    }
}

/// A deterministic multi-user corpus with enough distinct tokens that
/// K=3 sharding actually splits the token space.
fn fixture_corpus() -> Corpus {
    let users: Vec<User> = (0..8).map(|i| user(i, &format!("u{i}"))).collect();
    let vocab = [
        "rust", "tokio", "diabetes", "insulin", "49ers", "football", "paris", "travel", "gpu",
        "kernel", "sourdough", "baking",
    ];
    let tweets: Vec<Tweet> = (0..64u32)
        .map(|i| {
            let a = vocab[i as usize % vocab.len()];
            let b = vocab[(i as usize * 5 + 3) % vocab.len()];
            Tweet::parse(i, i % 8, format!("{a} {b} update {}", i / 7), |_| None)
        })
        .collect();
    Corpus::new(users, tweets)
}

/// Fresh scratch dir per test (process-scoped so parallel test binaries
/// never collide).
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esharp_sharded_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Round-trip through save_sharded at K and both load modes; every
/// returned corpus must reproduce `serial` for every term set under
/// every worker count given.
fn assert_sharded_parity(
    corpus: &Corpus,
    dir: &Path,
    k: usize,
    term_sets: &[Vec<String>],
    workers: &[usize],
) {
    let manifest = dir.join(format!("k{k}.manifest"));
    corpus.save_sharded(&manifest, k).expect("save_sharded");
    for mode in [LoadMode::Copy, LoadMode::ZeroCopy] {
        let loaded = segio::load_sharded(&manifest, mode).expect("load_sharded");
        for terms in term_sets {
            let serial = corpus.match_terms(terms);
            assert_eq!(loaded.match_terms(terms), serial, "K={k} {mode:?} serial");
            for &w in workers {
                assert_eq!(
                    loaded.match_terms_with(terms, w),
                    serial,
                    "K={k} {mode:?} workers={w} terms={terms:?}"
                );
            }
        }
    }
}

#[test]
fn sharded_loads_are_bit_identical_to_the_original() {
    let corpus = fixture_corpus();
    let dir = tmpdir("bitident");
    let reference = dir.join("reference.bin");
    corpus.save_binary(&reference).expect("save reference");
    let want = std::fs::read(&reference).expect("read reference");
    for k in [1usize, 3, 7] {
        let manifest = dir.join(format!("k{k}.manifest"));
        corpus.save_sharded(&manifest, k).expect("save_sharded");
        for mode in [LoadMode::Copy, LoadMode::ZeroCopy] {
            let loaded = segio::load_sharded(&manifest, mode).expect("load");
            let out = dir.join(format!("k{k}_{mode:?}.bin"));
            loaded.save_binary(&out).expect("re-save");
            assert_eq!(
                std::fs::read(&out).expect("read"),
                want,
                "binary re-encode differs at K={k} mode {mode:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_files_fail_at_open_not_query_time() {
    let corpus = fixture_corpus();
    let dir = tmpdir("missing");
    let manifest = dir.join("corpus.manifest");
    corpus.save_sharded(&manifest, 3).expect("save_sharded");
    for name in ["global.bin", "tokens.seg", "postings-0.seg", "postings-1.seg", "postings-2.seg"]
    {
        let path = dir.join(name);
        let pristine = std::fs::read(&path).expect("read pristine");
        std::fs::remove_file(&path).expect("remove");
        let err = segio::load_sharded(&manifest, LoadMode::ZeroCopy)
            .expect_err(&format!("open must fail with {name} missing"));
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name}");
        std::fs::write(&path, &pristine).expect("restore");
    }
    // Restored intact, the manifest opens again.
    segio::load_sharded(&manifest, LoadMode::ZeroCopy).expect("restored corpus opens");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation at every interesting boundary and a single bit flipped at
/// spread offsets, applied to the manifest and every segment in turn:
/// each mutation must surface as an open-time error.
#[test]
fn corruption_matrix_fails_at_open() {
    let corpus = fixture_corpus();
    let dir = tmpdir("corrupt");
    let manifest = dir.join("corpus.manifest");
    corpus.save_sharded(&manifest, 3).expect("save_sharded");

    let files = [
        "corpus.manifest",
        "global.bin",
        "tokens.seg",
        "postings-0.seg",
        "postings-1.seg",
        "postings-2.seg",
    ];
    for name in files {
        let path = dir.join(name);
        let pristine = std::fs::read(&path).expect("read pristine");
        let len = pristine.len();
        assert!(len > 32, "{name} unexpectedly small");

        // Truncations across the header/payload boundaries.
        for cut in [0usize, 1, 4, 8, 12, 31, 32, 48, len / 2, len - 1] {
            if cut >= len {
                continue;
            }
            std::fs::write(&path, &pristine[..cut]).expect("truncate");
            let err = segio::load_sharded(&manifest, LoadMode::ZeroCopy)
                .expect_err(&format!("{name} truncated to {cut} must fail"));
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{name} cut {cut}");
        }

        // Single-bit flips: magic, version, crc field, header fields,
        // payload start / middle / end.
        for &(offset, mask) in &[
            (0usize, 0x01u8),
            (5, 0x80),
            (9, 0x01),
            (13, 0x40),
            (20, 0x01),
            (33, 0x02),
            (len / 2, 0x10),
            (len - 1, 0x01),
        ] {
            let mut flipped = pristine.clone();
            flipped[offset] ^= mask;
            std::fs::write(&path, &flipped).expect("write flipped");
            let err = segio::load_sharded(&manifest, LoadMode::ZeroCopy).expect_err(&format!(
                "{name} with bit {mask:#04x} flipped at {offset} must fail"
            ));
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "{name} flip at {offset}"
            );
        }

        std::fs::write(&path, &pristine).expect("restore");
    }
    segio::load_sharded(&manifest, LoadMode::ZeroCopy).expect("pristine corpus still opens");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    // File I/O per case: keep the case count modest — the fixed tests
    // above cover the deterministic boundaries, this drives breadth.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded scatter-gather search over a random corpus is
    /// bit-identical to the serial single-shard union for every shard
    /// count, worker count, and load mode.
    #[test]
    fn sharded_search_matches_serial_over_random_corpora(
        seed_words in prop::collection::vec(
            prop::collection::vec("[a-f]{1,3}", 1..6), 1..40),
        term_sets in prop::collection::vec(
            prop::collection::vec("[a-fA-F]{1,3}", 0..4), 1..4),
        k in 1usize..6,
        workers in 1usize..5,
    ) {
        let users = vec![user(0, "u0"), user(1, "u1")];
        let tweets: Vec<Tweet> = seed_words
            .iter()
            .enumerate()
            .map(|(i, words)| {
                Tweet::parse(i as u32, (i % 2) as u32, words.join(" "), |_| None)
            })
            .collect();
        let corpus = Corpus::new(users, tweets);
        let term_sets: Vec<Vec<String>> = term_sets
            .iter()
            .map(|terms| terms.iter().map(|t| t.to_string()).collect())
            .collect();

        // In-memory reshard parity (no disk round trip).
        let mut resharded = corpus.clone();
        resharded.reshard(k);
        prop_assert_eq!(resharded.shard_count(), k.min(corpus.num_tokens().max(1)));
        for terms in &term_sets {
            let serial = corpus.match_terms(terms);
            prop_assert_eq!(resharded.match_terms_with(terms, workers), serial.clone());
            prop_assert_eq!(resharded.match_terms(terms), serial);
        }

        // Disk round trip through both load modes.
        let dir = tmpdir(&format!("prop{k}w{workers}"));
        assert_sharded_parity(&corpus, &dir, k, &term_sets, &[1, workers]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
