//! Property-based tests of tokenization and query matching.

use esharp_microblog::tokenize::{matches_all, mentions, retweeted_handle, tokenize};
use esharp_microblog::{Corpus, Tweet, User};
use proptest::prelude::*;

fn user(id: u32, handle: &str) -> User {
    User {
        id,
        handle: handle.to_string(),
        display_name: handle.to_string(),
        description: String::new(),
        followers: 0,
        verified: false,
        expert_domains: vec![],
        spam: false,
    }
}

proptest! {
    #[test]
    fn tokens_are_lowercase_and_nonempty(text in ".{0,120}") {
        for token in tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert_eq!(token.clone(), token.to_lowercase());
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_its_own_output(text in "[a-zA-Z0-9#@ !,.]{0,80}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn every_tweet_matches_its_own_tokens(words in prop::collection::vec("[a-z0-9]{1,8}", 1..10)) {
        let text = words.join(" ");
        let tokens = tokenize(&text);
        for token in &tokens {
            prop_assert!(matches_all(&tokens, std::slice::from_ref(token)));
        }
        prop_assert!(matches_all(&tokens, &tokens));
    }

    #[test]
    fn mentions_subset_of_tokens(text in "[a-z@# ]{0,60}") {
        let tokens = tokenize(&text);
        let ms = mentions(&tokens);
        prop_assert!(ms.len() <= tokens.len());
        for m in ms {
            prop_assert!(!m.contains('@'));
        }
        // retweeted_handle only fires on rt-prefixed streams.
        if retweeted_handle(&tokens).is_some() {
            prop_assert_eq!(tokens[0].as_str(), "rt");
        }
    }

    #[test]
    fn corpus_matching_agrees_with_linear_scan(
        tweet_words in prop::collection::vec(
            prop::collection::vec("[a-d]{1,2}", 1..6), 1..20),
        query_words in prop::collection::vec("[a-d]{1,2}", 1..3),
    ) {
        let users = vec![user(0, "u0")];
        let tweets: Vec<Tweet> = tweet_words
            .iter()
            .enumerate()
            .map(|(i, words)| Tweet::parse(i as u32, 0, words.join(" "), |_| None))
            .collect();
        let corpus = Corpus::new(users, tweets.clone());
        let query = query_words.join(" ");
        let via_index = corpus.match_query(&query);
        let query_tokens = tokenize(&query);
        let via_scan: Vec<u32> = tweets
            .iter()
            .filter(|t| matches_all(&t.tokens, &query_tokens))
            .map(|t| t.id)
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }
}
