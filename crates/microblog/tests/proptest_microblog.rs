//! Property-based tests of tokenization and query matching.

use esharp_microblog::tokenize::{matches_all, mentions, retweeted_handle, tokenize};
use esharp_microblog::{Corpus, Tweet, User};
use proptest::prelude::*;

/// The pre-interning index semantics: `String`-keyed posting lists built
/// by re-tokenizing every tweet, conjunctive match by pairwise
/// intersection, union by flatten + sort + dedup. The interned corpus
/// (token-id CSR postings, galloping intersect, k-way merge union) must
/// agree with this reference on every input.
fn string_keyed_postings(tweets: &[Tweet]) -> std::collections::HashMap<String, Vec<u32>> {
    let mut postings: std::collections::HashMap<String, Vec<u32>> = Default::default();
    for t in tweets {
        for token in tokenize(&t.text) {
            let list = postings.entry(token).or_default();
            if list.last() != Some(&t.id) {
                list.push(t.id);
            }
        }
    }
    postings
}

fn string_keyed_match(
    postings: &std::collections::HashMap<String, Vec<u32>>,
    term: &str,
) -> Vec<u32> {
    let tokens = tokenize(term);
    if tokens.is_empty() {
        return Vec::new();
    }
    let mut lists: Vec<&Vec<u32>> = Vec::new();
    for token in &tokens {
        match postings.get(token) {
            Some(list) => lists.push(list),
            None => return Vec::new(),
        }
    }
    lists.sort_by_key(|l| l.len());
    let mut result = lists[0].clone();
    for list in &lists[1..] {
        result.retain(|id| list.binary_search(id).is_ok());
    }
    result
}

/// Deterministic spot-check of the interned ↔ string-keyed agreement the
/// property below drives at scale (and a plain target for environments
/// where the property runner is unavailable).
#[test]
fn string_keyed_reference_agrees_on_fixed_corpus() {
    let users = vec![user(0, "u0")];
    let tweets: Vec<Tweet> = ["aa bb", "bb cc aa", "cc", "aa"]
        .iter()
        .enumerate()
        .map(|(i, t)| Tweet::parse(i as u32, 0, t.to_string(), |_| None))
        .collect();
    let postings = string_keyed_postings(&tweets);
    let corpus = Corpus::new(users, tweets);
    for term in ["aa", "bb cc", "AA", "zz", "", "aa zz"] {
        assert_eq!(
            corpus.match_query(term),
            string_keyed_match(&postings, term),
            "term {term:?}"
        );
    }
    let terms: Vec<String> = ["aa bb", "cc", "Aa"].iter().map(|s| s.to_string()).collect();
    let mut union: Vec<u32> = terms
        .iter()
        .flat_map(|t| string_keyed_match(&postings, t))
        .collect();
    union.sort_unstable();
    union.dedup();
    assert_eq!(corpus.match_terms(&terms), union);
}

fn user(id: u32, handle: &str) -> User {
    User {
        id,
        handle: handle.to_string(),
        display_name: handle.to_string(),
        description: String::new(),
        followers: 0,
        verified: false,
        expert_domains: vec![],
        spam: false,
    }
}

proptest! {
    #[test]
    fn tokens_are_lowercase_and_nonempty(text in ".{0,120}") {
        for token in tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert_eq!(token.clone(), token.to_lowercase());
        }
    }

    #[test]
    fn tokenize_is_idempotent_on_its_own_output(text in "[a-zA-Z0-9#@ !,.]{0,80}") {
        let once = tokenize(&text);
        let again = tokenize(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn every_tweet_matches_its_own_tokens(words in prop::collection::vec("[a-z0-9]{1,8}", 1..10)) {
        let text = words.join(" ");
        let tokens = tokenize(&text);
        for token in &tokens {
            prop_assert!(matches_all(&tokens, std::slice::from_ref(token)));
        }
        prop_assert!(matches_all(&tokens, &tokens));
    }

    #[test]
    fn mentions_subset_of_tokens(text in "[a-z@# ]{0,60}") {
        let tokens = tokenize(&text);
        let ms = mentions(&tokens);
        prop_assert!(ms.len() <= tokens.len());
        for m in ms {
            prop_assert!(!m.contains('@'));
        }
        // retweeted_handle only fires on rt-prefixed streams.
        if retweeted_handle(&tokens).is_some() {
            prop_assert_eq!(tokens[0].as_str(), "rt");
        }
    }

    #[test]
    fn corpus_matching_agrees_with_linear_scan(
        tweet_words in prop::collection::vec(
            prop::collection::vec("[a-d]{1,2}", 1..6), 1..20),
        query_words in prop::collection::vec("[a-d]{1,2}", 1..3),
    ) {
        let users = vec![user(0, "u0")];
        let tweets: Vec<Tweet> = tweet_words
            .iter()
            .enumerate()
            .map(|(i, words)| Tweet::parse(i as u32, 0, words.join(" "), |_| None))
            .collect();
        let corpus = Corpus::new(users, tweets.clone());
        let query = query_words.join(" ");
        let via_index = corpus.match_query(&query);
        let query_tokens = tokenize(&query);
        let via_scan: Vec<u32> = tweets
            .iter()
            .filter(|t| matches_all(&tokenize(&t.text), &query_tokens))
            .map(|t| t.id)
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn match_terms_agrees_with_per_term_union(
        tweet_words in prop::collection::vec(
            prop::collection::vec("[a-d]{1,2}", 1..6), 1..20),
        terms in prop::collection::vec(
            prop::collection::vec("[a-d]{1,2}", 1..3), 0..4),
    ) {
        let users = vec![user(0, "u0")];
        let tweets: Vec<Tweet> = tweet_words
            .iter()
            .enumerate()
            .map(|(i, words)| Tweet::parse(i as u32, 0, words.join(" "), |_| None))
            .collect();
        let corpus = Corpus::new(users, tweets);
        let terms: Vec<String> = terms.iter().map(|w| w.join(" ")).collect();
        let mut reference: Vec<u32> = terms
            .iter()
            .flat_map(|t| corpus.match_query(t))
            .collect();
        reference.sort_unstable();
        reference.dedup();
        prop_assert_eq!(corpus.match_terms(&terms), reference);
    }

    #[test]
    fn interned_matching_agrees_with_string_keyed_reference(
        tweet_words in prop::collection::vec(
            prop::collection::vec("[a-d]{1,2}", 1..6), 1..24),
        terms in prop::collection::vec(
            prop::collection::vec("[a-dA-D]{1,2}", 1..3), 0..5),
    ) {
        let users = vec![user(0, "u0")];
        let tweets: Vec<Tweet> = tweet_words
            .iter()
            .enumerate()
            .map(|(i, words)| Tweet::parse(i as u32, 0, words.join(" "), |_| None))
            .collect();
        let postings = string_keyed_postings(&tweets);
        let corpus = Corpus::new(users, tweets);
        let terms: Vec<String> = terms.iter().map(|w| w.join(" ")).collect();

        // Per-term conjunctive matches agree (mixed-case terms exercise
        // both the normalized fast path and the tokenizer fallback) …
        for term in &terms {
            prop_assert_eq!(
                corpus.match_query(term),
                string_keyed_match(&postings, term),
                "term {:?}",
                term
            );
        }
        // … and so does the expansion union over all terms.
        let mut union: Vec<u32> = terms
            .iter()
            .flat_map(|t| string_keyed_match(&postings, t))
            .collect();
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(corpus.match_terms(&terms), union);
    }
}
