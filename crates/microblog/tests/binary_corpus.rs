//! Corruption matrix for the binary corpus container (`corpus.bin`).
//!
//! The binary format's contract is sharp: a load either returns exactly
//! the corpus that was saved, or it errors — it never panics and never
//! yields a plausible-but-wrong corpus. These tests drive that contract
//! mechanically: every truncation length, every single-bit flip, trailing
//! garbage, and (where the serializer supports it) equivalence with the
//! JSON persistence path through the same auto-detecting `Corpus::load`.

use esharp_microblog::binio::{decode_corpus, encode_corpus};
use esharp_microblog::{Corpus, Tweet, User};

/// A small corpus that still exercises every section of the container:
/// multiple users (one tweetless), mentions, a retweet, duplicate tokens,
/// non-ASCII text, and a token that appears in several tweets.
fn sample() -> Corpus {
    let mk_user = |id, handle: &str, followers, verified| User {
        id,
        handle: handle.into(),
        display_name: format!("User {handle}"),
        description: "knows things".into(),
        followers,
        verified,
        expert_domains: if id == 0 { vec![2, 5] } else { vec![] },
        spam: id == 2,
    };
    let users = vec![
        mk_user(0, "ana", 900, true),
        mk_user(1, "bo", 14, false),
        mk_user(2, "idle", 0, false), // never tweets
    ];
    let resolve = |h: &str| match h {
        "ana" => Some(0),
        "bo" => Some(1),
        _ => None,
    };
    let tweets = vec![
        Tweet::parse(0, 0, "niners draft niners talk", resolve),
        Tweet::parse(1, 1, "RT @ana: niners draft niners talk", resolve),
        Tweet::parse(2, 1, "café ☕ with @ana about the draft", resolve),
        Tweet::parse(3, 0, "quiet sunday", resolve),
    ];
    Corpus::new(users, tweets)
}

/// Structural equality over everything the binary format persists.
fn assert_equivalent(a: &Corpus, b: &Corpus) {
    assert_eq!(a.users().len(), b.users().len());
    for (x, y) in a.users().iter().zip(b.users()) {
        assert_eq!(x.handle, y.handle);
        assert_eq!(x.display_name, y.display_name);
        assert_eq!(x.description, y.description);
        assert_eq!(x.followers, y.followers);
        assert_eq!(x.expert_domains, y.expert_domains);
        assert_eq!((x.verified, x.spam), (y.verified, y.spam));
    }
    assert_eq!(a.tweets().len(), b.tweets().len());
    for (x, y) in a.tweets().iter().zip(b.tweets()) {
        assert_eq!(x.author, y.author);
        assert_eq!(x.text, y.text);
        assert_eq!(x.mentions, y.mentions);
        assert_eq!(x.retweet_of, y.retweet_of);
        assert_eq!(a.tweet_tokens(x.id), b.tweet_tokens(y.id));
    }
    assert_eq!(a.num_tokens(), b.num_tokens());
    for t in 0..a.num_tokens() as u32 {
        assert_eq!(a.token_text(t), b.token_text(t));
        assert_eq!(a.postings(t), b.postings(t));
    }
    for u in 0..a.users().len() as u32 {
        assert_eq!(a.tweets_by(u), b.tweets_by(u));
        assert_eq!(a.mentions_of(u), b.mentions_of(u));
        assert_eq!(a.retweets_of(u), b.retweets_of(u));
    }
}

#[test]
fn clean_bytes_round_trip() {
    let corpus = sample();
    let bytes = encode_corpus(&corpus).unwrap();
    let back = decode_corpus(&bytes).unwrap();
    assert_equivalent(&corpus, &back);
    // The encoder is deterministic: re-encoding the loaded corpus gives
    // byte-identical output (what the refresh pipeline's checksums rely
    // on).
    assert_eq!(encode_corpus(&back).unwrap(), bytes);
}

#[test]
fn every_truncation_length_is_rejected() {
    let bytes = encode_corpus(&sample()).unwrap();
    for cut in 0..bytes.len() {
        assert!(
            decode_corpus(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    // CRC32 detects all single-bit errors inside a frame payload, and a
    // flip in a frame header breaks framing — so every one of the
    // 8 × len corrupted variants must fail to decode (and must not
    // panic).
    let bytes = encode_corpus(&sample()).unwrap();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            assert!(
                decode_corpus(&corrupt).is_err(),
                "flip of byte {byte} bit {bit} was accepted"
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let bytes = encode_corpus(&sample()).unwrap();
    for extra in [1usize, 7, 64] {
        let mut long = bytes.clone();
        long.extend(std::iter::repeat(0xA5).take(extra));
        assert!(
            decode_corpus(&long).is_err(),
            "{extra} trailing bytes were accepted"
        );
    }
}

#[test]
fn json_and_binary_loads_agree_through_autodetect() {
    let corpus = sample();
    let dir = std::env::temp_dir().join("esharp_binary_corpus_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("corpus.json");
    let bin_path = dir.join("corpus.bin");

    corpus.save(&json_path).unwrap();
    corpus.save_binary(&bin_path).unwrap();
    let from_bin = Corpus::load(&bin_path).unwrap();
    assert_equivalent(&corpus, &from_bin);

    // The JSON side needs a round-tripping serializer; the offline dev
    // image stubs serde_json, so probe before asserting equivalence.
    match Corpus::load(&json_path) {
        Ok(from_json) => {
            assert_equivalent(&corpus, &from_json);
            assert_eq!(
                from_json.match_query("niners draft"),
                from_bin.match_query("niners draft")
            );
        }
        Err(e) => eprintln!("skipping JSON equivalence (serializer unavailable: {e})"),
    }

    let _ = std::fs::remove_dir_all(dir);
}
