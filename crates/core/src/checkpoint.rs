//! Crash-safe checkpointing for the weekly offline refresh.
//!
//! The paper's pipeline is a weekly batch job over ~1 TB of logs; a crash
//! near the end of such a run is expensive if it means starting over.
//! [`CheckpointDir`] persists every pipeline stage — filtered log,
//! similarity graph, multigraph, clustering outcome, domain collection —
//! as a checksummed, atomically-written artifact tagged with a manifest
//! (format version + configuration hash + input fingerprint).
//! [`crate::run_offline_resumable`] consults the directory before each
//! stage and recomputes only what is missing or stale.
//!
//! ## File format
//!
//! One file per stage, all frames in `esharp-relation`'s checksummed
//! binary table container ([`encode_frames`]): frame 0 is the manifest
//! relation `manifest(key, value)`, the remaining frames are the stage
//! payload. Embedding the manifest in the artifact file (rather than a
//! sidecar) keeps validation atomic: the temp-file-then-rename write
//! publishes artifact and manifest together or not at all.
//!
//! ## Validation and staleness
//!
//! A checkpoint is used only when its format version, config hash and
//! input fingerprint all match the current run and every frame passes its
//! CRC. *Any* failure — missing file, truncation, bit flip, stale hash —
//! silently falls back to recomputing the stage; corruption can cost
//! time, never correctness. The config hash covers exactly the knobs
//! that change offline artifacts (support threshold, graph thresholds,
//! discretization scale, backend, iteration cap). Worker counts are
//! deliberately excluded: the `esharp-par` determinism contract makes
//! artifacts bit-identical at any worker count, so resuming a 16-worker
//! run with 4 workers is valid.
//!
//! ## Fault injection
//!
//! Every write funnels through [`atomic_write_with`] with the directory's
//! [`FaultInjector`], and stage boundaries consult `stage:<name>` /
//! `iter:<k>` sites via [`CheckpointDir::kill_point`] — so the
//! kill-at-every-stage resume matrix in `tests/crashsafety.rs` is driven
//! entirely by seeds, with no real signals or subprocesses. The default
//! injector is [`NoFaults`], which inlines to `None` and costs nothing.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::{ClusterBackend, EsharpConfig};
use crate::domains::DomainCollection;
use crate::error::{EsharpError, EsharpResult};
use esharp_community::{Assignment, ClusteringOutcome, IterationStat};
use esharp_fault::{fault_error, FaultInjector, NoFaults, RetryPolicy};
use esharp_graph::io::{graph_from_tables, graph_tables};
use esharp_graph::{BuildStats, MultiGraph, SimilarityGraph};
use esharp_querylog::{AggregatedLog, ClickRecord, World};
use esharp_relation::atomic::atomic_write_with;
use esharp_relation::binfmt::{decode_frames_exact, encode_frames};
use esharp_relation::{DataType, Schema, Table, TableBuilder, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint format version; bumped when any stage's payload layout
/// changes so old checkpoints are recomputed, not misread.
const FORMAT: i64 = 1;

const FILTERED_FILE: &str = "filtered.ck";
const GRAPH_FILE: &str = "graph.ck";
const MULTIGRAPH_FILE: &str = "multigraph.ck";
const CLUSTERING_FILE: &str = "clustering.ck";
const PROGRESS_FILE: &str = "clustering.progress";
const DOMAINS_FILE: &str = "domains.ck";

/// What a checkpoint must match to be resumed: a hash of the
/// artifact-shaping configuration and a fingerprint of the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// FNV hash over the offline-relevant [`EsharpConfig`] fields.
    pub config: u64,
    /// FNV hash over the aggregated log and the world it refers to.
    pub input: u64,
}

impl Fingerprint {
    /// Fingerprint a run. Hashes the full aggregated log (records, totals,
    /// raw-event count) plus the world's identity — a checkpoint from last
    /// week's log can never satisfy this week's run.
    pub fn new(config: &EsharpConfig, log: &AggregatedLog, world: &World) -> Fingerprint {
        let mut c = Fnv::new();
        c.u64(config.min_support);
        c.f64(config.graph.min_similarity);
        c.u64(config.graph.max_url_fanout as u64);
        c.f64(config.discretize_scale);
        c.u64(match config.backend {
            ClusterBackend::Parallel => 0,
            ClusterBackend::Sql => 1,
            ClusterBackend::Newman => 2,
            ClusterBackend::Louvain => 3,
            ClusterBackend::LabelPropagation => 4,
        });
        c.u64(config.max_iterations as u64);

        let mut i = Fnv::new();
        i.u64(world.seed);
        i.u64(world.terms.len() as u64);
        i.u64(world.urls.len() as u64);
        i.u64(log.raw_events);
        i.u64(log.term_totals.len() as u64);
        for &total in &log.term_totals {
            i.u64(total);
        }
        i.u64(log.records.len() as u64);
        for r in &log.records {
            i.u64(r.term as u64);
            i.u64(r.url as u64);
            i.u64(r.clicks);
        }
        Fingerprint { config: c.finish(), input: i.finish() }
    }
}

/// Incremental FNV-1a over 64-bit words (no allocation, no deps).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// A directory of stage checkpoints plus the fault-injection context every
/// write in the resumable pipeline runs under.
pub struct CheckpointDir {
    root: PathBuf,
    injector: Arc<dyn FaultInjector>,
    retry: RetryPolicy,
}

impl std::fmt::Debug for CheckpointDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointDir").field("root", &self.root).finish()
    }
}

impl CheckpointDir {
    /// Open (creating if needed) a checkpoint directory with no fault
    /// injection and no retries — the production configuration.
    pub fn new(root: impl Into<PathBuf>) -> EsharpResult<CheckpointDir> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| EsharpError::Io {
            kind: e.kind(),
            message: format!("create checkpoint dir {}: {e}", root.display()),
        })?;
        Ok(CheckpointDir {
            root,
            injector: Arc::new(NoFaults),
            retry: RetryPolicy::none(),
        })
    }

    /// Thread a deterministic fault injector and retry policy through
    /// every subsequent write and stage boundary (tests, chaos drills).
    pub fn with_faults(mut self, injector: Arc<dyn FaultInjector>, retry: RetryPolicy) -> Self {
        self.injector = injector;
        self.retry = retry;
        self
    }

    /// The directory holding the stage files.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Delete every stage checkpoint (a `--fresh`/non-`--resume` run: the
    /// directory stays, the state goes). Missing files are fine.
    pub fn clear(&self) -> EsharpResult<()> {
        for file in [
            FILTERED_FILE,
            GRAPH_FILE,
            MULTIGRAPH_FILE,
            CLUSTERING_FILE,
            PROGRESS_FILE,
            DOMAINS_FILE,
        ] {
            match std::fs::remove_file(self.root.join(file)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(EsharpError::Io {
                        kind: e.kind(),
                        message: format!("clear checkpoint {file}: {e}"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Consult the injector at a non-write site (`stage:<name>`,
    /// `iter:<k>`): a planned fault there surfaces as an [`EsharpError`],
    /// modeling a process kill at that boundary.
    pub fn kill_point(&self, site: &str) -> EsharpResult<()> {
        match self.injector.fault_at(site, 0) {
            Some(fault) => Err(EsharpError::from(fault_error(fault, site))),
            None => Ok(()),
        }
    }

    fn store(
        &self,
        file: &str,
        fp: &Fingerprint,
        extras: &[(&str, i64)],
        mut payload: Vec<Table>,
    ) -> EsharpResult<()> {
        let mut frames = vec![manifest_table(fp, extras)?];
        frames.append(&mut payload);
        let buf = encode_frames(&frames);
        let site = format!("write:{file}");
        atomic_write_with(self.root.join(file), &buf, &*self.injector, &site, &self.retry)
            .map_err(|e| EsharpError::Io {
                kind: e.kind(),
                message: format!("{site}: {e}"),
            })
    }

    /// Load a stage file and validate its manifest against `fp`. Any
    /// failure — absent, corrupt, wrong frame count, stale hashes — is
    /// `None`: the caller recomputes the stage.
    fn load(&self, file: &str, fp: &Fingerprint, frames: usize) -> Option<(Manifest, Vec<Table>)> {
        let data = std::fs::read(self.root.join(file)).ok()?;
        let mut tables = decode_frames_exact(&data, frames + 1).ok()?;
        let manifest = Manifest::from_table(tables.first()?)?;
        if manifest.format != FORMAT
            || manifest.config != fp.config
            || manifest.input != fp.input
        {
            return None;
        }
        tables.remove(0);
        Some((manifest, tables))
    }

    // --- Stage 1: support-filtered log -----------------------------------

    pub(crate) fn store_filtered(
        &self,
        fp: &Fingerprint,
        log: &AggregatedLog,
        dropped: usize,
    ) -> EsharpResult<()> {
        let records_schema = Schema::of(&[
            ("term", DataType::Int),
            ("url", DataType::Int),
            ("clicks", DataType::Int),
        ]);
        let mut records = TableBuilder::with_capacity(records_schema, log.records.len());
        for r in &log.records {
            records
                .push_row(vec![
                    Value::Int(r.term as i64),
                    Value::Int(r.url as i64),
                    Value::Int(r.clicks as i64),
                ])
                .map_err(table_err)?;
        }
        let totals_schema = Schema::of(&[("total", DataType::Int)]);
        let mut totals = TableBuilder::with_capacity(totals_schema, log.term_totals.len());
        for &t in &log.term_totals {
            totals.push_row(vec![Value::Int(t as i64)]).map_err(table_err)?;
        }
        let extras = [
            ("raw_events", log.raw_events as i64),
            ("dropped", dropped as i64),
        ];
        self.store(FILTERED_FILE, fp, &extras, vec![records.finish(), totals.finish()])
    }

    pub(crate) fn load_filtered(&self, fp: &Fingerprint) -> Option<(AggregatedLog, usize)> {
        let (manifest, tables) = self.load(FILTERED_FILE, fp, 2)?;
        let raw_events = u64::try_from(manifest.extra("raw_events")?).ok()?;
        let dropped = usize::try_from(manifest.extra("dropped")?).ok()?;
        let (records_t, totals_t) = (&tables[0], &tables[1]);
        let term = records_t.column_by_name("term").ok()?;
        let url = records_t.column_by_name("url").ok()?;
        let clicks = records_t.column_by_name("clicks").ok()?;
        let mut records = Vec::with_capacity(records_t.num_rows());
        for row in 0..records_t.num_rows() {
            records.push(ClickRecord {
                term: u32::try_from(term.value(row).as_int()?).ok()?,
                url: u32::try_from(url.value(row).as_int()?).ok()?,
                clicks: u64::try_from(clicks.value(row).as_int()?).ok()?,
            });
        }
        let total = totals_t.column_by_name("total").ok()?;
        let mut term_totals = Vec::with_capacity(totals_t.num_rows());
        for row in 0..totals_t.num_rows() {
            term_totals.push(u64::try_from(total.value(row).as_int()?).ok()?);
        }
        Some((AggregatedLog { records, term_totals, raw_events }, dropped))
    }

    // --- Stage 2: similarity graph (+ build stats) -----------------------

    pub(crate) fn store_graph(
        &self,
        fp: &Fingerprint,
        graph: &SimilarityGraph,
        stats: &BuildStats,
    ) -> EsharpResult<()> {
        let (nodes, edges) = graph_tables(graph).map_err(EsharpError::from)?;
        let extras = [
            ("num_queries", stats.num_queries as i64),
            ("candidate_pairs", stats.candidate_pairs as i64),
            ("edges_kept", stats.edges_kept as i64),
            ("urls_skipped", stats.urls_skipped as i64),
        ];
        self.store(GRAPH_FILE, fp, &extras, vec![nodes, edges])
    }

    pub(crate) fn load_graph(&self, fp: &Fingerprint) -> Option<(SimilarityGraph, BuildStats)> {
        let (manifest, tables) = self.load(GRAPH_FILE, fp, 2)?;
        let graph = graph_from_tables(&tables[0], &tables[1]).ok()?;
        let stats = BuildStats {
            num_queries: usize::try_from(manifest.extra("num_queries")?).ok()?,
            candidate_pairs: usize::try_from(manifest.extra("candidate_pairs")?).ok()?,
            edges_kept: usize::try_from(manifest.extra("edges_kept")?).ok()?,
            urls_skipped: usize::try_from(manifest.extra("urls_skipped")?).ok()?,
        };
        Some((graph, stats))
    }

    // --- Stage 3: discretized multigraph ---------------------------------

    pub(crate) fn store_multigraph(&self, fp: &Fingerprint, mg: &MultiGraph) -> EsharpResult<()> {
        let schema = Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("k", DataType::Int),
        ]);
        let mut edges = TableBuilder::with_capacity(schema, mg.edges().len());
        for &(a, b, k) in mg.edges() {
            edges
                .push_row(vec![Value::Int(a as i64), Value::Int(b as i64), Value::Int(k as i64)])
                .map_err(table_err)?;
        }
        let extras = [("num_nodes", mg.num_nodes() as i64)];
        self.store(MULTIGRAPH_FILE, fp, &extras, vec![edges.finish()])
    }

    pub(crate) fn load_multigraph(&self, fp: &Fingerprint) -> Option<MultiGraph> {
        let (manifest, tables) = self.load(MULTIGRAPH_FILE, fp, 1)?;
        let num_nodes = usize::try_from(manifest.extra("num_nodes")?).ok()?;
        let t = &tables[0];
        let a = t.column_by_name("a").ok()?;
        let b = t.column_by_name("b").ok()?;
        let k = t.column_by_name("k").ok()?;
        let mut edges = Vec::with_capacity(t.num_rows());
        for row in 0..t.num_rows() {
            let ea = u32::try_from(a.value(row).as_int()?).ok()?;
            let eb = u32::try_from(b.value(row).as_int()?).ok()?;
            if ea as usize >= num_nodes || eb as usize >= num_nodes {
                return None;
            }
            edges.push((ea, eb, u64::try_from(k.value(row).as_int()?).ok()?));
        }
        Some(MultiGraph::from_edges(num_nodes, edges))
    }

    // --- Stage 4: clustering (final + per-iteration progress) ------------

    pub(crate) fn store_clustering(
        &self,
        file: &str,
        fp: &Fingerprint,
        assignment: &Assignment,
        trace: &[IterationStat],
    ) -> EsharpResult<()> {
        let assign_schema = Schema::of(&[("community", DataType::Int)]);
        let mut assign = TableBuilder::with_capacity(assign_schema, assignment.len());
        for &c in assignment.as_slice() {
            assign.push_row(vec![Value::Int(c as i64)]).map_err(table_err)?;
        }
        let trace_schema = Schema::of(&[
            ("iteration", DataType::Int),
            ("communities", DataType::Int),
            ("total_modularity", DataType::Float),
            ("merges", DataType::Int),
        ]);
        let mut trace_t = TableBuilder::with_capacity(trace_schema, trace.len());
        for s in trace {
            trace_t
                .push_row(vec![
                    Value::Int(s.iteration as i64),
                    Value::Int(s.communities as i64),
                    Value::Float(s.total_modularity),
                    Value::Int(s.merges as i64),
                ])
                .map_err(table_err)?;
        }
        self.store(file, fp, &[], vec![assign.finish(), trace_t.finish()])
    }

    pub(crate) fn load_clustering(
        &self,
        file: &str,
        fp: &Fingerprint,
    ) -> Option<(Assignment, Vec<IterationStat>)> {
        let (_, tables) = self.load(file, fp, 2)?;
        let (assign_t, trace_t) = (&tables[0], &tables[1]);
        let community = assign_t.column_by_name("community").ok()?;
        let mut communities = Vec::with_capacity(assign_t.num_rows());
        for row in 0..assign_t.num_rows() {
            communities.push(u32::try_from(community.value(row).as_int()?).ok()?);
        }
        let iteration = trace_t.column_by_name("iteration").ok()?;
        let comms = trace_t.column_by_name("communities").ok()?;
        let modularity = trace_t.column_by_name("total_modularity").ok()?;
        let merges = trace_t.column_by_name("merges").ok()?;
        let mut trace = Vec::with_capacity(trace_t.num_rows());
        for row in 0..trace_t.num_rows() {
            trace.push(IterationStat {
                iteration: usize::try_from(iteration.value(row).as_int()?).ok()?,
                communities: usize::try_from(comms.value(row).as_int()?).ok()?,
                total_modularity: modularity.value(row).as_float()?,
                merges: usize::try_from(merges.value(row).as_int()?).ok()?,
            });
        }
        if trace.is_empty() {
            return None;
        }
        Some((Assignment::from_vec(communities), trace))
    }

    pub(crate) fn store_clustering_final(
        &self,
        fp: &Fingerprint,
        outcome: &ClusteringOutcome,
    ) -> EsharpResult<()> {
        self.store_clustering(CLUSTERING_FILE, fp, &outcome.assignment, &outcome.trace)?;
        // The per-iteration progress file is now redundant; a crash between
        // the rename above and this unlink is harmless (the final file wins
        // on the next run).
        let _ = std::fs::remove_file(self.root.join(PROGRESS_FILE));
        Ok(())
    }

    pub(crate) fn load_clustering_final(&self, fp: &Fingerprint) -> Option<ClusteringOutcome> {
        let (assignment, trace) = self.load_clustering(CLUSTERING_FILE, fp)?;
        Some(ClusteringOutcome { assignment, trace })
    }

    pub(crate) fn store_clustering_progress(
        &self,
        fp: &Fingerprint,
        assignment: &Assignment,
        trace: &[IterationStat],
    ) -> EsharpResult<()> {
        self.store_clustering(PROGRESS_FILE, fp, assignment, trace)
    }

    pub(crate) fn load_clustering_progress(
        &self,
        fp: &Fingerprint,
    ) -> Option<(Assignment, Vec<IterationStat>)> {
        self.load_clustering(PROGRESS_FILE, fp)
    }

    // --- Stage 5: domain collection --------------------------------------

    pub(crate) fn store_domains(
        &self,
        fp: &Fingerprint,
        domains: &DomainCollection,
    ) -> EsharpResult<()> {
        let (meta, members) = domains.tables().map_err(EsharpError::from)?;
        self.store(DOMAINS_FILE, fp, &[], vec![meta, members])
    }

    pub(crate) fn load_domains(&self, fp: &Fingerprint) -> Option<DomainCollection> {
        let (_, tables) = self.load(DOMAINS_FILE, fp, 2)?;
        DomainCollection::decode(&tables).ok()
    }
}

fn table_err(e: esharp_relation::RelError) -> EsharpError {
    EsharpError::Relation(e)
}

fn manifest_table(fp: &Fingerprint, extras: &[(&str, i64)]) -> EsharpResult<Table> {
    let schema = Schema::of(&[("key", DataType::Str), ("value", DataType::Int)]);
    let mut t = TableBuilder::with_capacity(schema, 3 + extras.len());
    let mut push = |key: &str, value: i64| {
        t.push_row(vec![Value::str(key), Value::Int(value)]).map_err(table_err)
    };
    push("format", FORMAT)?;
    push("config", fp.config as i64)?;
    push("input", fp.input as i64)?;
    for &(key, value) in extras {
        push(key, value)?;
    }
    Ok(t.finish())
}

struct Manifest {
    format: i64,
    config: u64,
    input: u64,
    extras: HashMap<String, i64>,
}

impl Manifest {
    fn from_table(t: &Table) -> Option<Manifest> {
        let key_col = t.column_by_name("key").ok()?;
        let value_col = t.column_by_name("value").ok()?;
        let mut entries = HashMap::with_capacity(t.num_rows());
        for row in 0..t.num_rows() {
            let Value::Str(key) = key_col.value(row) else {
                return None;
            };
            entries.insert(key.to_string(), value_col.value(row).as_int()?);
        }
        Some(Manifest {
            format: entries.remove("format")?,
            config: entries.remove("config")? as u64,
            input: entries.remove("input")? as u64,
            extras: entries,
        })
    }

    fn extra(&self, key: &str) -> Option<i64> {
        self.extras.get(key).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_querylog::{LogConfig, LogGenerator, WorldConfig};

    fn inputs() -> (World, AggregatedLog, EsharpConfig) {
        let world = World::generate(&WorldConfig::tiny(41));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(41)),
            world.terms.len(),
        );
        (world, log, EsharpConfig::tiny())
    }

    fn temp_ckpt(name: &str) -> CheckpointDir {
        let root = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&root);
        CheckpointDir::new(root).unwrap()
    }

    #[test]
    fn fingerprint_tracks_config_and_input() {
        let (world, log, config) = inputs();
        let base = Fingerprint::new(&config, &log, &world);
        assert_eq!(base, Fingerprint::new(&config, &log, &world));

        let mut tweaked = config.clone();
        tweaked.min_support += 1;
        assert_ne!(base.config, Fingerprint::new(&tweaked, &log, &world).config);

        // Worker counts must NOT invalidate checkpoints (determinism
        // contract: artifacts are bit-identical at any worker count).
        let mut workers = config.clone();
        workers.workers = 16;
        assert_eq!(base.config, Fingerprint::new(&workers, &log, &world).config);

        let mut log2 = log.clone();
        log2.raw_events += 1;
        assert_ne!(base.input, Fingerprint::new(&config, &log2, &world).input);
    }

    #[test]
    fn filtered_stage_round_trips() {
        let (world, log, config) = inputs();
        let fp = Fingerprint::new(&config, &log, &world);
        let ckpt = temp_ckpt("esharp_ckpt_filtered");
        let (filtered, dropped) = log.filter_min_support(config.min_support);
        ckpt.store_filtered(&fp, &filtered, dropped).unwrap();
        let (back, back_dropped) = ckpt.load_filtered(&fp).unwrap();
        assert_eq!(back.records, filtered.records);
        assert_eq!(back.term_totals, filtered.term_totals);
        assert_eq!(back.raw_events, filtered.raw_events);
        assert_eq!(back_dropped, dropped);
        let _ = std::fs::remove_dir_all(ckpt.root());
    }

    #[test]
    fn stale_fingerprint_misses() {
        let (world, log, config) = inputs();
        let fp = Fingerprint::new(&config, &log, &world);
        let ckpt = temp_ckpt("esharp_ckpt_stale");
        let (filtered, dropped) = log.filter_min_support(config.min_support);
        ckpt.store_filtered(&fp, &filtered, dropped).unwrap();
        let stale = Fingerprint { config: fp.config ^ 1, input: fp.input };
        assert!(ckpt.load_filtered(&stale).is_none());
        let stale = Fingerprint { config: fp.config, input: fp.input ^ 1 };
        assert!(ckpt.load_filtered(&stale).is_none());
        let _ = std::fs::remove_dir_all(ckpt.root());
    }

    #[test]
    fn corrupt_checkpoints_fall_back_to_recompute() {
        let (world, log, config) = inputs();
        let fp = Fingerprint::new(&config, &log, &world);
        let ckpt = temp_ckpt("esharp_ckpt_corrupt");
        ckpt.store_filtered(&fp, &log, 0).unwrap();
        let path = ckpt.root().join(FILTERED_FILE);
        let good = std::fs::read(&path).unwrap();
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(ckpt.load_filtered(&fp).is_none(), "cut at {cut} accepted");
        }
        let mut flipped = good.clone();
        flipped[good.len() / 3] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(ckpt.load_filtered(&fp).is_none());
        let _ = std::fs::remove_dir_all(ckpt.root());
    }

    #[test]
    fn clustering_stage_round_trips_bit_exactly() {
        let (world, log, config) = inputs();
        let fp = Fingerprint::new(&config, &log, &world);
        let ckpt = temp_ckpt("esharp_ckpt_clustering");
        let assignment = Assignment::from_vec(vec![0, 0, 2, 2, 4]);
        let trace = vec![
            IterationStat { iteration: 0, communities: 5, total_modularity: -0.125, merges: 0 },
            IterationStat { iteration: 1, communities: 3, total_modularity: 0.7331, merges: 2 },
        ];
        ckpt.store_clustering_progress(&fp, &assignment, &trace).unwrap();
        let (a, t) = ckpt.load_clustering_progress(&fp).unwrap();
        assert_eq!(a.as_slice(), assignment.as_slice());
        assert_eq!(t, trace);
        for (x, y) in t.iter().zip(&trace) {
            assert_eq!(x.total_modularity.to_bits(), y.total_modularity.to_bits());
        }
        // Finalizing clears the progress file.
        let outcome = ClusteringOutcome { assignment, trace };
        ckpt.store_clustering_final(&fp, &outcome).unwrap();
        assert!(!ckpt.root().join(PROGRESS_FILE).exists());
        let back = ckpt.load_clustering_final(&fp).unwrap();
        assert_eq!(back.assignment.as_slice(), outcome.assignment.as_slice());
        assert_eq!(back.trace, outcome.trace);
        let _ = std::fs::remove_dir_all(ckpt.root());
    }

    #[test]
    fn kill_point_surfaces_planned_faults() {
        use esharp_fault::FaultPlan;
        let ckpt = temp_ckpt("esharp_ckpt_kill")
            .with_faults(Arc::new(FaultPlan::new(7).kill_at("stage:graph")), RetryPolicy::none());
        assert!(ckpt.kill_point("stage:filtered").is_ok());
        let err = ckpt.kill_point("stage:graph").unwrap_err();
        assert!(matches!(err, EsharpError::Io { .. }), "got {err:?}");
        let _ = std::fs::remove_dir_all(ckpt.root());
    }
}
