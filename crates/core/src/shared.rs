//! Concurrent, epoch-tracked sharing of the online system.
//!
//! The paper's online stage is an interactive *service* (§5, Table 9):
//! many queries in flight while the weekly refresh swaps the domain
//! collection underneath them. [`SharedEsharp`] is that hand-off point —
//! readers take an immutable snapshot (an `Arc<Esharp>` plus the epoch it
//! belongs to) and search without holding any lock; a reload builds the
//! next state off to the side and publishes it with a single pointer
//! swap.
//!
//! ## Epochs
//!
//! Every reload attempt — successful *or* failed — advances the epoch.
//! A failed reload changes observable state too (the [`Degradation`]
//! carried in every outcome), so anything keyed on the epoch (the serving
//! layer's result cache, most importantly) is invalidated the moment the
//! answer to "what would a search return?" can change. A snapshot's
//! `Arc` and epoch are read under one lock, so the pair is always
//! consistent: a cached artifact tagged with epoch *n* was produced by
//! exactly the `Esharp` state that owned epoch *n*.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::EsharpResult;
use crate::online::Esharp;
use esharp_fault::{fault_error, FaultInjector, NoFaults};
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Fault-injection site consulted by [`SharedEsharp::reload_with`] before
/// touching the domains file (see `esharp-fault`'s site families).
pub const RELOAD_SITE: &str = "reload:domains";

/// An [`Esharp`] instance shared between concurrent readers and a
/// reloading writer, with an epoch that identifies each published state.
#[derive(Debug)]
pub struct SharedEsharp {
    /// The published state and its epoch, swapped atomically under the
    /// lock. Readers only ever clone the `Arc`; searches run lock-free on
    /// the snapshot.
    inner: RwLock<(Arc<Esharp>, u64)>,
}

impl SharedEsharp {
    /// Publish the initial state at epoch 0.
    pub fn new(esharp: Esharp) -> SharedEsharp {
        SharedEsharp {
            inner: RwLock::new((Arc::new(esharp), 0)),
        }
    }

    /// The current state and its epoch, as one consistent pair. The
    /// returned `Arc` stays valid (and immutable) across any number of
    /// concurrent reloads — a request that started on epoch *n* finishes
    /// on epoch *n*'s collection.
    pub fn snapshot(&self) -> (Arc<Esharp>, u64) {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        (Arc::clone(&guard.0), guard.1)
    }

    /// The current epoch (advances on every reload attempt).
    pub fn epoch(&self) -> u64 {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).1
    }

    /// Swap in a freshly persisted domain collection (the weekly refresh
    /// hand-off), advancing the epoch. On failure the last known-good
    /// collection keeps serving and the published state carries the
    /// [`Degradation`] — exactly [`Esharp::reload_domains`] semantics,
    /// made concurrent. Returns the new epoch on success.
    ///
    /// [`Degradation`]: crate::online::Degradation
    pub fn reload(&self, path: impl AsRef<Path>) -> EsharpResult<u64> {
        self.reload_with(path, &NoFaults, 0)
    }

    /// [`SharedEsharp::reload`] with a fault-injection seam: the injector
    /// is consulted at [`RELOAD_SITE`] with the caller-supplied attempt
    /// number before the file is read, and an injected fault takes the
    /// same failure path as a real corrupt or missing file (degradation
    /// published, epoch advanced, last known-good still serving).
    pub fn reload_with(
        &self,
        path: impl AsRef<Path>,
        injector: &dyn FaultInjector,
        attempt: u32,
    ) -> EsharpResult<u64> {
        // Build the next state outside the read path's critical section:
        // the write lock is only contended against other reloads and the
        // instant of snapshot cloning.
        let mut guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let mut next = (*guard.0).clone();
        let result = match injector.fault_at(RELOAD_SITE, attempt) {
            Some(fault) => {
                let err = fault_error(fault, RELOAD_SITE);
                next.note_reload_failure(err.to_string());
                Err(err.into())
            }
            None => next.reload_domains(path),
        };
        let epoch = guard.1 + 1;
        *guard = (Arc::new(next), epoch);
        result.map(|()| epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EsharpConfig;
    use crate::domains::DomainCollection;
    use crate::online::Degradation;
    use esharp_fault::{Fault, FaultPlan};

    fn collection(tag: &str) -> DomainCollection {
        DomainCollection::from_groups(vec![vec![tag.to_string(), format!("{tag} news")]])
    }

    fn shared() -> SharedEsharp {
        SharedEsharp::new(Esharp::new(collection("alpha"), EsharpConfig::tiny()))
    }

    #[test]
    fn snapshot_pairs_state_with_epoch() {
        let shared = shared();
        let (state, epoch) = shared.snapshot();
        assert_eq!(epoch, 0);
        assert!(state.domains().lookup("alpha").is_some());
        assert!(state.degradation().is_none());
    }

    #[test]
    fn successful_reload_swaps_and_bumps_epoch() {
        let dir = std::env::temp_dir().join("esharp_shared_reload_ok");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("domains.bin");
        collection("beta").save(&path).unwrap();

        let shared = shared();
        let (old, _) = shared.snapshot();
        assert_eq!(shared.reload(&path).unwrap(), 1);
        let (new, epoch) = shared.snapshot();
        assert_eq!(epoch, 1);
        assert!(new.domains().lookup("beta").is_some());
        assert!(new.degradation().is_none());
        // The pre-reload snapshot is untouched: in-flight requests finish
        // on the collection they started with.
        assert!(old.domains().lookup("alpha").is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_reload_bumps_epoch_and_publishes_degradation() {
        let dir = std::env::temp_dir().join("esharp_shared_reload_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("domains.bin");
        std::fs::write(&bad, b"ESRT garbage").unwrap();

        let shared = shared();
        assert!(shared.reload(&bad).is_err());
        let (state, epoch) = shared.snapshot();
        // The epoch must advance even though the collection did not: the
        // degradation state is part of what a result cache keys on.
        assert_eq!(epoch, 1);
        assert!(state.domains().lookup("alpha").is_some());
        assert!(matches!(
            state.degradation(),
            Some(Degradation::StaleDomains { .. })
        ));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn injected_fault_takes_the_degraded_path_without_touching_the_file() {
        let dir = std::env::temp_dir().join("esharp_shared_reload_fault");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("domains.bin");
        collection("gamma").save(&path).unwrap();

        let shared = shared();
        let plan = FaultPlan::new(7).trigger(RELOAD_SITE, 0, Fault::IoError { transient: false });
        assert!(shared.reload_with(&path, &plan, 0).is_err());
        let (state, epoch) = shared.snapshot();
        assert_eq!(epoch, 1);
        assert!(state.domains().lookup("alpha").is_some(), "file must not be read");
        assert!(matches!(
            state.degradation(),
            Some(Degradation::StaleDomains { .. })
        ));
        // The next attempt (attempt 1, no trigger) succeeds and clears it.
        assert_eq!(shared.reload_with(&path, &plan, 1).unwrap(), 2);
        let (state, _) = shared.snapshot();
        assert!(state.domains().lookup("gamma").is_some());
        assert!(state.degradation().is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
