//! # esharp-core
//!
//! A from-scratch reproduction of **e#: Sharper Expertise Detection from
//! Microblogs** (Sellam, Hentschel, Kandylas, Alonso — EDBT 2016).
//!
//! e# retrieves topical experts from a microblog given a keyword query.
//! Its idea: enhance a precision-oriented expert detector (Pal & Counts)
//! with *query expansion* driven by a graph of expertise domains mined
//! offline from Web search logs, recovering the experts that short posts
//! hide (high recall at negligible precision cost).
//!
//! ```
//! use esharp_core::{Esharp, EsharpConfig, run_offline};
//! use esharp_querylog::{World, WorldConfig, LogGenerator, LogConfig, AggregatedLog};
//! use esharp_microblog::{generate_corpus, CorpusConfig};
//!
//! // Ground-truth world → synthetic search log → offline pipeline.
//! let world = World::generate(&WorldConfig::tiny(7));
//! let log = AggregatedLog::from_events(
//!     LogGenerator::new(&world, &LogConfig::tiny(7)), world.terms.len());
//! let config = EsharpConfig::tiny();
//! let artifacts = run_offline(&log, &world, &config).unwrap();
//!
//! // Microblog corpus → online search with expansion.
//! let corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
//! let esharp = Esharp::new(artifacts.domains, config);
//! let outcome = esharp.search(&corpus, "49ers");
//! assert!(outcome.expansion[0] == "49ers");
//! ```
//!
//! Crate map (one crate per subsystem, see DESIGN.md): `esharp-relation`
//! (parallel relational engine + SQL front-end), `esharp-querylog`
//! (search-log substrate), `esharp-graph` (click-similarity graph),
//! `esharp-community` (modularity maximization incl. the Figure 4 SQL),
//! `esharp-microblog` (corpus substrate), `esharp-expert` (Pal & Counts
//! baseline), `esharp-eval` (experiments), `esharp-bench` (benchmarks).

#![warn(missing_docs)]

pub mod checkpoint;
mod config;
mod domains;
mod error;
mod offline;
mod online;
mod retriever;
mod shared;

pub use checkpoint::{CheckpointDir, Fingerprint};
pub use config::{ClusterBackend, EsharpConfig};
pub use domains::{DomainCollection, DomainIdx};
pub use error::{EsharpError, EsharpResult};
pub use offline::{run_clustering, run_offline, run_offline_resumable, OfflineArtifacts};
pub use online::{Degradation, Esharp, PartialResult, SearchOutcome};
pub use retriever::{ExpertiseRetriever, FrequencyRetriever, PalCountsRetriever};
pub use shared::{SharedEsharp, RELOAD_SITE};
