//! Pluggable expertise retrieval.
//!
//! §7.1: "As our framework is based on query expansion, we do not compete
//! with any of these approaches. Our system can work with any Expertise
//! Retrieval system." This trait is that seam: e#'s expansion produces a
//! set of matching tweets; any retriever can turn that evidence into a
//! ranked expert list. [`PalCountsRetriever`] is the paper's production
//! choice; [`FrequencyRetriever`] is a deliberately naive alternative used
//! by tests and ablations to show the seam works.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use esharp_expert::{Detector, DetectorConfig, ExpertResult, Features};
use esharp_microblog::{Corpus, TweetId};
use std::collections::HashMap;

/// A strategy turning matched tweets into ranked experts.
pub trait ExpertiseRetriever: Send + Sync {
    /// Rank candidate experts given the tweets that matched the (expanded)
    /// query.
    fn retrieve(&self, corpus: &Corpus, matched: &[TweetId]) -> Vec<ExpertResult>;

    /// Rank one match set per query, in order — the batch planner's rank
    /// seam. The default simply loops [`ExpertiseRetriever::retrieve`];
    /// implementations may amortize per-call setup, but each set's
    /// result must stay bit-identical to a lone `retrieve` call.
    fn retrieve_batch(&self, corpus: &Corpus, match_sets: &[Vec<TweetId>]) -> Vec<Vec<ExpertResult>> {
        match_sets
            .iter()
            .map(|matched| self.retrieve(corpus, matched))
            .collect()
    }

    /// Human-readable retriever name.
    fn name(&self) -> &'static str;
}

/// The Pal & Counts detector (§3) behind the retriever seam.
#[derive(Debug, Clone, Default)]
pub struct PalCountsRetriever {
    /// Detector configuration.
    pub config: DetectorConfig,
}

impl PalCountsRetriever {
    /// Build from a detector configuration.
    pub fn new(config: DetectorConfig) -> Self {
        PalCountsRetriever { config }
    }
}

impl ExpertiseRetriever for PalCountsRetriever {
    fn retrieve(&self, corpus: &Corpus, matched: &[TweetId]) -> Vec<ExpertResult> {
        Detector::new(corpus, self.config.clone()).rank_candidates(matched)
    }

    fn retrieve_batch(&self, corpus: &Corpus, match_sets: &[Vec<TweetId>]) -> Vec<Vec<ExpertResult>> {
        // One detector (one config clone) and one scratch checkout for
        // the whole batch instead of one per query.
        Detector::new(corpus, self.config.clone()).rank_candidates_batch(match_sets)
    }

    fn name(&self) -> &'static str {
        "pal-counts"
    }
}

/// A naive frequency baseline: rank authors by their absolute number of
/// on-topic tweets, ignoring specialization and influence entirely. Used
/// to demonstrate retriever pluggability and as a lower anchor in
/// ablations (it surfaces prolific generalists over specialists).
#[derive(Debug, Clone)]
pub struct FrequencyRetriever {
    /// Cap on results.
    pub max_results: usize,
}

impl Default for FrequencyRetriever {
    fn default() -> Self {
        FrequencyRetriever { max_results: 15 }
    }
}

impl ExpertiseRetriever for FrequencyRetriever {
    fn retrieve(&self, corpus: &Corpus, matched: &[TweetId]) -> Vec<ExpertResult> {
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for &tid in matched {
            *counts.entry(corpus.tweet(tid).author).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u32, u64)> = counts.into_iter().collect();
        // Only the top `max_results` entries survive, so a full sort is
        // wasted work on large candidate sets: select the prefix in O(n),
        // then sort just that prefix. The comparator (count desc, user id
        // asc) is the same in both steps, so the output is identical to
        // the old sort-everything-then-truncate.
        let cmp = |a: &(u32, u64), b: &(u32, u64)| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0));
        if self.max_results == 0 {
            return Vec::new();
        }
        if ranked.len() > self.max_results {
            ranked.select_nth_unstable_by(self.max_results - 1, cmp);
            ranked.truncate(self.max_results);
        }
        ranked.sort_unstable_by(cmp);
        ranked
            .into_iter()
            .map(|(user, n)| ExpertResult {
                user,
                score: n as f64,
                features: Features {
                    ts: 0.0,
                    mi: 0.0,
                    ri: 0.0,
                },
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "frequency"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{generate_corpus, CorpusConfig};
    use esharp_querylog::{World, WorldConfig};

    fn corpus() -> Corpus {
        let world = World::generate(&WorldConfig::tiny(91));
        generate_corpus(&world, &CorpusConfig::tiny(91))
    }

    #[test]
    fn pal_counts_retriever_matches_direct_detector() {
        let corpus = corpus();
        let matched = corpus.match_query("diabetes");
        let retriever = PalCountsRetriever::default();
        let direct = Detector::new(&corpus, DetectorConfig::default()).rank_candidates(&matched);
        assert_eq!(retriever.retrieve(&corpus, &matched), direct);
        assert_eq!(retriever.name(), "pal-counts");
    }

    #[test]
    fn frequency_retriever_ranks_by_volume() {
        let corpus = corpus();
        let matched = corpus.match_query("diabetes");
        let results = FrequencyRetriever::default().retrieve(&corpus, &matched);
        assert!(!results.is_empty());
        for pair in results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(results.len() <= 15);
    }

    #[test]
    fn frequency_partial_sort_matches_full_sort() {
        let corpus = corpus();
        let matched = corpus.match_query("diabetes");
        // Reference: full sort then truncate (the pre-partial-sort code).
        let reference = |max: usize| -> Vec<(u32, f64)> {
            let mut counts: HashMap<u32, u64> = HashMap::new();
            for &tid in &matched {
                *counts.entry(corpus.tweet(tid).author).or_insert(0) += 1;
            }
            let mut ranked: Vec<(u32, u64)> = counts.into_iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked
                .into_iter()
                .take(max)
                .map(|(u, n)| (u, n as f64))
                .collect()
        };
        for max in [0usize, 1, 2, 5, 15, 10_000] {
            let got: Vec<(u32, f64)> = FrequencyRetriever { max_results: max }
                .retrieve(&corpus, &matched)
                .into_iter()
                .map(|r| (r.user, r.score))
                .collect();
            assert_eq!(got, reference(max), "max_results={max}");
        }
    }

    #[test]
    fn retrievers_are_object_safe() {
        let corpus = corpus();
        let matched = corpus.match_query("diabetes");
        let retrievers: Vec<Box<dyn ExpertiseRetriever>> = vec![
            Box::new(PalCountsRetriever::default()),
            Box::new(FrequencyRetriever::default()),
        ];
        for r in &retrievers {
            let _ = r.retrieve(&corpus, &matched);
        }
    }
}
