//! Error type for the e# pipeline.

use esharp_relation::RelError;
use std::fmt;

/// Errors surfaced by the e# pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EsharpError {
    /// The SQL clustering backend failed inside the relational engine.
    Relation(RelError),
    /// A configuration was internally inconsistent.
    Config(String),
}

impl fmt::Display for EsharpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsharpError::Relation(e) => write!(f, "relational engine: {e}"),
            EsharpError::Config(msg) => write!(f, "configuration: {msg}"),
        }
    }
}

impl std::error::Error for EsharpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EsharpError::Relation(e) => Some(e),
            EsharpError::Config(_) => None,
        }
    }
}

impl From<RelError> for EsharpError {
    fn from(e: RelError) -> Self {
        EsharpError::Relation(e)
    }
}

/// Result alias for the pipeline.
pub type EsharpResult<T> = Result<T, EsharpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EsharpError::from(RelError::UnknownTable("graph".into()));
        assert!(e.to_string().contains("graph"));
        assert!(std::error::Error::source(&e).is_some());
        let c = EsharpError::Config("bad".into());
        assert!(std::error::Error::source(&c).is_none());
    }
}
