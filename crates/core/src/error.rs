//! Error type for the e# pipeline.

use esharp_relation::RelError;
use std::fmt;
use std::io;

/// Errors surfaced by the e# pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EsharpError {
    /// The SQL clustering backend failed inside the relational engine.
    Relation(RelError),
    /// A configuration was internally inconsistent.
    Config(String),
    /// Persistence failed (checkpoint write, artifact save/load). The kind
    /// is preserved so callers can distinguish transient I/O from
    /// corruption; the message carries the failing site/path.
    Io {
        /// The underlying [`io::ErrorKind`].
        kind: io::ErrorKind,
        /// Human-readable context (site, path, cause).
        message: String,
    },
}

impl fmt::Display for EsharpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EsharpError::Relation(e) => write!(f, "relational engine: {e}"),
            EsharpError::Config(msg) => write!(f, "configuration: {msg}"),
            EsharpError::Io { kind, message } => write!(f, "i/o ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for EsharpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EsharpError::Relation(e) => Some(e),
            EsharpError::Config(_) | EsharpError::Io { .. } => None,
        }
    }
}

impl From<RelError> for EsharpError {
    fn from(e: RelError) -> Self {
        EsharpError::Relation(e)
    }
}

impl From<io::Error> for EsharpError {
    fn from(e: io::Error) -> Self {
        EsharpError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

/// Result alias for the pipeline.
pub type EsharpResult<T> = Result<T, EsharpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EsharpError::from(RelError::UnknownTable("graph".into()));
        assert!(e.to_string().contains("graph"));
        assert!(std::error::Error::source(&e).is_some());
        let c = EsharpError::Config("bad".into());
        assert!(std::error::Error::source(&c).is_none());
    }

    #[test]
    fn io_errors_preserve_kind_and_context() {
        let io = io::Error::new(io::ErrorKind::InvalidData, "crc mismatch in graph.ck");
        let e = EsharpError::from(io);
        assert_eq!(
            e,
            EsharpError::Io {
                kind: io::ErrorKind::InvalidData,
                message: "crc mismatch in graph.ck".into()
            }
        );
        assert!(e.to_string().contains("graph.ck"));
        // Clone + PartialEq survive the new variant (the CLI compares and
        // caches errors).
        assert_eq!(e.clone(), e);
    }
}
