//! The collection of expertise domains and its exact-match index (§5).
//!
//! "Our approach is based on exact match: we find the community which
//! contains the query terms exactly and in order, after lower-casing."
//! The collection is the offline stage's product — "about 100 MB" in the
//! paper, "stored and indexed in SQL Server 2014, which allows us to
//! query it in a few milliseconds"; here it is an in-memory hash index
//! with the same contract.

use esharp_community::Assignment;
use esharp_graph::SimilarityGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a domain inside a [`DomainCollection`].
pub type DomainIdx = u32;

/// The keyword communities produced by the offline stage, indexed for
/// exact-match lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainCollection {
    /// Each domain's member terms. Within a domain, terms keep the graph's
    /// node order (stable across runs).
    domains: Vec<Vec<String>>,
    /// Lower-cased term → owning domain.
    index: HashMap<String, DomainIdx>,
}

impl DomainCollection {
    /// Build the collection from a clustered similarity graph.
    pub fn from_clustering(graph: &SimilarityGraph, assignment: &Assignment) -> Self {
        let mut by_community: HashMap<u32, Vec<String>> = HashMap::new();
        for node in 0..graph.num_nodes() as u32 {
            by_community
                .entry(assignment.community_of(node))
                .or_default()
                .push(graph.label(node).to_string());
        }
        // Deterministic domain order: by community's first (smallest-node)
        // member via sorted community keys.
        let mut keys: Vec<u32> = by_community.keys().copied().collect();
        keys.sort_unstable();
        let mut domains = Vec::with_capacity(keys.len());
        let mut index = HashMap::new();
        for key in keys {
            let terms = by_community.remove(&key).expect("key from map");
            let idx = domains.len() as DomainIdx;
            for term in &terms {
                index.insert(term.to_lowercase(), idx);
            }
            domains.push(terms);
        }
        DomainCollection { domains, index }
    }

    /// Build directly from term groups (tests, fixtures).
    pub fn from_groups(groups: Vec<Vec<String>>) -> Self {
        let mut index = HashMap::new();
        for (i, group) in groups.iter().enumerate() {
            for term in group {
                index.insert(term.to_lowercase(), i as DomainIdx);
            }
        }
        DomainCollection {
            domains: groups,
            index,
        }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the collection holds no domains.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// All domains.
    pub fn domains(&self) -> &[Vec<String>] {
        &self.domains
    }

    /// Exact-match lookup (after lower-casing): the domain containing the
    /// query verbatim.
    pub fn lookup(&self, query: &str) -> Option<&[String]> {
        let idx = *self.index.get(&query.to_lowercase())?;
        Some(&self.domains[idx as usize])
    }

    /// Expansion terms for a query (§5): the query itself first, then its
    /// community siblings, capped at `max_terms`. Falls back to just the
    /// query when no community matches — e# then behaves exactly like the
    /// baseline.
    pub fn expand(&self, query: &str, max_terms: usize) -> Vec<String> {
        let lower = query.to_lowercase();
        let mut out = vec![lower.clone()];
        if let Some(domain) = self.lookup(&lower) {
            for term in domain {
                if out.len() >= max_terms.max(1) {
                    break;
                }
                // Guard against duplicate members (clustered graphs have
                // unique labels, but hand-built collections may not).
                if *term != lower && !out.contains(term) {
                    out.push(term.clone());
                }
            }
        }
        out
    }

    /// Persist to a JSON file (the paper stores its collection in SQL
    /// Server 2014; a serialized index with millisecond lookups is the
    /// same contract).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a collection persisted by [`DomainCollection::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<DomainCollection> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }

    /// Approximate payload bytes (the "about 100 MB" of §6.3).
    pub fn byte_size(&self) -> u64 {
        self.domains
            .iter()
            .flat_map(|d| d.iter())
            .map(|t| t.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> DomainCollection {
        DomainCollection::from_groups(vec![
            vec!["49ers".into(), "niners".into(), "49ers draft".into()],
            vec!["diabetes".into(), "t1d".into()],
        ])
    }

    #[test]
    fn lookup_is_exact_and_case_insensitive() {
        let c = collection();
        assert!(c.lookup("49ERS").is_some());
        assert!(c.lookup("49ers draft").is_some());
        // Exact match only: sub-phrases do not hit.
        assert!(c.lookup("draft").is_none());
        assert!(c.lookup("unknown").is_none());
    }

    #[test]
    fn expand_puts_query_first_and_caps() {
        let c = collection();
        let terms = c.expand("NINERS", 10);
        assert_eq!(terms[0], "niners");
        assert_eq!(terms.len(), 3);
        let capped = c.expand("niners", 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn expand_falls_back_to_the_query_alone() {
        let c = collection();
        assert_eq!(c.expand("unknown topic", 10), vec!["unknown topic"]);
    }

    #[test]
    fn from_clustering_groups_by_community() {
        use esharp_graph::{Edge, SimilarityGraph};
        use std::sync::Arc;
        let graph = SimilarityGraph::new(
            vec![Arc::from("a"), Arc::from("b"), Arc::from("c")],
            vec![Edge { a: 0, b: 1, weight: 0.9 }],
        );
        let assignment = Assignment::from_vec(vec![0, 0, 2]);
        let c = DomainCollection::from_clustering(&graph, &assignment);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a"), c.lookup("b"));
        assert_ne!(c.lookup("a"), c.lookup("c"));
    }

    #[test]
    fn save_load_round_trip() {
        let c = collection();
        let dir = std::env::temp_dir().join("esharp_domains_test");
        let path = dir.join("domains.json");
        c.save(&path).unwrap();
        let back = DomainCollection::load(&path).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.expand("49ers", 10), c.expand("49ers", 10));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serializes_round_trip() {
        let c = collection();
        let json = serde_json::to_string(&c).unwrap();
        let back: DomainCollection = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lookup("niners").map(|d| d.len()), Some(3));
    }
}
