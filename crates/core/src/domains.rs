//! The collection of expertise domains and its exact-match index (§5).
//!
//! "Our approach is based on exact match: we find the community which
//! contains the query terms exactly and in order, after lower-casing."
//! The collection is the offline stage's product — "about 100 MB" in the
//! paper, "stored and indexed in SQL Server 2014, which allows us to
//! query it in a few milliseconds"; here it is an in-memory hash index
//! with the same contract.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use esharp_community::Assignment;
use esharp_fault::{FaultInjector, NoFaults, RetryPolicy};
use esharp_graph::SimilarityGraph;
use esharp_relation::atomic::atomic_write_with;
use esharp_relation::binfmt::{decode_frames_exact, encode_frames};
use esharp_relation::{DataType, Schema, TableBuilder, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a domain inside a [`DomainCollection`].
pub type DomainIdx = u32;

/// The keyword communities produced by the offline stage, indexed for
/// exact-match lookup.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomainCollection {
    /// Each domain's member terms. Within a domain, terms keep the graph's
    /// node order (stable across runs).
    domains: Vec<Vec<String>>,
    /// Lower-cased term → owning domain.
    index: HashMap<String, DomainIdx>,
}

impl DomainCollection {
    /// Build the collection from a clustered similarity graph.
    pub fn from_clustering(graph: &SimilarityGraph, assignment: &Assignment) -> Self {
        let mut by_community: HashMap<u32, Vec<String>> = HashMap::new();
        for node in 0..graph.num_nodes() as u32 {
            by_community
                .entry(assignment.community_of(node))
                .or_default()
                .push(graph.label(node).to_string());
        }
        // Deterministic domain order: by community's first (smallest-node)
        // member via sorted community keys.
        let mut keys: Vec<u32> = by_community.keys().copied().collect();
        keys.sort_unstable();
        let mut domains = Vec::with_capacity(keys.len());
        let mut index = HashMap::new();
        for key in keys {
            let Some(terms) = by_community.remove(&key) else {
                continue; // unreachable: keys come from the map itself
            };
            let idx = domains.len() as DomainIdx;
            for term in &terms {
                index.insert(term.to_lowercase(), idx);
            }
            domains.push(terms);
        }
        DomainCollection { domains, index }
    }

    /// Build directly from term groups (tests, fixtures).
    pub fn from_groups(groups: Vec<Vec<String>>) -> Self {
        let mut index = HashMap::new();
        for (i, group) in groups.iter().enumerate() {
            for term in group {
                index.insert(term.to_lowercase(), i as DomainIdx);
            }
        }
        DomainCollection {
            domains: groups,
            index,
        }
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True when the collection holds no domains.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// All domains.
    pub fn domains(&self) -> &[Vec<String>] {
        &self.domains
    }

    /// Exact-match lookup (after lower-casing): the domain containing the
    /// query verbatim.
    pub fn lookup(&self, query: &str) -> Option<&[String]> {
        let idx = *self.index.get(&query.to_lowercase())?;
        Some(&self.domains[idx as usize])
    }

    /// Expansion terms for a query (§5): the query itself first, then its
    /// community siblings, capped at `max_terms`. Falls back to just the
    /// query when no community matches — e# then behaves exactly like the
    /// baseline.
    pub fn expand(&self, query: &str, max_terms: usize) -> Vec<String> {
        let lower = query.to_lowercase();
        let mut out = vec![lower.clone()];
        if let Some(domain) = self.lookup(&lower) {
            for term in domain {
                if out.len() >= max_terms.max(1) {
                    break;
                }
                // Guard against duplicate members (clustered graphs have
                // unique labels, but hand-built collections may not).
                if *term != lower && !out.contains(term) {
                    out.push(term.clone());
                }
            }
        }
        out
    }

    /// Persist the collection (the paper stores its collection in SQL
    /// Server 2014; a checksummed on-disk index with millisecond lookups
    /// is the same contract). The write is atomic and the payload is the
    /// checksummed binary table format, so a torn write can never shadow
    /// a good collection and corruption is detected on load.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.save_with(path, &NoFaults, "write:domains", &RetryPolicy::none())
    }

    /// [`DomainCollection::save`] with fault injection and bounded retry
    /// (the checkpointed pipeline's entry point).
    pub fn save_with(
        &self,
        path: impl AsRef<std::path::Path>,
        injector: &dyn FaultInjector,
        site: &str,
        retry: &RetryPolicy,
    ) -> std::io::Result<()> {
        atomic_write_with(path, &self.encode()?, injector, site, retry)
    }

    fn encode(&self) -> std::io::Result<Vec<u8>> {
        let (meta, members) = self.tables()?;
        Ok(encode_frames(&[meta, members]))
    }

    /// The collection's on-disk relation pair, reused by the checkpointed
    /// pipeline to embed collections in multi-frame checkpoint files.
    pub(crate) fn tables(&self) -> std::io::Result<(esharp_relation::Table, esharp_relation::Table)> {
        // meta(key, value) carries the domain count so empty domains
        // survive the round trip; members(domain, term) carries the rest.
        let meta_schema = Schema::of(&[("key", DataType::Str), ("value", DataType::Int)]);
        let mut meta = TableBuilder::new(meta_schema);
        meta.push_row(vec![Value::str("num_domains"), Value::Int(self.domains.len() as i64)])
            .map_err(std::io::Error::other)?;
        let members_schema = Schema::of(&[("domain", DataType::Int), ("term", DataType::Str)]);
        let total: usize = self.domains.iter().map(|d| d.len()).sum();
        let mut members = TableBuilder::with_capacity(members_schema, total);
        for (idx, terms) in self.domains.iter().enumerate() {
            for term in terms {
                members
                    .push_row(vec![Value::Int(idx as i64), Value::str(term.as_str())])
                    .map_err(std::io::Error::other)?;
            }
        }
        Ok((meta.finish(), members.finish()))
    }

    /// Load a collection persisted by [`DomainCollection::save`].
    /// Corruption (truncation, bit flips, trailing bytes) errors — it
    /// never yields a silently-wrong collection. Legacy JSON files from
    /// pre-checksum runs remain readable.
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<DomainCollection> {
        let data = std::fs::read(path)?;
        match decode_frames_exact(&data, 2) {
            Ok(tables) => Self::decode(&tables),
            // Legacy format: a bare JSON object from pre-v2 runs.
            Err(_) if data.first() == Some(&b'{') => {
                let json = std::str::from_utf8(&data).map_err(std::io::Error::other)?;
                serde_json::from_str(json).map_err(std::io::Error::other)
            }
            Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    pub(crate) fn decode(tables: &[esharp_relation::Table]) -> std::io::Result<DomainCollection> {
        let err = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let (meta, members) = (&tables[0], &tables[1]);
        let key_col = meta.column_by_name("key").map_err(std::io::Error::other)?;
        let value_col = meta.column_by_name("value").map_err(std::io::Error::other)?;
        let mut num_domains: Option<usize> = None;
        for row in 0..meta.num_rows() {
            if let (Value::Str(key), Value::Int(value)) = (key_col.value(row), value_col.value(row))
            {
                if &*key == "num_domains" {
                    num_domains =
                        Some(usize::try_from(value).map_err(|_| err("negative domain count"))?);
                }
            }
        }
        let num_domains = num_domains.ok_or_else(|| err("missing num_domains"))?;
        let mut groups: Vec<Vec<String>> = vec![Vec::new(); num_domains];
        let domain_col = members.column_by_name("domain").map_err(std::io::Error::other)?;
        let term_col = members.column_by_name("term").map_err(std::io::Error::other)?;
        for row in 0..members.num_rows() {
            let idx = domain_col
                .value(row)
                .as_int()
                .ok_or_else(|| err("non-int domain id"))? as usize;
            if idx >= num_domains {
                return Err(err("domain id out of range"));
            }
            let Value::Str(term) = term_col.value(row) else {
                return Err(err("non-string term"));
            };
            groups[idx].push(term.to_string());
        }
        Ok(DomainCollection::from_groups(groups))
    }

    /// Approximate payload bytes (the "about 100 MB" of §6.3).
    pub fn byte_size(&self) -> u64 {
        self.domains
            .iter()
            .flat_map(|d| d.iter())
            .map(|t| t.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> DomainCollection {
        DomainCollection::from_groups(vec![
            vec!["49ers".into(), "niners".into(), "49ers draft".into()],
            vec!["diabetes".into(), "t1d".into()],
        ])
    }

    #[test]
    fn lookup_is_exact_and_case_insensitive() {
        let c = collection();
        assert!(c.lookup("49ERS").is_some());
        assert!(c.lookup("49ers draft").is_some());
        // Exact match only: sub-phrases do not hit.
        assert!(c.lookup("draft").is_none());
        assert!(c.lookup("unknown").is_none());
    }

    #[test]
    fn expand_puts_query_first_and_caps() {
        let c = collection();
        let terms = c.expand("NINERS", 10);
        assert_eq!(terms[0], "niners");
        assert_eq!(terms.len(), 3);
        let capped = c.expand("niners", 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn expand_falls_back_to_the_query_alone() {
        let c = collection();
        assert_eq!(c.expand("unknown topic", 10), vec!["unknown topic"]);
    }

    #[test]
    fn from_clustering_groups_by_community() {
        use esharp_graph::{Edge, SimilarityGraph};
        use std::sync::Arc;
        let graph = SimilarityGraph::new(
            vec![Arc::from("a"), Arc::from("b"), Arc::from("c")],
            vec![Edge { a: 0, b: 1, weight: 0.9 }],
        );
        let assignment = Assignment::from_vec(vec![0, 0, 2]);
        let c = DomainCollection::from_clustering(&graph, &assignment);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a"), c.lookup("b"));
        assert_ne!(c.lookup("a"), c.lookup("c"));
    }

    #[test]
    fn save_load_round_trip() {
        let c = collection();
        let dir = std::env::temp_dir().join("esharp_domains_test");
        let path = dir.join("domains.bin");
        c.save(&path).unwrap();
        let back = DomainCollection::load(&path).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.domains(), c.domains());
        assert_eq!(back.expand("49ers", 10), c.expand("49ers", 10));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_domains_survive_the_round_trip() {
        let c = DomainCollection::from_groups(vec![
            vec!["a".into()],
            vec![],
            vec!["b".into(), "c".into()],
        ]);
        let dir = std::env::temp_dir().join("esharp_domains_empty");
        let path = dir.join("domains.bin");
        c.save(&path).unwrap();
        let back = DomainCollection::load(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.domains()[1], Vec::<String>::new());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corruption_always_errors_never_misparses() {
        let c = collection();
        let dir = std::env::temp_dir().join("esharp_domains_corrupt");
        let path = dir.join("domains.bin");
        c.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Truncation at every byte boundary.
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(DomainCollection::load(&path).is_err(), "cut at {cut} accepted");
        }
        // Every single-bit flip.
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                std::fs::write(&path, &bad).unwrap();
                assert!(
                    DomainCollection::load(&path).is_err(),
                    "bit flip at byte {byte} bit {bit} accepted"
                );
            }
        }
        // Trailing bytes.
        let mut extra = good.clone();
        extra.extend_from_slice(&[9, 9, 9]);
        std::fs::write(&path, &extra).unwrap();
        assert!(DomainCollection::load(&path).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn legacy_json_files_never_misparse_as_binary() {
        // Pre-checksum runs persisted bare JSON. The loader must route
        // those to the JSON path (readable with a real serde_json; a
        // clean error under the offline dev stub) — never panic, never
        // decode them as binary garbage.
        let dir = std::env::temp_dir().join("esharp_domains_legacy");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("domains.json");
        std::fs::write(&path, br#"{"domains":[["49ers","niners"]],"index":{"49ers":0,"niners":0}}"#)
            .unwrap();
        match DomainCollection::load(&path) {
            Ok(back) => assert_eq!(back.lookup("niners").map(|d| d.len()), Some(2)),
            Err(e) => assert!(e.to_string().contains("stub"), "unexpected error: {e}"),
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serializes_round_trip() {
        let c = collection();
        let json = serde_json::to_string(&c).unwrap();
        let back: DomainCollection = serde_json::from_str(&json).unwrap();
        assert_eq!(back.lookup("niners").map(|d| d.len()), Some(3));
    }
}
