//! End-to-end configuration of the e# pipeline.

use esharp_expert::DetectorConfig;
use esharp_graph::GraphConfig;
use serde::{Deserialize, Serialize};

/// Which community-detection backend the offline stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterBackend {
    /// The paper's parallel 3-step algorithm (native implementation).
    Parallel,
    /// The same algorithm through the Figure 4 SQL on `esharp-relation`.
    Sql,
    /// Newman/CNM sequential greedy (§4.2.1 baseline).
    Newman,
    /// Louvain (future-work ablation).
    Louvain,
    /// Label propagation (future-work ablation).
    LabelPropagation,
}

/// Full e# configuration: offline (graph + clustering) and online
/// (expansion + detection) parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EsharpConfig {
    /// Minimum query observations to survive the support filter (the
    /// paper's "less than 50 times per month" rule).
    pub min_support: u64,
    /// Similarity-graph construction parameters.
    #[serde(skip, default)]
    pub graph: GraphConfig,
    /// Weight discretization scale (§4.2.1 footnote: "rescale and
    /// discretize the weights to obtain integers").
    pub discretize_scale: f64,
    /// Clustering backend.
    pub backend: ClusterBackend,
    /// Iteration cap for the iterative backends.
    pub max_iterations: usize,
    /// Worker threads for the parallel/SQL backends.
    pub workers: usize,
    /// Baseline detector configuration.
    pub detector: DetectorConfig,
    /// Enable query expansion (false ⇒ e# degrades to the pure baseline).
    pub expansion: bool,
    /// Cap on related terms appended to a query ("append the corresponding
    /// keywords"; very large communities would otherwise flood matching).
    pub max_expansion_terms: usize,
    /// Worker threads for the online match phase: expansion terms are
    /// scattered over the corpus's postings shards and the per-shard
    /// unions merged deterministically, so results are bit-identical at
    /// any setting. `1` keeps the match phase serial on the caller.
    #[serde(default = "default_search_workers")]
    pub search_workers: usize,
    /// Buffer-pool budget (bytes) for the SQL backend. `Some` runs the
    /// clustering SQL out-of-core: the multigraph is written to a paged
    /// heap file and scanned through a pool of this many bytes. `None`
    /// keeps the tables fully in memory. Bit-identical either way.
    #[serde(default)]
    pub sql_buffer_pool_bytes: Option<usize>,
    /// Per-operator memory grant (bytes) for the SQL backend's blocking
    /// operators; sorts/joins/aggregates beyond it spill to checksummed
    /// run files. `None` means unbounded (never spill).
    #[serde(default)]
    pub sql_memory_grant: Option<usize>,
}

/// Serde fallback for configs written before `search_workers` existed.
fn default_search_workers() -> usize {
    4.min(esharp_par::detected_workers())
}

impl Default for EsharpConfig {
    fn default() -> Self {
        EsharpConfig {
            min_support: 50,
            graph: GraphConfig::default(),
            discretize_scale: 6.0,
            backend: ClusterBackend::Parallel,
            max_iterations: 20,
            // Clamp to the host: on a machine with fewer cores than the
            // nominal default, extra workers only add queue contention.
            // Results are identical either way (the esharp-par
            // determinism contract keys chunking on input length, never
            // on worker count).
            workers: 4.min(esharp_par::detected_workers()),
            detector: DetectorConfig::default(),
            expansion: true,
            max_expansion_terms: 25,
            search_workers: default_search_workers(),
            sql_buffer_pool_bytes: None,
            sql_memory_grant: None,
        }
    }
}

impl EsharpConfig {
    /// A small, fast configuration for unit tests: lower support threshold
    /// (tiny logs), serial execution.
    pub fn tiny() -> Self {
        EsharpConfig {
            min_support: 10,
            workers: 1,
            search_workers: 1,
            ..EsharpConfig::default()
        }
    }
}

// `GraphConfig` carries no serde derives (it lives in a crate without the
// derive feature wired for it); provide the Default the `serde(skip)`
// attribute needs.

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = EsharpConfig::default();
        assert_eq!(c.min_support, 50);
        assert_eq!(c.detector.max_results, 15);
        assert!(c.expansion);
        assert_eq!(c.backend, ClusterBackend::Parallel);
    }

    #[test]
    fn config_serializes() {
        let c = EsharpConfig::tiny();
        let json = serde_json::to_string(&c).unwrap();
        let back: EsharpConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.min_support, c.min_support);
    }
}
