//! The offline stage (§4 + Figure 1 left half): aggregated query log →
//! support filter → similarity graph → discretization → community
//! detection → [`DomainCollection`].
//!
//! Every stage is timed and sized so the pipeline can print its own
//! Table 9 analog.

use crate::checkpoint::{CheckpointDir, Fingerprint};
use crate::config::{ClusterBackend, EsharpConfig};
use crate::domains::DomainCollection;
use crate::error::{EsharpError, EsharpResult};
use esharp_community::{
    cluster_label_propagation, cluster_louvain, cluster_newman, cluster_parallel,
    cluster_parallel_resumable, cluster_sql, ClusteringOutcome, IterationStat, LabelPropConfig,
    LouvainConfig, NewmanConfig, ParallelConfig, PartitionStats, SqlClusterConfig,
};
use esharp_graph::{build_graph, BuildStats, MultiGraph, SimilarityGraph};
use esharp_querylog::{AggregatedLog, World};
use esharp_relation::StageStats;
use std::time::Instant;

/// Assumed byte width of one raw log event, used to report the size of the
/// *raw* input the extraction stage conceptually reads (the paper reads
/// 998 GB of raw logs; we only materialize aggregates).
const RAW_EVENT_BYTES: u64 = 60;

/// Everything the offline stage produces.
#[derive(Debug, Clone)]
pub struct OfflineArtifacts {
    /// The similarity graph (kept for Figure 7 style inspection).
    pub graph: SimilarityGraph,
    /// The discretized multigraph clustering ran on.
    pub multigraph: MultiGraph,
    /// Clustering result with the Figure 5 iteration trace.
    pub outcome: ClusteringOutcome,
    /// The indexed domain collection (the online stage's input).
    pub domains: DomainCollection,
    /// Graph-construction statistics.
    pub build_stats: BuildStats,
    /// Queries dropped by the support filter.
    pub dropped_terms: usize,
    /// Per-stage resource records (Table 9 shape).
    pub stages: Vec<StageStats>,
}

/// Run the full offline pipeline on an aggregated log.
pub fn run_offline(
    log: &AggregatedLog,
    world: &World,
    config: &EsharpConfig,
) -> EsharpResult<OfflineArtifacts> {
    let mut stages = Vec::new();

    // --- Extraction: support filter + similarity graph (§4.1).
    let started = Instant::now();
    let (filtered, dropped_terms) = log.filter_min_support(config.min_support);
    // The pipeline-level worker knob governs every offline stage; the
    // nested graph config only overrides it when set explicitly.
    let graph_config = esharp_graph::GraphConfig {
        workers: config.graph.workers.max(config.workers),
        ..config.graph.clone()
    };
    let (graph, build_stats) = build_graph(&filtered, world, &graph_config);
    let mut extraction = StageStats::new("extraction", config.workers);
    extraction.wall = started.elapsed();
    extraction.rows_read = log.raw_events;
    extraction.bytes_read = log.raw_events * RAW_EVENT_BYTES;
    extraction.rows_written = graph.num_edges() as u64;
    extraction.bytes_written = graph.byte_size();
    stages.push(extraction);

    // --- Clustering (§4.2).
    let started = Instant::now();
    let multigraph = MultiGraph::from_similarity(&graph, config.discretize_scale);
    let outcome = run_clustering(&multigraph, config)?;
    let domains = DomainCollection::from_clustering(&graph, &outcome.assignment);
    let mut clustering = StageStats::new("clustering", config.workers);
    clustering.wall = started.elapsed();
    clustering.rows_read = graph.num_edges() as u64;
    clustering.bytes_read = graph.byte_size();
    clustering.rows_written = domains.len() as u64;
    clustering.bytes_written = domains.byte_size();
    stages.push(clustering);

    Ok(OfflineArtifacts {
        graph,
        multigraph,
        outcome,
        domains,
        build_stats,
        dropped_terms,
        stages,
    })
}

/// Crash-safe variant of [`run_offline`]: every stage (filtered log →
/// graph → multigraph → clustering → domains) is persisted to `ckpt` as a
/// checksummed, atomically-written checkpoint, and stages whose checkpoint
/// validates against the current configuration and inputs are *loaded*
/// instead of recomputed. The parallel clustering backend additionally
/// checkpoints its per-iteration trace, so a run killed at iteration 4
/// restarts at 4, not 0.
///
/// Determinism: the pipeline is bit-deterministic (see the `esharp-par`
/// contract), and each stage's loader reconstructs exactly what its saver
/// observed — so a run killed and resumed at *any* boundary produces
/// artifacts bit-identical to an uninterrupted run
/// (`tests/crashsafety.rs` proves this for every stage and iteration).
///
/// Invalid, stale or corrupt checkpoints are silently recomputed; write
/// failures surface as [`EsharpError::Io`].
pub fn run_offline_resumable(
    log: &AggregatedLog,
    world: &World,
    config: &EsharpConfig,
    ckpt: &CheckpointDir,
) -> EsharpResult<OfflineArtifacts> {
    let fp = Fingerprint::new(config, log, world);
    let mut stages = Vec::new();

    // --- Stage 1: support filter.
    let started = Instant::now();
    let (filtered, dropped_terms) = match ckpt.load_filtered(&fp) {
        Some(cached) => cached,
        None => {
            let (filtered, dropped) = log.filter_min_support(config.min_support);
            ckpt.store_filtered(&fp, &filtered, dropped)?;
            (filtered, dropped)
        }
    };
    ckpt.kill_point("stage:filtered")?;

    // --- Stage 2: similarity graph.
    let graph_config = esharp_graph::GraphConfig {
        workers: config.graph.workers.max(config.workers),
        ..config.graph.clone()
    };
    let (graph, build_stats) = match ckpt.load_graph(&fp) {
        Some(cached) => cached,
        None => {
            let (graph, stats) = build_graph(&filtered, world, &graph_config);
            ckpt.store_graph(&fp, &graph, &stats)?;
            (graph, stats)
        }
    };
    ckpt.kill_point("stage:graph")?;
    let mut extraction = StageStats::new("extraction", config.workers);
    extraction.wall = started.elapsed();
    extraction.rows_read = log.raw_events;
    extraction.bytes_read = log.raw_events * RAW_EVENT_BYTES;
    extraction.rows_written = graph.num_edges() as u64;
    extraction.bytes_written = graph.byte_size();
    stages.push(extraction);

    // --- Stage 3: discretized multigraph.
    let started = Instant::now();
    let multigraph = match ckpt.load_multigraph(&fp) {
        Some(cached) => cached,
        None => {
            let mg = MultiGraph::from_similarity(&graph, config.discretize_scale);
            ckpt.store_multigraph(&fp, &mg)?;
            mg
        }
    };
    ckpt.kill_point("stage:multigraph")?;

    // --- Stage 4: clustering. The parallel backend resumes mid-stage from
    // its iteration trace; the others checkpoint at stage granularity.
    let outcome = match ckpt.load_clustering_final(&fp) {
        Some(cached) => cached,
        None => {
            let outcome = if config.backend == ClusterBackend::Parallel {
                let resume = ckpt.load_clustering_progress(&fp);
                cluster_parallel_resumable(
                    &multigraph,
                    &ParallelConfig {
                        max_iterations: config.max_iterations,
                        workers: config.workers,
                    },
                    resume,
                    |assignment, trace| {
                        ckpt.store_clustering_progress(&fp, assignment, trace)?;
                        let last = trace.last().map_or(0, |s| s.iteration);
                        ckpt.kill_point(&format!("iter:{last}"))
                    },
                )?
            } else {
                run_clustering(&multigraph, config)?
            };
            ckpt.store_clustering_final(&fp, &outcome)?;
            outcome
        }
    };
    ckpt.kill_point("stage:clustering")?;

    // --- Stage 5: domain collection.
    let domains = match ckpt.load_domains(&fp) {
        Some(cached) => cached,
        None => {
            let domains = DomainCollection::from_clustering(&graph, &outcome.assignment);
            ckpt.store_domains(&fp, &domains)?;
            domains
        }
    };
    ckpt.kill_point("stage:domains")?;
    let mut clustering = StageStats::new("clustering", config.workers);
    clustering.wall = started.elapsed();
    clustering.rows_read = graph.num_edges() as u64;
    clustering.bytes_read = graph.byte_size();
    clustering.rows_written = domains.len() as u64;
    clustering.bytes_written = domains.byte_size();
    stages.push(clustering);

    Ok(OfflineArtifacts {
        graph,
        multigraph,
        outcome,
        domains,
        build_stats,
        dropped_terms,
        stages,
    })
}

/// Dispatch to the configured clustering backend. Non-iterative backends
/// synthesize a two-row trace so downstream consumers (Figure 5) see a
/// uniform shape.
pub fn run_clustering(
    multigraph: &MultiGraph,
    config: &EsharpConfig,
) -> EsharpResult<ClusteringOutcome> {
    let outcome = match config.backend {
        ClusterBackend::Parallel => cluster_parallel(
            multigraph,
            &ParallelConfig {
                max_iterations: config.max_iterations,
                workers: config.workers,
            },
        ),
        ClusterBackend::Sql => cluster_sql(
            multigraph,
            &SqlClusterConfig {
                max_iterations: config.max_iterations,
                workers: config.workers,
                buffer_pool_bytes: config.sql_buffer_pool_bytes,
                memory_grant: config.sql_memory_grant,
                ..Default::default()
            },
        )
        .map_err(EsharpError::Relation)?,
        ClusterBackend::Newman => {
            wrap_flat(multigraph, cluster_newman(multigraph, &NewmanConfig::default()))
        }
        ClusterBackend::Louvain => wrap_flat(
            multigraph,
            cluster_louvain(
                multigraph,
                &LouvainConfig {
                    max_sweeps: config.max_iterations,
                    max_levels: 10,
                },
            ),
        ),
        ClusterBackend::LabelPropagation => wrap_flat(
            multigraph,
            cluster_label_propagation(
                multigraph,
                &LabelPropConfig {
                    max_sweeps: config.max_iterations,
                    ..Default::default()
                },
            ),
        ),
    };
    Ok(outcome)
}

fn wrap_flat(
    multigraph: &MultiGraph,
    assignment: esharp_community::Assignment,
) -> ClusteringOutcome {
    let initial = PartitionStats::compute(
        multigraph,
        &esharp_community::Assignment::singletons(multigraph.num_nodes()),
    );
    let after = PartitionStats::compute(multigraph, &assignment);
    let trace = vec![
        IterationStat {
            iteration: 0,
            communities: multigraph.num_nodes(),
            total_modularity: initial.total_modularity(),
            merges: 0,
        },
        IterationStat {
            iteration: 1,
            communities: assignment.num_communities(),
            total_modularity: after.total_modularity(),
            merges: 0,
        },
    ];
    ClusteringOutcome { assignment, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_querylog::{LogConfig, LogGenerator, WorldConfig};

    fn inputs() -> (World, AggregatedLog) {
        let world = World::generate(&WorldConfig::tiny(41));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(41)),
            world.terms.len(),
        );
        (world, log)
    }

    #[test]
    fn offline_pipeline_produces_usable_domains() {
        let (world, log) = inputs();
        let artifacts = run_offline(&log, &world, &EsharpConfig::tiny()).unwrap();
        assert!(artifacts.domains.len() > 1);
        // The 49ers showcase community must group at least one variant with
        // the head term.
        let niners = artifacts.domains.lookup("49ers").expect("49ers indexed");
        assert!(niners.len() >= 2, "49ers domain too small: {niners:?}");
        assert_eq!(artifacts.stages.len(), 2);
        assert!(artifacts.stages[0].bytes_read > artifacts.stages[0].bytes_written);
    }

    #[test]
    fn sql_backend_matches_parallel_backend() {
        let (world, log) = inputs();
        let mut config = EsharpConfig::tiny();
        config.backend = ClusterBackend::Parallel;
        let native = run_offline(&log, &world, &config).unwrap();
        config.backend = ClusterBackend::Sql;
        let sql = run_offline(&log, &world, &config).unwrap();
        assert!(native
            .outcome
            .assignment
            .same_partition(&sql.outcome.assignment));
    }

    #[test]
    fn trace_has_convergence_shape() {
        let (world, log) = inputs();
        let artifacts = run_offline(&log, &world, &EsharpConfig::tiny()).unwrap();
        let trace = &artifacts.outcome.trace;
        assert!(trace.len() >= 2, "expected at least one merge iteration");
        assert!(trace.last().unwrap().communities < trace[0].communities);
    }

    #[test]
    fn alternative_backends_run() {
        let (world, log) = inputs();
        for backend in [
            ClusterBackend::Newman,
            ClusterBackend::Louvain,
            ClusterBackend::LabelPropagation,
        ] {
            let config = EsharpConfig {
                backend,
                ..EsharpConfig::tiny()
            };
            let artifacts = run_offline(&log, &world, &config).unwrap();
            assert!(artifacts.domains.len() > 1, "{backend:?} degenerate");
        }
    }
}
