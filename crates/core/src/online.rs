//! The online stage (§5 + Figure 1 right half): query matching → query
//! expansion → expert detection over the union of per-term matches.

use crate::config::EsharpConfig;
use crate::domains::DomainCollection;
use crate::retriever::ExpertiseRetriever;
use esharp_expert::{Detector, ExpertResult};
use esharp_microblog::{Corpus, TweetId};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The result of one online search, with the per-phase timings the
/// paper reports in Table 9 (expansion < 100 ms, detection < 1 s).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Ranked experts.
    pub experts: Vec<ExpertResult>,
    /// The terms actually searched (query first; length 1 ⇒ no expansion
    /// happened).
    pub expansion: Vec<String>,
    /// Distinct tweets matched across all expansion terms.
    pub matched_tweets: usize,
    /// Time spent in domain lookup + expansion.
    pub expansion_time: Duration,
    /// Time spent matching and ranking.
    pub detection_time: Duration,
}

/// The e# online system: a domain collection plus a detector
/// configuration.
#[derive(Debug, Clone)]
pub struct Esharp {
    domains: DomainCollection,
    config: EsharpConfig,
    /// Default retriever, built once at assembly time so the per-query
    /// path does not re-clone the detector configuration on every search.
    retriever: crate::retriever::PalCountsRetriever,
}

impl Esharp {
    /// Assemble the online system from offline artifacts.
    pub fn new(domains: DomainCollection, config: EsharpConfig) -> Self {
        let retriever = crate::retriever::PalCountsRetriever::new(config.detector.clone());
        Esharp {
            domains,
            config,
            retriever,
        }
    }

    /// The domain collection.
    pub fn domains(&self) -> &DomainCollection {
        &self.domains
    }

    /// The configuration.
    pub fn config(&self) -> &EsharpConfig {
        &self.config
    }

    /// e# search: expand the query through its expertise domain (when one
    /// matches exactly, §5), run the match for every related term, union
    /// the results and rank once with the configured Pal & Counts
    /// detector.
    pub fn search(&self, corpus: &Corpus, query: &str) -> SearchOutcome {
        self.search_with(corpus, query, &self.retriever)
    }

    /// e# search through any [`ExpertiseRetriever`] — the §7.1 seam:
    /// "our system can work with any Expertise Retrieval system".
    /// Expansion and matching are identical to [`Esharp::search`]; only
    /// the ranking strategy changes.
    pub fn search_with(
        &self,
        corpus: &Corpus,
        query: &str,
        retriever: &dyn ExpertiseRetriever,
    ) -> SearchOutcome {
        let expansion_started = Instant::now();
        let expansion = if self.config.expansion {
            self.domains.expand(query, self.config.max_expansion_terms)
        } else {
            vec![query.to_lowercase()]
        };
        let expansion_time = expansion_started.elapsed();

        let detection_started = Instant::now();
        let mut matched: Vec<TweetId> = Vec::new();
        for term in &expansion {
            matched.extend(corpus.match_query(term));
        }
        matched.sort_unstable();
        matched.dedup();
        let experts = retriever.retrieve(corpus, &matched);
        let detection_time = detection_started.elapsed();
        SearchOutcome {
            experts,
            expansion,
            matched_tweets: matched.len(),
            expansion_time,
            detection_time,
        }
    }

    /// The Pal & Counts baseline on the same corpus and detector settings
    /// (no expansion) — the comparison arm of every experiment.
    pub fn search_baseline(&self, corpus: &Corpus, query: &str) -> SearchOutcome {
        let detection_started = Instant::now();
        let matched = corpus.match_query(query);
        let detector = Detector::new(corpus, self.config.detector.clone());
        let experts = detector.rank_candidates(&matched);
        let detection_time = detection_started.elapsed();
        SearchOutcome {
            experts,
            expansion: vec![query.to_lowercase()],
            matched_tweets: matched.len(),
            expansion_time: Duration::ZERO,
            detection_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::run_offline;
    use esharp_microblog::{generate_corpus, CorpusConfig};
    use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};

    fn system() -> (World, Corpus, Esharp) {
        let world = World::generate(&WorldConfig::tiny(51));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(51)),
            world.terms.len(),
        );
        let config = EsharpConfig::tiny();
        let artifacts = run_offline(&log, &world, &config).unwrap();
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(51));
        (world, corpus, Esharp::new(artifacts.domains, config))
    }

    #[test]
    fn expansion_never_reduces_matches() {
        let (world, corpus, esharp) = system();
        for domain in &world.domains {
            let query = &domain.label;
            let expanded = esharp.search(&corpus, query);
            let baseline = esharp.search_baseline(&corpus, query);
            assert!(
                expanded.matched_tweets >= baseline.matched_tweets,
                "{query}: expanded {} < baseline {}",
                expanded.matched_tweets,
                baseline.matched_tweets
            );
        }
    }

    #[test]
    fn expansion_finds_hidden_experts_for_the_49ers() {
        let (_, corpus, esharp) = system();
        let expanded = esharp.search(&corpus, "49ers");
        let baseline = esharp.search_baseline(&corpus, "49ers");
        assert!(expanded.expansion.len() > 1, "49ers query did not expand");
        assert!(
            expanded.experts.len() >= baseline.experts.len(),
            "expansion lost experts"
        );
    }

    #[test]
    fn unknown_queries_degrade_to_baseline() {
        let (_, corpus, esharp) = system();
        let out = esharp.search(&corpus, "completely unknown phrase");
        assert_eq!(out.expansion.len(), 1);
        assert!(out.experts.is_empty());
    }

    #[test]
    fn expansion_disabled_equals_baseline() {
        let (world, corpus, esharp) = system();
        let mut config = esharp.config().clone();
        config.expansion = false;
        let plain = Esharp::new(esharp.domains().clone(), config);
        let q = &world.domains[0].label;
        assert_eq!(
            plain.search(&corpus, q).experts,
            esharp.search_baseline(&corpus, q).experts
        );
    }

    #[test]
    fn online_latency_is_interactive() {
        // Table 9: expansion < 100 ms, detection < 1 s. Generous CI-safe
        // bounds, but the order of magnitude must hold.
        let (_, corpus, esharp) = system();
        let out = esharp.search(&corpus, "49ers");
        assert!(out.expansion_time < Duration::from_millis(100));
        assert!(out.detection_time < Duration::from_secs(1));
    }
}
