//! The online stage (§5 + Figure 1 right half): query matching → query
//! expansion → expert detection over the union of per-term matches.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::config::EsharpConfig;
use crate::domains::DomainCollection;
use crate::error::EsharpResult;
use crate::retriever::ExpertiseRetriever;
use esharp_expert::ExpertResult;
use esharp_microblog::{BoundedSearch, Corpus, TweetId};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::{Duration, Instant};

/// Degraded-service state surfaced in [`SearchOutcome`] metadata when the
/// weekly domain refresh fails: e# keeps answering queries — the paper's
/// fallback position is always plain Pal & Counts — but callers can see
/// (and alert on) the degradation instead of silently serving stale or
/// unexpanded results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Degradation {
    /// A domain reload failed; results come from the last known-good
    /// collection (stale by one refresh cycle or more).
    StaleDomains {
        /// Why the reload failed.
        error: String,
    },
    /// No domain collection has ever loaded; expansion is disabled and
    /// results are plain (unexpanded) Pal & Counts.
    NoDomains {
        /// Why the load failed.
        error: String,
    },
}

/// Shard-level degradation of one bounded search: which parts of the
/// fan-out did not contribute to the answer, and why. Extends guarantee
/// 5's "degraded, visible, still answering" down to the shard level
/// (ROBUSTNESS.md guarantee 9): an answer missing shards is honestly
/// marked, never silently short.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialResult {
    /// Shards that were tried but missed the deadline, stalled or
    /// panicked (sorted).
    pub shards_missing: Vec<usize>,
    /// Shards skipped outright by an open circuit breaker (sorted).
    pub shards_skipped: Vec<usize>,
}

/// The result of one online search, with the per-phase timings the
/// paper reports in Table 9 (expansion < 100 ms, detection < 1 s).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Ranked experts.
    pub experts: Vec<ExpertResult>,
    /// The terms actually searched (query first; length 1 ⇒ no expansion
    /// happened).
    pub expansion: Vec<String>,
    /// Distinct tweets matched across all expansion terms.
    pub matched_tweets: usize,
    /// Time spent in domain lookup + expansion.
    pub expansion_time: Duration,
    /// Time spent matching and ranking (`match_time + rank_time`).
    pub detection_time: Duration,
    /// Time spent in postings intersection + k-way union.
    #[serde(default)]
    pub match_time: Duration,
    /// Time spent in candidate collection, feature scoring and ranking.
    #[serde(default)]
    pub rank_time: Duration,
    /// Present when the system is running degraded (stale or missing
    /// domain collection); `None` on the healthy path.
    pub degradation: Option<Degradation>,
    /// Present when a bounded search answered without every shard
    /// (deadline miss, stall, panic, or open breaker); `None` on the
    /// complete path and for unbounded searches.
    #[serde(default)]
    pub partial: Option<PartialResult>,
    /// Hedged duplicate shard attempts launched by this search (0 for
    /// unbounded searches and when hedging is off).
    #[serde(default)]
    pub hedges: u32,
    /// Hedged attempts that answered first for their shard.
    #[serde(default)]
    pub hedge_wins: u32,
    /// Shard attempts that panicked during this search (contained —
    /// the panic cost one shard's contribution, not the request).
    #[serde(default)]
    pub shard_panics: u32,
}

/// The e# online system: a domain collection plus a detector
/// configuration.
#[derive(Debug, Clone)]
pub struct Esharp {
    domains: DomainCollection,
    /// Sticky service state: set when a domain load/reload failed, cleared
    /// by the next successful reload, copied into every outcome.
    degradation: Option<Degradation>,
    config: EsharpConfig,
    /// Default retriever, built once at assembly time so the per-query
    /// path does not re-clone the detector configuration on every search.
    retriever: crate::retriever::PalCountsRetriever,
}

impl Esharp {
    /// Assemble the online system from offline artifacts.
    pub fn new(domains: DomainCollection, config: EsharpConfig) -> Self {
        let retriever = crate::retriever::PalCountsRetriever::new(config.detector.clone());
        Esharp {
            domains,
            degradation: None,
            config,
            retriever,
        }
    }

    /// Assemble from a persisted domain collection, strictly: a missing or
    /// corrupt file is an error.
    pub fn from_domains_file(path: impl AsRef<Path>, config: EsharpConfig) -> EsharpResult<Self> {
        let domains = DomainCollection::load(path)?;
        Ok(Esharp::new(domains, config))
    }

    /// Assemble from a persisted domain collection, degrading instead of
    /// failing: when the file is missing or corrupt the system starts with
    /// an empty collection (searches run unexpanded Pal & Counts) and
    /// every outcome carries [`Degradation::NoDomains`].
    pub fn from_domains_file_or_degraded(path: impl AsRef<Path>, config: EsharpConfig) -> Self {
        match Self::from_domains_file(path, config.clone()) {
            Ok(esharp) => esharp,
            Err(e) => {
                let mut esharp = Esharp::new(DomainCollection::default(), config);
                esharp.degradation = Some(Degradation::NoDomains { error: e.to_string() });
                esharp
            }
        }
    }

    /// Swap in a freshly persisted domain collection (the weekly refresh
    /// hand-off). On failure the last known-good collection stays active,
    /// subsequent outcomes carry [`Degradation::StaleDomains`] (or
    /// [`Degradation::NoDomains`] if none ever loaded), and the error is
    /// returned for logging — the serving path never goes down.
    pub fn reload_domains(&mut self, path: impl AsRef<Path>) -> EsharpResult<()> {
        match DomainCollection::load(path) {
            Ok(domains) => {
                self.domains = domains;
                self.degradation = None;
                Ok(())
            }
            Err(e) => {
                self.note_reload_failure(e.to_string());
                Err(e.into())
            }
        }
    }

    /// Record a reload failure without touching the collection: the last
    /// known-good state keeps serving, subsequent outcomes carry the
    /// degradation. Shared with the fault-injection seam in
    /// [`crate::shared::SharedEsharp`], which fails reloads before any
    /// file I/O happens.
    pub(crate) fn note_reload_failure(&mut self, error: String) {
        self.degradation = Some(match self.degradation {
            Some(Degradation::NoDomains { .. }) => Degradation::NoDomains { error },
            _ => Degradation::StaleDomains { error },
        });
    }

    /// The active domain collection (empty while running in
    /// [`Degradation::NoDomains`] mode).
    pub fn domains(&self) -> &DomainCollection {
        &self.domains
    }

    /// Current degraded-service state, if any.
    pub fn degradation(&self) -> Option<&Degradation> {
        self.degradation.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &EsharpConfig {
        &self.config
    }

    /// e# search: expand the query through its expertise domain (when one
    /// matches exactly, §5), run the match for every related term, union
    /// the results and rank once with the configured Pal & Counts
    /// detector.
    pub fn search(&self, corpus: &Corpus, query: &str) -> SearchOutcome {
        self.search_with(corpus, query, &self.retriever)
    }

    /// e# search through any [`ExpertiseRetriever`] — the §7.1 seam:
    /// "our system can work with any Expertise Retrieval system".
    /// Expansion and matching are identical to [`Esharp::search`]; only
    /// the ranking strategy changes.
    pub fn search_with(
        &self,
        corpus: &Corpus,
        query: &str,
        retriever: &dyn ExpertiseRetriever,
    ) -> SearchOutcome {
        let expansion_started = Instant::now();
        let expansion = if self.config.expansion {
            self.domains.expand(query, self.config.max_expansion_terms)
        } else {
            vec![query.to_lowercase()]
        };
        let expansion_time = expansion_started.elapsed();

        let match_started = Instant::now();
        // K-way merge over the sorted per-term match sets — single-token
        // terms stream straight from the postings arena; the old
        // extend + sort + dedup union re-sorted every posting on every
        // query. With a sharded corpus and workers > 1 the per-term
        // matches are scattered over the postings shards and merged
        // deterministically — bit-identical to the serial union.
        let matched: Vec<TweetId> =
            corpus.match_terms_with(&expansion, self.config.search_workers);
        let match_time = match_started.elapsed();
        let rank_started = Instant::now();
        let experts = retriever.retrieve(corpus, &matched);
        let rank_time = rank_started.elapsed();
        SearchOutcome {
            experts,
            expansion,
            matched_tweets: matched.len(),
            expansion_time,
            detection_time: match_time + rank_time,
            match_time,
            rank_time,
            degradation: self.degradation.clone(),
            partial: None,
            hedges: 0,
            hedge_wins: 0,
            shard_panics: 0,
        }
    }

    /// Batched e# search: one outcome per query, in order, each
    /// **bit-identical** to [`Esharp::search`] on that query alone
    /// (property-tested). The win is amortization, not approximation:
    /// expansion runs per query as usual, but the match phase goes
    /// through [`Corpus::match_terms_batch_with`] — every distinct term
    /// across the batch has its posting lists traversed once — and the
    /// rank phase reuses one thread-local scratch checkout for the whole
    /// batch ([`ExpertiseRetriever::retrieve_batch`]).
    ///
    /// Batch execution is unbounded (no deadline, hedging, or breakers):
    /// answers are always complete, which is what lets the serving layer
    /// cache them interchangeably with complete single-query answers.
    /// Phase timings are reported **amortized** (the batch phase cost
    /// divided evenly across queries) so latency histograms fed per
    /// outcome still sum to the true batch cost.
    pub fn search_batch(&self, corpus: &Corpus, queries: &[&str]) -> Vec<SearchOutcome> {
        let n = queries.len() as u32;
        if n == 0 {
            return Vec::new();
        }
        let expansion_started = Instant::now();
        let expansions: Vec<Vec<String>> = queries
            .iter()
            .map(|query| {
                if self.config.expansion {
                    self.domains.expand(query, self.config.max_expansion_terms)
                } else {
                    vec![query.to_lowercase()]
                }
            })
            .collect();
        let expansion_time = expansion_started.elapsed() / n;

        let match_started = Instant::now();
        let matched = corpus.match_terms_batch_with(&expansions, self.config.search_workers);
        let match_time = match_started.elapsed() / n;
        let rank_started = Instant::now();
        let experts = self.retriever.retrieve_batch(corpus, &matched);
        let rank_time = rank_started.elapsed() / n;

        expansions
            .into_iter()
            .zip(matched)
            .zip(experts)
            .map(|((expansion, matched), experts)| SearchOutcome {
                experts,
                expansion,
                matched_tweets: matched.len(),
                expansion_time,
                detection_time: match_time + rank_time,
                match_time,
                rank_time,
                degradation: self.degradation.clone(),
                partial: None,
                hedges: 0,
                hedge_wins: 0,
                shard_panics: 0,
            })
            .collect()
    }

    /// [`Esharp::search`] under a request budget: the scatter-gather
    /// fan-out runs through [`Corpus::match_terms_bounded`], so shard
    /// tasks abandon past the deadline, hedges and breakers apply when
    /// the context enables them, and an answer missing shards carries
    /// [`SearchOutcome::partial`] with the exact absent-shard set. When
    /// every shard answers in time the outcome is bit-identical to
    /// [`Esharp::search`].
    pub fn search_bounded(
        &self,
        corpus: &Corpus,
        query: &str,
        ctx: &BoundedSearch<'_>,
    ) -> SearchOutcome {
        let expansion_started = Instant::now();
        let expansion = if self.config.expansion {
            self.domains.expand(query, self.config.max_expansion_terms)
        } else {
            vec![query.to_lowercase()]
        };
        let expansion_time = expansion_started.elapsed();

        let match_started = Instant::now();
        let outcome = corpus.match_terms_bounded(&expansion, self.config.search_workers, ctx);
        let match_time = match_started.elapsed();
        let rank_started = Instant::now();
        let experts = self.retriever.retrieve(corpus, &outcome.matched);
        let rank_time = rank_started.elapsed();
        let partial = outcome.is_partial().then(|| PartialResult {
            shards_missing: outcome.shards_missing.clone(),
            shards_skipped: outcome.shards_skipped.clone(),
        });
        SearchOutcome {
            experts,
            expansion,
            matched_tweets: outcome.matched.len(),
            expansion_time,
            detection_time: match_time + rank_time,
            match_time,
            rank_time,
            degradation: self.degradation.clone(),
            partial,
            hedges: outcome.hedges,
            hedge_wins: outcome.hedge_wins,
            shard_panics: outcome.shard_panics,
        }
    }

    /// The Pal & Counts baseline on the same corpus and detector settings
    /// (no expansion) — the comparison arm of every experiment.
    pub fn search_baseline(&self, corpus: &Corpus, query: &str) -> SearchOutcome {
        let match_started = Instant::now();
        let matched = corpus.match_query(query);
        let match_time = match_started.elapsed();
        // The assembly-time retriever, not a per-call `Detector`: cloning
        // the detector configuration on every baseline call was the same
        // per-query allocation `search` shed in PR 1.
        let rank_started = Instant::now();
        let experts = self.retriever.retrieve(corpus, &matched);
        let rank_time = rank_started.elapsed();
        SearchOutcome {
            experts,
            expansion: vec![query.to_lowercase()],
            matched_tweets: matched.len(),
            expansion_time: Duration::ZERO,
            detection_time: match_time + rank_time,
            match_time,
            rank_time,
            degradation: None,
            partial: None,
            hedges: 0,
            hedge_wins: 0,
            shard_panics: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::run_offline;
    use esharp_microblog::{generate_corpus, CorpusConfig};
    use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};

    fn system() -> (World, Corpus, Esharp) {
        let world = World::generate(&WorldConfig::tiny(51));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&world, &LogConfig::tiny(51)),
            world.terms.len(),
        );
        let config = EsharpConfig::tiny();
        let artifacts = run_offline(&log, &world, &config).unwrap();
        let corpus = generate_corpus(&world, &CorpusConfig::tiny(51));
        (world, corpus, Esharp::new(artifacts.domains, config))
    }

    #[test]
    fn expansion_never_reduces_matches() {
        let (world, corpus, esharp) = system();
        for domain in &world.domains {
            let query = &domain.label;
            let expanded = esharp.search(&corpus, query);
            let baseline = esharp.search_baseline(&corpus, query);
            assert!(
                expanded.matched_tweets >= baseline.matched_tweets,
                "{query}: expanded {} < baseline {}",
                expanded.matched_tweets,
                baseline.matched_tweets
            );
        }
    }

    #[test]
    fn expansion_finds_hidden_experts_for_the_49ers() {
        let (_, corpus, esharp) = system();
        let expanded = esharp.search(&corpus, "49ers");
        let baseline = esharp.search_baseline(&corpus, "49ers");
        assert!(expanded.expansion.len() > 1, "49ers query did not expand");
        assert!(
            expanded.experts.len() >= baseline.experts.len(),
            "expansion lost experts"
        );
    }

    #[test]
    fn unknown_queries_degrade_to_baseline() {
        let (_, corpus, esharp) = system();
        let out = esharp.search(&corpus, "completely unknown phrase");
        assert_eq!(out.expansion.len(), 1);
        assert!(out.experts.is_empty());
    }

    #[test]
    fn expansion_disabled_equals_baseline() {
        let (world, corpus, esharp) = system();
        let mut config = esharp.config().clone();
        config.expansion = false;
        let plain = Esharp::new(esharp.domains().clone(), config);
        let q = &world.domains[0].label;
        assert_eq!(
            plain.search(&corpus, q).experts,
            esharp.search_baseline(&corpus, q).experts
        );
    }

    #[test]
    fn reload_failure_keeps_last_known_good_domains() {
        let (_, corpus, mut esharp) = system();
        let healthy = esharp.search(&corpus, "49ers");
        assert!(healthy.degradation.is_none());

        // Point the refresh at a corrupt file: the reload errors, the old
        // collection keeps serving, and outcomes say so.
        let dir = std::env::temp_dir().join("esharp_online_reload");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("domains.bin");
        std::fs::write(&bad, b"ESRT garbage").unwrap();
        assert!(esharp.reload_domains(&bad).is_err());

        let degraded = esharp.search(&corpus, "49ers");
        assert_eq!(degraded.expansion, healthy.expansion, "stale domains must keep serving");
        assert_eq!(degraded.experts, healthy.experts);
        assert!(
            matches!(degraded.degradation, Some(Degradation::StaleDomains { .. })),
            "got {:?}",
            degraded.degradation
        );

        // A successful reload restores the healthy state.
        esharp.domains().save(dir.join("good.bin")).unwrap();
        esharp.reload_domains(dir.join("good.bin")).unwrap();
        assert!(esharp.search(&corpus, "49ers").degradation.is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_domains_degrade_to_unexpanded_pal_counts() {
        let (_, corpus, esharp) = system();
        let degraded = Esharp::from_domains_file_or_degraded(
            "/nonexistent/esharp/domains.bin",
            esharp.config().clone(),
        );
        assert!(matches!(
            degraded.degradation(),
            Some(Degradation::NoDomains { .. })
        ));
        let out = degraded.search(&corpus, "49ers");
        let baseline = esharp.search_baseline(&corpus, "49ers");
        assert_eq!(out.expansion.len(), 1, "no-domains mode must not expand");
        assert_eq!(out.experts, baseline.experts);
        assert!(matches!(out.degradation, Some(Degradation::NoDomains { .. })));
        // Strict constructor errors instead.
        assert!(Esharp::from_domains_file(
            "/nonexistent/esharp/domains.bin",
            esharp.config().clone()
        )
        .is_err());
    }

    #[test]
    fn online_latency_is_interactive() {
        // Table 9: expansion < 100 ms, detection < 1 s. Generous CI-safe
        // bounds, but the order of magnitude must hold.
        let (_, corpus, esharp) = system();
        let out = esharp.search(&corpus, "49ers");
        assert!(out.expansion_time < Duration::from_millis(100));
        assert!(out.detection_time < Duration::from_secs(1));
    }
}
