//! The crash-safety contract, end to end: kill the offline pipeline at
//! every stage boundary, every clustering iteration, and every artifact
//! write; restart it; and require artifacts **bit-identical** to an
//! uninterrupted run. All kills are deterministic seed-driven injections
//! (`esharp-fault`) — no real signals, no subprocesses, fully replayable.

use esharp_core::{
    run_offline_resumable, CheckpointDir, EsharpConfig, EsharpError, OfflineArtifacts,
};
use esharp_fault::{Fault, FaultPlan, RetryPolicy};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

fn inputs() -> (World, AggregatedLog, EsharpConfig) {
    let world = World::generate(&WorldConfig::tiny(41));
    let log = AggregatedLog::from_events(
        LogGenerator::new(&world, &LogConfig::tiny(41)),
        world.terms.len(),
    );
    (world, log, EsharpConfig::tiny())
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every checkpoint file in `dir`, by name, byte for byte.
fn file_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        out.insert(
            entry.file_name().to_string_lossy().into_owned(),
            std::fs::read(entry.path()).unwrap(),
        );
    }
    out
}

fn assert_artifacts_match(site: &str, got: &OfflineArtifacts, want: &OfflineArtifacts) {
    assert_eq!(
        got.domains.domains(),
        want.domains.domains(),
        "{site}: domains diverged after resume"
    );
    assert_eq!(
        got.outcome.assignment.as_slice(),
        want.outcome.assignment.as_slice(),
        "{site}: assignment diverged"
    );
    assert_eq!(got.outcome.trace, want.outcome.trace, "{site}: trace diverged");
    for (a, b) in got.outcome.trace.iter().zip(&want.outcome.trace) {
        assert_eq!(
            a.total_modularity.to_bits(),
            b.total_modularity.to_bits(),
            "{site}: modularity not bit-identical at iteration {}",
            a.iteration
        );
    }
    assert_eq!(got.graph.num_nodes(), want.graph.num_nodes(), "{site}");
    assert_eq!(got.graph.edges(), want.graph.edges(), "{site}: graph edges diverged");
    assert_eq!(got.dropped_terms, want.dropped_terms, "{site}");
}

#[test]
fn killed_at_every_stage_resumes_bit_identical() {
    let (world, log, config) = inputs();

    // Reference: one uninterrupted checkpointed run.
    let ref_dir = fresh_dir("esharp_crash_ref");
    let ref_ckpt = CheckpointDir::new(&ref_dir).unwrap();
    let reference = run_offline_resumable(&log, &world, &config, &ref_ckpt).unwrap();
    let ref_files = file_bytes(&ref_dir);
    assert_eq!(ref_files.len(), 5, "expected one checkpoint per stage: {ref_files:?}");

    // Kill sites: every stage boundary, every artifact write, and every
    // clustering iteration the reference run actually executed.
    let mut sites: Vec<String> = [
        "stage:filtered",
        "stage:graph",
        "stage:multigraph",
        "stage:clustering",
        "stage:domains",
        "write:filtered.ck",
        "write:graph.ck",
        "write:multigraph.ck",
        "write:clustering.progress",
        "write:clustering.ck",
        "write:domains.ck",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for stat in &reference.outcome.trace {
        sites.push(format!("iter:{}", stat.iteration));
    }
    assert!(
        sites.iter().any(|s| s == "iter:1"),
        "reference run converged without iterating; the matrix would not cover mid-stage kills"
    );

    for site in &sites {
        let dir = fresh_dir(&format!("esharp_crash_{}", site.replace([':', '.'], "_")));

        // Run 1: dies at the planned site.
        let killer = CheckpointDir::new(&dir)
            .unwrap()
            .with_faults(Arc::new(FaultPlan::new(9).kill_at(site)), RetryPolicy::none());
        let err = run_offline_resumable(&log, &world, &config, &killer)
            .expect_err(&format!("{site}: planned kill did not fire"));
        assert!(matches!(err, EsharpError::Io { .. }), "{site}: {err:?}");

        // Run 2: restarts with no faults and must finish from what survived.
        let resumer = CheckpointDir::new(&dir).unwrap();
        let resumed = run_offline_resumable(&log, &world, &config, &resumer)
            .unwrap_or_else(|e| panic!("{site}: resume failed: {e}"));

        assert_artifacts_match(site, &resumed, &reference);
        assert_eq!(
            file_bytes(&dir),
            ref_files,
            "{site}: on-disk checkpoints differ from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn clustering_killed_mid_run_restarts_from_its_iteration_not_zero() {
    let (world, log, config) = inputs();
    let dir = fresh_dir("esharp_crash_iter_resume");

    // Die right after iteration 1's progress persists.
    let killer = CheckpointDir::new(&dir)
        .unwrap()
        .with_faults(Arc::new(FaultPlan::new(3).kill_at("iter:1")), RetryPolicy::none());
    run_offline_resumable(&log, &world, &config, &killer).unwrap_err();

    // The resumed run must re-enter clustering at iteration 2: observing a
    // kill plan for iterations 0 and 1 proves neither site is consulted
    // again (the trace checkpoint carried the loop past them).
    let no_replay = FaultPlan::new(3).kill_at("iter:0").kill_at("iter:1");
    let resumer = CheckpointDir::new(&dir)
        .unwrap()
        .with_faults(Arc::new(no_replay), RetryPolicy::none());
    let resumed = run_offline_resumable(&log, &world, &config, &resumer)
        .expect("resume must skip already-persisted iterations");

    let reference = {
        let ref_dir = fresh_dir("esharp_crash_iter_ref");
        let ckpt = CheckpointDir::new(&ref_dir).unwrap();
        let artifacts = run_offline_resumable(&log, &world, &config, &ckpt).unwrap();
        let _ = std::fs::remove_dir_all(&ref_dir);
        artifacts
    };
    assert_artifacts_match("iter-resume", &resumed, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_writes_never_corrupt_resume() {
    let (world, log, config) = inputs();
    let dir = fresh_dir("esharp_crash_torn");

    // Tear the graph checkpoint write mid-stream: the run fails, but the
    // destination file is never shadowed by the partial temp file.
    let plan = FaultPlan::new(11).trigger(
        "write:graph.ck",
        0,
        Fault::TornWrite { numerator: 1, denominator: 2 },
    );
    let torn = CheckpointDir::new(&dir)
        .unwrap()
        .with_faults(Arc::new(plan), RetryPolicy::none());
    run_offline_resumable(&log, &world, &config, &torn).unwrap_err();
    assert!(
        !dir.join("graph.ck").exists(),
        "torn write must not publish a graph checkpoint"
    );

    // A clean restart recomputes the torn stage and completes.
    let resumed =
        run_offline_resumable(&log, &world, &config, &CheckpointDir::new(&dir).unwrap()).unwrap();
    assert!(resumed.domains.len() > 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_write_faults_are_retried_to_success() {
    let (world, log, config) = inputs();
    let dir = fresh_dir("esharp_crash_retry");

    // Transient I/O errors on the first two attempts of every checkpoint
    // write; the bounded retry (3 attempts) absorbs them and the pipeline
    // completes in one go.
    let mut plan = FaultPlan::new(5);
    for file in ["filtered.ck", "graph.ck", "multigraph.ck", "clustering.ck", "domains.ck"] {
        for attempt in 0..2 {
            plan = plan.trigger(
                &format!("write:{file}"),
                attempt,
                Fault::IoError { transient: true },
            );
        }
    }
    let ckpt = CheckpointDir::new(&dir)
        .unwrap()
        .with_faults(Arc::new(plan), RetryPolicy { max_attempts: 3 });
    let artifacts = run_offline_resumable(&log, &world, &config, &ckpt).unwrap();
    assert!(artifacts.domains.len() > 1);
    let _ = std::fs::remove_dir_all(&dir);
}
