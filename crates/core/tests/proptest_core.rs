//! Property-based tests of the domain collection and query expansion.

use esharp_core::DomainCollection;
use proptest::prelude::*;

/// Random term groups: up to `groups` domains of up to `size` short terms.
fn arb_groups(groups: usize, size: usize) -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(
        prop::collection::vec("[a-c]{1,4}", 1..size),
        1..groups,
    )
}

proptest! {
    #[test]
    fn expansion_always_leads_with_the_query(groups in arb_groups(8, 6), cap in 1usize..10) {
        let c = DomainCollection::from_groups(groups.clone());
        for group in &groups {
            for term in group {
                let expansion = c.expand(term, cap);
                prop_assert!(!expansion.is_empty());
                prop_assert_eq!(&expansion[0], &term.to_lowercase());
                prop_assert!(expansion.len() <= cap.max(1));
                // No duplicates.
                let mut dedup = expansion.clone();
                dedup.sort();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), expansion.len());
            }
        }
    }

    #[test]
    fn expansion_terms_come_from_the_owning_domain(groups in arb_groups(8, 6)) {
        let c = DomainCollection::from_groups(groups.clone());
        for term in groups.iter().flatten() {
            let expansion = c.expand(term, usize::MAX);
            let domain = c.lookup(term).expect("member term must resolve");
            for t in &expansion[1..] {
                prop_assert!(
                    domain.iter().any(|d| d.eq_ignore_ascii_case(t)),
                    "expansion term {} escaped its domain",
                    t
                );
            }
        }
    }

    #[test]
    fn unknown_queries_expand_to_themselves(groups in arb_groups(5, 4), query in "[x-z]{5,8}") {
        // Query alphabet is disjoint from group alphabet ⇒ never a member.
        let c = DomainCollection::from_groups(groups);
        prop_assert_eq!(c.expand(&query, 10), vec![query.to_lowercase()]);
        prop_assert!(c.lookup(&query).is_none());
    }

    #[test]
    fn lookup_is_case_insensitive_and_total_over_members(groups in arb_groups(6, 5)) {
        let c = DomainCollection::from_groups(groups.clone());
        for term in groups.iter().flatten() {
            prop_assert!(c.lookup(term).is_some());
            prop_assert!(c.lookup(&term.to_uppercase()).is_some());
        }
        prop_assert_eq!(c.len(), groups.len());
    }
}
