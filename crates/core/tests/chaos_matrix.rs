//! The deterministic chaos matrix (ISSUE 8 acceptance): sweep
//! stall-at-every-shard × deadline × hedging on/off over the bounded
//! search path and assert every cell lands in exactly one of two legal
//! states — **complete and bit-identical** to the unbounded search, or
//! **correctly marked partial** with the exact absent-shard set. Never
//! silently wrong, never hung.
//!
//! Everything runs on a [`VirtualClock`]: stalls are virtual-tick
//! charges, not sleeps, so the whole matrix is clock-free, seed-stable,
//! and finishes in milliseconds. A hang would show up as this test not
//! returning — the join-everything scatter-gather model makes that
//! structurally impossible (stalled tasks abandon via charged ticks and
//! release waits; nothing blocks on a wall clock).

use esharp_core::{DomainCollection, Esharp, EsharpConfig, SearchOutcome};
use esharp_fault::{BreakerConfig, Budget, ChaosFault, ChaosPlan, ShardBreakers, VirtualClock};
use esharp_microblog::{generate_corpus, BoundedSearch, Corpus, CorpusConfig, TokenId};
use esharp_querylog::{World, WorldConfig};
use std::sync::Arc;

const SHARDS: usize = 4;

/// A sharded corpus plus an e# whose expansion of `query` spans every
/// shard — so a stall on any one shard is visible in the answer.
fn chaos_testbed() -> (Corpus, Esharp, String) {
    let world = World::generate(&WorldConfig::tiny(21));
    let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
    corpus.reshard(SHARDS);

    // One term per shard, from the corpus's own vocabulary.
    let mut per_shard: Vec<Option<String>> = vec![None; SHARDS];
    for id in 0..corpus.num_tokens() {
        let token = corpus.token_text(id as TokenId).to_string();
        let shard = corpus.term_home_shard(&token);
        if per_shard[shard].is_none() {
            per_shard[shard] = Some(token);
        }
    }
    let terms: Vec<String> = per_shard
        .into_iter()
        .map(|t| t.expect("synthetic corpus must populate every shard"))
        .collect();
    let query = terms[0].clone();

    let mut config = EsharpConfig::tiny();
    config.search_workers = SHARDS;
    let esharp = Esharp::new(DomainCollection::from_groups(vec![terms]), config);
    (corpus, esharp, query)
}

/// The deterministic fields of an outcome — what the serve layer
/// renders into a body (timings are deliberately excluded there too).
fn deterministic_view(outcome: &SearchOutcome) -> (Vec<String>, usize, String) {
    (
        outcome.expansion.clone(),
        outcome.matched_tweets,
        format!("{:?}", outcome.experts),
    )
}

#[test]
fn chaos_matrix_stall_by_shard_by_deadline_by_hedging() {
    let (corpus, esharp, query) = chaos_testbed();
    let baseline = esharp.search(&corpus, &query);
    assert!(
        baseline.matched_tweets > 0,
        "the matrix is vacuous if the query matches nothing"
    );
    let full = deterministic_view(&baseline);

    for stalled in 0..SHARDS {
        for deadline_us in [5_000u64, 50_000, 1_000_000] {
            for hedge in [false, true] {
                let plan =
                    ChaosPlan::new(1).stall_at(&format!("search:shard:{stalled}"));
                let budget =
                    Budget::with_clock(Arc::new(VirtualClock::new()), deadline_us);
                let mut ctx = BoundedSearch::new(&budget).with_chaos(&plan);
                if hedge {
                    // Hedge well inside every deadline in the sweep.
                    ctx = ctx.hedged(1_000);
                }
                let outcome = esharp.search_bounded(&corpus, &query, &ctx);
                let cell = format!(
                    "stalled={stalled} deadline_us={deadline_us} hedge={hedge}"
                );

                match &outcome.partial {
                    None => {
                        // Legal state 1: complete — then it must be
                        // bit-identical to the unbounded answer.
                        assert_eq!(
                            deterministic_view(&outcome),
                            full,
                            "complete answer diverged from baseline [{cell}]"
                        );
                        assert!(
                            hedge,
                            "a stalled primary can only complete via a hedge [{cell}]"
                        );
                        assert!(
                            outcome.hedge_wins >= 1,
                            "completion under a stall implies a hedge win [{cell}]"
                        );
                    }
                    Some(partial) => {
                        // Legal state 2: partial — the marker must name
                        // exactly the stalled shard, and the answer must
                        // be a subset of the full one (never wrong).
                        assert_eq!(
                            partial.shards_missing,
                            vec![stalled],
                            "wrong missing set [{cell}]"
                        );
                        assert!(partial.shards_skipped.is_empty(), "[{cell}]");
                        assert!(
                            outcome.matched_tweets <= baseline.matched_tweets,
                            "partial answer matched more than the full one [{cell}]"
                        );
                        assert_eq!(outcome.expansion, baseline.expansion, "[{cell}]");
                    }
                }
            }
        }
    }
}

#[test]
fn no_chaos_is_bit_identical_at_every_deadline() {
    let (corpus, esharp, query) = chaos_testbed();
    let full = deterministic_view(&esharp.search(&corpus, &query));
    for deadline_us in [5_000u64, 1_000_000] {
        for hedge in [false, true] {
            let budget = Budget::with_clock(Arc::new(VirtualClock::new()), deadline_us);
            let mut ctx = BoundedSearch::new(&budget);
            if hedge {
                ctx = ctx.hedged(1_000);
            }
            let outcome = esharp.search_bounded(&corpus, &query, &ctx);
            assert!(outcome.partial.is_none());
            assert_eq!(outcome.hedges, 0, "no straggler, no hedge");
            assert_eq!(deterministic_view(&outcome), full);
        }
    }
}

#[test]
fn breaker_arc_is_visible_in_search_outcomes() {
    let (corpus, esharp, query) = chaos_testbed();
    let full = deterministic_view(&esharp.search(&corpus, &query));
    let clock = Arc::new(VirtualClock::new());
    let breakers = ShardBreakers::new(BreakerConfig {
        threshold: 2,
        open_us: 100_000,
    });
    // Shard 1 stalls exactly twice, then heals.
    let plan = ChaosPlan::new(1).trigger_limited("search:shard:1", ChaosFault::Stall, 2);

    // Two deadline misses trip the breaker…
    for _ in 0..2 {
        let budget = Budget::with_clock(clock.clone(), 10_000);
        let ctx = BoundedSearch::new(&budget)
            .with_chaos(&plan)
            .with_breakers(&breakers);
        let outcome = esharp.search_bounded(&corpus, &query, &ctx);
        let partial = outcome.partial.expect("stalled shard must mark partial");
        assert_eq!(partial.shards_missing, vec![1]);
    }
    assert_eq!(breakers.trips(), 1);

    // …the next search skips the sick shard outright (no budget spent)…
    let budget = Budget::with_clock(clock.clone(), 10_000);
    let ctx = BoundedSearch::new(&budget)
        .with_chaos(&plan)
        .with_breakers(&breakers);
    let outcome = esharp.search_bounded(&corpus, &query, &ctx);
    let partial = outcome.partial.expect("skipped shard must mark partial");
    assert_eq!(partial.shards_skipped, vec![1]);
    assert!(partial.shards_missing.is_empty());

    // …and after the open window the healed shard probes, the breaker
    // closes, and answers are complete and bit-identical again.
    clock.advance_us(100_000);
    let budget = Budget::with_clock(clock.clone(), 10_000);
    let ctx = BoundedSearch::new(&budget)
        .with_chaos(&plan)
        .with_breakers(&breakers);
    let outcome = esharp.search_bounded(&corpus, &query, &ctx);
    assert!(outcome.partial.is_none());
    assert_eq!(deterministic_view(&outcome), full);
    assert_eq!(breakers.recoveries(), 1);
}
