//! [`LiveCorpus`]: a corpus that serves queries while absorbing a
//! write-ahead op stream, with crash-safe zero-downtime compaction.
//!
//! ## Shape
//!
//! The corpus lives under an `RwLock`: searches run under the read lock
//! (many concurrently), mutations under the write lock. Appends and
//! deletes land in the corpus's LSM delta segment (see
//! `esharp_microblog::Corpus`), so a mutation is one tweet's tokenize +
//! delta-posting push — the write lock is held for microseconds.
//! Compaction does its O(corpus) work **off-lock** on a clone and takes
//! the write lock only to replay the ops that raced in and swap the
//! pointer; that swap is the only pause serving ever sees, and
//! [`CompactionReport::pause`] measures it.
//!
//! ## Durability
//!
//! With persistence configured, every acked batch is in the oplog before
//! it is applied (WAL rule), each line carrying its own CRC32. Compaction
//! publishes through a two-file commit — new base to `corpus.bin.next`
//! (verified by re-decode, so an injected bit flip can never shadow the
//! last known-good base), remapped tail to `oplog.pending`, then two
//! renames — and [`LiveCorpus::open`] rolls the pair forward or back by
//! comparing the pending header's base checksum against the actual base
//! bytes. Fault seams: [`APPEND_SITE`], [`COMPACT_SITE`], [`OPLOG_SITE`].
//!
//! ## Epoch
//!
//! Every published mutation (batch apply or compaction swap) advances the
//! corpus epoch. Anything keyed on it — the serving layer's result cache,
//! most importantly — is invalidated the moment query answers can change,
//! mirroring the `SharedEsharp` domains epoch.

use crate::ops::{Applied, BatchCheck, IngestOp};
use esharp_fault::{fault_error, Fault, FaultInjector, NoFaults, RetryPolicy, TRANSIENT_KIND};
use esharp_microblog::{binio, Corpus, TweetId};
use esharp_relation::atomic::{atomic_write_with, crc32};
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::SeqCst};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

/// Fault site consulted once per WAL batch append (attempt axis: a
/// monotonic per-instance batch counter, so plans can target "the third
/// append" deterministically).
pub const APPEND_SITE: &str = "ingest:append";
/// Fault site for the compacted-base write (`corpus.bin.next`).
pub const COMPACT_SITE: &str = "compact:write";
/// Fault site for the remapped-tail oplog write (`oplog.pending`).
pub const OPLOG_SITE: &str = "compact:oplog";

/// Oplog format tag carried in the header line.
const OPLOG_VERSION: &str = "v1";

struct Inner {
    corpus: Corpus,
    /// Bumped on every published mutation (batch apply, compaction swap).
    epoch: u64,
    /// Ops applied since the persisted base — exactly what a crash replay
    /// of the oplog would re-apply.
    tail: Vec<IngestOp>,
}

struct Persistence {
    corpus_path: PathBuf,
    oplog_path: PathBuf,
}

impl Persistence {
    fn next_path(&self) -> PathBuf {
        sibling(&self.corpus_path, ".next")
    }

    fn pending_path(&self) -> PathBuf {
        sibling(&self.oplog_path, ".pending")
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    name.push_str(suffix);
    path.with_file_name(name)
}

/// One compaction cycle's outcome.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// Tweets (live + tombstoned) before compaction.
    pub before_tweets: usize,
    /// Tombstones reclaimed.
    pub before_tombstones: usize,
    /// Tweets in the published corpus (tail replays included).
    pub after_tweets: usize,
    /// Ops that raced in during the off-lock phase and were replayed
    /// under the write lock.
    pub tail_ops_replayed: usize,
    /// Bytes of the persisted base (0 without persistence).
    pub bytes_written: usize,
    /// Time the write lock was held — the only pause serving observes.
    pub pause: Duration,
    /// Whole-cycle wall time (clone, compact, encode, write, publish).
    pub total: Duration,
    /// The corpus epoch the compacted state was published at.
    pub epoch: u64,
}

/// A corpus serving queries while absorbing a durable op stream.
pub struct LiveCorpus {
    inner: RwLock<Inner>,
    persistence: Option<Persistence>,
    injector: Arc<dyn FaultInjector>,
    retry: RetryPolicy,
    /// Attempt axis of [`APPEND_SITE`]: one per WAL write try.
    append_attempts: AtomicU32,
    /// Serializes compaction cycles: a second caller's snapshot must not
    /// be taken before the first publishes (its `covered_ops` prefix
    /// would go stale when the tail is rewritten).
    compact_lock: Mutex<()>,
    /// Set when a compaction publish could not complete its final rename:
    /// disk state is recoverable (the pending file carries the commit)
    /// but no longer tracks memory, so further writes are refused until
    /// the process reopens.
    publish_incomplete: AtomicBool,
}

impl std::fmt::Debug for LiveCorpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let guard = self.read();
        f.debug_struct("LiveCorpus")
            .field("tweets", &guard.corpus().tweets().len())
            .field("epoch", &guard.epoch())
            .field("pending_ops", &guard.pending_ops())
            .field("persistent", &self.persistence.is_some())
            .finish()
    }
}

/// A read snapshot: corpus and epoch as one consistent pair. Holds the
/// read lock — drop it before calling any `&self` mutator.
pub struct ReadGuard<'a>(RwLockReadGuard<'a, Inner>);

impl ReadGuard<'_> {
    /// The corpus (base + delta merged on every match).
    pub fn corpus(&self) -> &Corpus {
        &self.0.corpus
    }

    /// The corpus epoch this snapshot belongs to.
    pub fn epoch(&self) -> u64 {
        self.0.epoch
    }

    /// Ops applied since the persisted base (the compaction backlog).
    pub fn pending_ops(&self) -> usize {
        self.0.tail.len()
    }
}

impl LiveCorpus {
    /// An in-memory live corpus: no oplog, no persisted base. Appends and
    /// compaction work identically minus durability.
    pub fn new(corpus: Corpus) -> LiveCorpus {
        LiveCorpus {
            inner: RwLock::new(Inner {
                corpus,
                epoch: 0,
                tail: Vec::new(),
            }),
            persistence: None,
            injector: Arc::new(NoFaults),
            retry: RetryPolicy::default(),
            append_attempts: AtomicU32::new(0),
            compact_lock: Mutex::new(()),
            publish_incomplete: AtomicBool::new(false),
        }
    }

    /// Thread a fault injector (and retry policy) through the WAL and
    /// compaction writes. Production callers keep the [`NoFaults`]
    /// default.
    pub fn with_injector(mut self, injector: Arc<dyn FaultInjector>, retry: RetryPolicy) -> Self {
        self.injector = injector;
        self.retry = retry;
        self
    }

    /// Persist a (compacted) corpus as the base at `corpus_path`, start a
    /// fresh oplog at `oplog_path`, and serve from it. The bootstrap
    /// counterpart of [`LiveCorpus::open`].
    pub fn create(
        corpus: Corpus,
        corpus_path: impl Into<PathBuf>,
        oplog_path: impl Into<PathBuf>,
    ) -> io::Result<LiveCorpus> {
        let corpus_path = corpus_path.into();
        let oplog_path = oplog_path.into();
        let bytes = binio::encode_corpus(&corpus)?;
        esharp_relation::atomic::atomic_write(&corpus_path, &bytes)?;
        esharp_relation::atomic::atomic_write(&oplog_path, oplog_header(crc32(&bytes)).as_bytes())?;
        let mut live = LiveCorpus::new(corpus);
        live.persistence = Some(Persistence {
            corpus_path,
            oplog_path,
        });
        Ok(live)
    }

    /// Open a persisted base + oplog pair, completing or rolling back any
    /// interrupted compaction commit, then replay the oplog tail. Acked
    /// ops always survive; a torn final line (a crash mid-append) is
    /// truncated away; corruption anywhere earlier is a hard error.
    pub fn open(
        corpus_path: impl Into<PathBuf>,
        oplog_path: impl Into<PathBuf>,
    ) -> io::Result<LiveCorpus> {
        let persistence = Persistence {
            corpus_path: corpus_path.into(),
            oplog_path: oplog_path.into(),
        };
        let base_bytes = fs::read(&persistence.corpus_path)?;
        let base_crc = crc32(&base_bytes);

        // Recovery of a half-committed compaction: the pending oplog
        // names the base it belongs to by checksum. Match ⇒ the base
        // rename landed, finish the commit; mismatch ⇒ it never did,
        // roll the pending file back. A stale `.next` base is always
        // discardable — it only becomes meaningful via the pending file.
        let pending = persistence.pending_path();
        if pending.exists() {
            let promote = fs::read(&pending)
                .ok()
                .and_then(|bytes| parse_oplog_header(&bytes).ok())
                .is_some_and(|header_crc| header_crc == base_crc);
            if promote {
                fs::rename(&pending, &persistence.oplog_path)?;
            } else {
                let _ = fs::remove_file(&pending);
            }
        }
        let _ = fs::remove_file(persistence.next_path());

        let mut corpus = binio::decode_corpus(&base_bytes)?;
        let tail = match fs::read(&persistence.oplog_path) {
            Ok(log_bytes) => replay_oplog(&persistence.oplog_path, &log_bytes, base_crc, &mut corpus)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // A base without an oplog: start one.
                esharp_relation::atomic::atomic_write(
                    &persistence.oplog_path,
                    oplog_header(base_crc).as_bytes(),
                )?;
                Vec::new()
            }
            Err(e) => return Err(e),
        };

        let mut live = LiveCorpus::new(corpus);
        if let Ok(inner) = live.inner.get_mut() {
            inner.tail = tail;
        }
        live.persistence = Some(persistence);
        Ok(live)
    }

    fn read_inner(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Take a read snapshot (corpus + epoch, consistent). Many readers
    /// run concurrently; mutations wait for them.
    pub fn read(&self) -> ReadGuard<'_> {
        ReadGuard(self.read_inner())
    }

    /// The current corpus epoch.
    pub fn epoch(&self) -> u64 {
        self.read_inner().epoch
    }

    /// Ops applied since the persisted base (the compaction backlog).
    pub fn pending_ops(&self) -> usize {
        self.read_inner().tail.len()
    }

    /// Apply one op — [`LiveCorpus::apply_batch`] of one.
    pub fn apply(&self, op: &IngestOp) -> io::Result<Applied> {
        let mut applied = self.apply_batch(std::slice::from_ref(op))?;
        applied
            .pop()
            .ok_or_else(|| io::Error::other("apply: empty batch result"))
    }

    /// Validate, durably log, then apply a batch of ops, bumping the
    /// corpus epoch once. All-or-nothing: a validation failure
    /// (`ErrorKind::InvalidInput`) or WAL failure applies nothing and
    /// leaves the oplog exactly as it was.
    pub fn apply_batch(&self, ops: &[IngestOp]) -> io::Result<Vec<Applied>> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        if self.publish_incomplete.load(SeqCst) {
            return Err(io::Error::other(
                "a compaction publish could not complete; reopen the corpus to recover",
            ));
        }
        let mut guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        // Validation first: once the batch is in the log, applying it
        // must be infallible (the WAL rule's other half).
        let mut check = BatchCheck::new(&guard.corpus);
        for op in ops {
            check
                .check(op)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
        if let Some(p) = &self.persistence {
            let mut payload = String::new();
            for op in ops {
                push_oplog_line(&mut payload, &op.render());
            }
            self.wal_append(p, payload.as_bytes())?;
        }
        let mut applied = Vec::with_capacity(ops.len());
        for op in ops {
            applied.push(
                op.apply(&mut guard.corpus)
                    .map_err(|e| io::Error::other(format!("validated op failed to apply: {e}")))?,
            );
        }
        guard.tail.extend_from_slice(ops);
        guard.epoch += 1;
        Ok(applied)
    }

    /// Append `payload` (whole lines) to the oplog, consulting the
    /// injector at [`APPEND_SITE`] per try. Any failure truncates the log
    /// back to its pre-batch length, so unacked bytes never survive to a
    /// replay.
    fn wal_append(&self, p: &Persistence, payload: &[u8]) -> io::Result<()> {
        let old_len = fs::metadata(&p.oplog_path)?.len();
        let max_tries = self.retry.max_attempts.max(1);
        let mut last_err = None;
        for try_no in 0..max_tries {
            let attempt = self.append_attempts.fetch_add(1, SeqCst);
            let result = wal_append_attempt(
                &p.oplog_path,
                payload,
                self.injector.fault_at(APPEND_SITE, attempt),
            );
            match result {
                Ok(()) => return Ok(()),
                Err(e) => {
                    // Roll the file back before deciding whether to retry.
                    if let Ok(f) = OpenOptions::new().write(true).open(&p.oplog_path) {
                        let _ = f.set_len(old_len);
                        let _ = f.sync_all();
                    }
                    if e.kind() == TRANSIENT_KIND && try_no + 1 < max_tries {
                        last_err = Some(e);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("wal append ran zero attempts")))
    }

    /// Fold the delta segment into a fresh persisted base without pausing
    /// reads (beyond the publish swap). Returns `None` when there is
    /// nothing to compact. On any error the previous base, oplog, and
    /// in-memory state all keep serving unchanged.
    pub fn compact(&self) -> io::Result<Option<CompactionReport>> {
        let _cycle = self.compact_lock.lock().unwrap_or_else(|e| e.into_inner());
        let total_started = Instant::now();
        // Phase 1 — snapshot under the read lock: clone the corpus and
        // remember how much of the tail it covers.
        let (snapshot, covered_ops) = {
            let guard = self.read_inner();
            if !guard.corpus.has_delta() && guard.tail.is_empty() {
                return Ok(None);
            }
            (guard.corpus.clone(), guard.tail.len())
        };
        let before_tweets = snapshot.tweets().len();
        let before_tombstones = snapshot.tombstone_count();

        // Phase 2 — off-lock: compact, encode, persist the new base to a
        // side file and verify it by re-decode. Queries keep flowing.
        let (compacted, id_map) = snapshot.compact_with_map();
        let bytes = binio::encode_corpus(&compacted)?;
        let base_crc = crc32(&bytes);
        if let Some(p) = &self.persistence {
            let next = p.next_path();
            atomic_write_with(&next, &bytes, self.injector.as_ref(), COMPACT_SITE, &self.retry)?;
            // Re-decode what actually hit the disk: a silent bit flip
            // (the write "succeeds") must be caught *before* the rename
            // can shadow the last known-good base.
            let written = fs::read(&next)?;
            if let Err(e) = binio::decode_corpus(&written) {
                let _ = fs::remove_file(&next);
                return Err(io::Error::other(format!(
                    "compacted base failed verification, keeping previous base: {e}"
                )));
            }
        }

        // Phase 3 — publish under the write lock: replay the ops that
        // raced in, commit the (base, oplog) pair, swap the corpus.
        let mut guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let pause_started = Instant::now();
        let mut published = compacted;
        let mut new_tail: Vec<IngestOp> = Vec::with_capacity(guard.tail.len() - covered_ops);
        let mut raced_append_ids: Vec<TweetId> = Vec::new();
        for op in &guard.tail[covered_ops..] {
            let replayed = match op {
                IngestOp::Delete { id } => {
                    // Ids minted before the snapshot remap through the
                    // compaction map; ids minted during phase 2 are the
                    // k-th raced append.
                    let new_id = if (*id as usize) < id_map.len() {
                        id_map[*id as usize].ok_or_else(|| {
                            io::Error::other("compaction replay: delete targets a reclaimed tweet")
                        })?
                    } else {
                        raced_append_ids[*id as usize - id_map.len()]
                    };
                    IngestOp::Delete { id: new_id }
                }
                other => other.clone(),
            };
            match replayed.apply(&mut published) {
                Ok(Applied::Tweet(new_id)) => raced_append_ids.push(new_id),
                Ok(_) => {}
                Err(e) => {
                    return Err(io::Error::other(format!(
                        "compaction replay diverged (this is a bug): {e}"
                    )))
                }
            }
            new_tail.push(replayed);
        }

        if let Some(p) = &self.persistence {
            // Two-file commit: pending oplog (named by the new base's
            // checksum) first, then the base rename, then the oplog
            // rename. Every crash point is rolled forward or back by
            // `open` via the checksum comparison.
            let mut log = oplog_header(base_crc);
            for op in &new_tail {
                push_oplog_line(&mut log, &op.render());
            }
            let pending = p.pending_path();
            let next = p.next_path();
            if let Err(e) = atomic_write_with(
                &pending,
                log.as_bytes(),
                self.injector.as_ref(),
                OPLOG_SITE,
                &self.retry,
            ) {
                let _ = fs::remove_file(&next);
                return Err(e);
            }
            if let Err(e) = fs::rename(&next, &p.corpus_path) {
                let _ = fs::remove_file(&pending);
                let _ = fs::remove_file(&next);
                return Err(e);
            }
            if fs::rename(&pending, &p.oplog_path).is_err() {
                // The base rename landed but the oplog one did not: disk
                // is recoverable through the pending file, but the live
                // oplog no longer matches memory — refuse further writes
                // rather than append to a log `open` will discard.
                self.publish_incomplete.store(true, SeqCst);
            }
        }

        guard.corpus = published;
        guard.epoch += 1;
        guard.tail = new_tail;
        let epoch = guard.epoch;
        let after_tweets = guard.corpus.tweets().len();
        let tail_ops_replayed = guard.tail.len();
        let pause = pause_started.elapsed();
        drop(guard);

        Ok(Some(CompactionReport {
            before_tweets,
            before_tombstones,
            after_tweets,
            tail_ops_replayed,
            bytes_written: if self.persistence.is_some() {
                bytes.len()
            } else {
                0
            },
            pause,
            total: total_started.elapsed(),
            epoch,
        }))
    }
}

/// One WAL append try, optionally perturbed by an injected fault.
fn wal_append_attempt(path: &Path, payload: &[u8], fault: Option<Fault>) -> io::Result<()> {
    if let Some(f @ (Fault::IoError { .. } | Fault::Kill)) = fault {
        return Err(fault_error(f, APPEND_SITE));
    }
    let mut file = OpenOptions::new().append(true).open(path)?;
    match fault {
        Some(Fault::TornWrite {
            numerator,
            denominator,
        }) => {
            // The simulated crash: a prefix of the batch reaches the log.
            let den = denominator.max(1) as u64;
            let keep =
                ((payload.len() as u64 * numerator.min(denominator) as u64) / den) as usize;
            file.write_all(&payload[..keep.min(payload.len())])?;
            let _ = file.sync_all();
            Err(fault_error(
                Fault::TornWrite {
                    numerator,
                    denominator,
                },
                APPEND_SITE,
            ))
        }
        Some(Fault::BitFlip { offset, bit }) if !payload.is_empty() => {
            // Silent corruption; the per-line CRC catches it at replay.
            let mut corrupt = payload.to_vec();
            let idx = (offset % corrupt.len() as u64) as usize;
            corrupt[idx] ^= 1 << (bit % 8);
            file.write_all(&corrupt)?;
            file.sync_all()
        }
        _ => {
            file.write_all(payload)?;
            file.sync_all()
        }
    }
}

/// The oplog header line: names the base this log replays onto by the
/// CRC32 of its bytes (also line-CRC-framed like every other line).
fn oplog_header(base_crc: u32) -> String {
    let mut out = String::new();
    push_oplog_line(&mut out, &format!("esharp-oplog {OPLOG_VERSION} base {base_crc:08x}"));
    out
}

/// Frame one line as `crc32(payload):08x \t payload \n`.
fn push_oplog_line(out: &mut String, payload: &str) {
    out.push_str(&format!("{:08x}\t{payload}\n", crc32(payload.as_bytes())));
}

/// Split a CRC-framed line into its payload, verifying the checksum.
fn parse_oplog_line(line: &str) -> Result<&str, String> {
    let (crc_hex, payload) = line
        .split_once('\t')
        .ok_or_else(|| "missing crc frame".to_string())?;
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| format!("bad crc {crc_hex:?}"))?;
    if crc32(payload.as_bytes()) != crc {
        return Err("line checksum mismatch".to_string());
    }
    Ok(payload)
}

/// Parse just the header of an oplog byte buffer, returning the base CRC
/// it names.
fn parse_oplog_header(bytes: &[u8]) -> io::Result<u32> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "oplog is not UTF-8"))?;
    let first = text
        .lines()
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "oplog is empty"))?;
    let payload = parse_oplog_line(first)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("oplog header: {e}")))?;
    let mut words = payload.split(' ');
    match (words.next(), words.next(), words.next(), words.next()) {
        (Some("esharp-oplog"), Some(OPLOG_VERSION), Some("base"), Some(hex)) => {
            u32::from_str_radix(hex, 16).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "oplog header: bad base crc")
            })
        }
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("oplog header: unrecognized {payload:?}"),
        )),
    }
}

/// Replay an oplog onto `corpus`, returning the replayed tail. A torn
/// final line (crash mid-append) is truncated away; anything corrupt
/// before that is a hard error — acked history must not silently shrink.
fn replay_oplog(
    path: &Path,
    bytes: &[u8],
    expected_base_crc: u32,
    corpus: &mut Corpus,
) -> io::Result<Vec<IngestOp>> {
    let header_crc = parse_oplog_header(bytes)?;
    if header_crc != expected_base_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oplog does not belong to this base (checksum mismatch)",
        ));
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "oplog is not UTF-8"))?;
    let mut tail = Vec::new();
    let mut good_len = 0usize;
    let mut torn = false;
    for (index, line) in text.split_inclusive('\n').enumerate() {
        let complete = line.ends_with('\n');
        let trimmed = line.trim_end_matches('\n').trim_end_matches('\r');
        let parsed = if complete {
            parse_oplog_line(trimmed).and_then(|p| {
                if index == 0 {
                    Ok(None) // header, already verified
                } else {
                    IngestOp::parse(p).map(Some)
                }
            })
        } else {
            Err("incomplete final line".to_string())
        };
        match parsed {
            Ok(None) => good_len += line.len(),
            Ok(Some(op)) => {
                op.apply(corpus).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("oplog line {}: logged op no longer applies: {e}", index + 1),
                    )
                })?;
                tail.push(op);
                good_len += line.len();
            }
            Err(reason) => {
                if complete {
                    // Mid-file corruption: history is damaged, refuse.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("oplog line {}: {reason}", index + 1),
                    ));
                }
                torn = true; // torn tail: the crash window, drop it
                break;
            }
        }
    }
    if torn {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(good_len as u64)?;
        file.sync_all()?;
    }
    Ok(tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_fault::FaultPlan;
    use esharp_microblog::{Tweet, User};

    fn base_corpus() -> Corpus {
        let user = |id, handle: &str| User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_uppercase(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        };
        let users = vec![user(0, "alice"), user(1, "bob")];
        let tweets = vec![
            Tweet::parse(0, 0, "the 49ers draft was exciting", |_| None),
            Tweet::parse(1, 1, "niners game today", |_| None),
        ];
        Corpus::new(users, tweets)
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esharp_ingest_live_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn append(text: &str) -> IngestOp {
        IngestOp::Append {
            author: "alice".into(),
            text: text.into(),
        }
    }

    #[test]
    fn apply_bumps_epoch_and_serves_immediately() {
        let live = LiveCorpus::new(base_corpus());
        assert_eq!(live.epoch(), 0);
        live.apply(&append("niners draft steal")).unwrap();
        assert_eq!(live.epoch(), 1);
        let guard = live.read();
        assert_eq!(guard.corpus().match_query("niners"), vec![1, 2]);
        assert_eq!(guard.pending_ops(), 1);
        drop(guard);
        // Validation failures apply nothing and do not bump the epoch.
        let err = live
            .apply(&IngestOp::Append {
                author: "nobody".into(),
                text: "x".into(),
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(live.epoch(), 1);
    }

    #[test]
    fn batch_is_all_or_nothing() {
        let live = LiveCorpus::new(base_corpus());
        let err = live
            .apply_batch(&[append("good one"), IngestOp::Delete { id: 99 }])
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.read().corpus().tweets().len(), 2);
    }

    #[test]
    fn persistence_round_trips_through_open() {
        let dir = tmpdir("roundtrip");
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap();
        live.apply_batch(&[
            IngestOp::AddUser {
                handle: "carol".into(),
                display_name: "C".into(),
                description: String::new(),
                followers: 7,
                verified: true,
            },
            IngestOp::Append {
                author: "carol".into(),
                text: "pasta \t tab and \n newline".into(),
            },
        ])
        .unwrap();
        live.apply(&IngestOp::Delete { id: 0 }).unwrap();
        drop(live);

        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        let guard = back.read();
        assert_eq!(guard.corpus().tweets().len(), 3);
        assert!(guard.corpus().is_deleted(0));
        assert_eq!(guard.corpus().match_query("pasta"), vec![2]);
        assert_eq!(guard.pending_ops(), 3, "acked ops replay");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_publishes_and_survives_reopen() {
        let dir = tmpdir("compact");
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap();
        live.apply(&append("niners deep dive")).unwrap();
        live.apply(&IngestOp::Delete { id: 1 }).unwrap();
        let report = live.compact().unwrap().unwrap();
        assert_eq!(report.before_tweets, 3);
        assert_eq!(report.before_tombstones, 1);
        assert_eq!(report.after_tweets, 2);
        assert_eq!(report.tail_ops_replayed, 0);
        assert!(report.bytes_written > 0);
        assert!(!live.read().corpus().has_delta());
        assert_eq!(live.pending_ops(), 0);
        // Nothing to compact now.
        assert!(live.compact().unwrap().is_none());
        drop(live);

        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        let guard = back.read();
        assert_eq!(guard.corpus().tweets().len(), 2);
        assert_eq!(guard.pending_ops(), 0, "oplog was reset by compaction");
        assert_eq!(guard.corpus().match_query("niners"), vec![1]);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn compaction_replays_raced_deletes_of_raced_appends() {
        // Exercise the tail-replay remap directly: ops land between the
        // snapshot and the publish. Simulate by applying to a non-
        // persistent LiveCorpus whose tail is partially covered — easiest
        // through the public API: append, snapshot happens inside
        // compact(), so race by deleting a pre-snapshot id… the genuinely
        // concurrent case is covered by the proptest; here we at least
        // pin the remap arithmetic via compact_with_map semantics.
        let live = LiveCorpus::new(base_corpus());
        live.apply(&append("one")).unwrap(); // id 2
        live.apply(&IngestOp::Delete { id: 0 }).unwrap();
        let report = live.compact().unwrap().unwrap();
        assert_eq!(report.after_tweets, 2);
        let guard = live.read();
        // Survivors renumbered densely: old 1 → 0, old 2 → 1.
        assert_eq!(guard.corpus().match_query("niners"), vec![0]);
        assert_eq!(guard.corpus().match_query("one"), vec![1]);
    }

    #[test]
    fn wal_fault_leaves_memory_and_log_untouched() {
        let dir = tmpdir("walfault");
        let plan = Arc::new(FaultPlan::new(3).trigger(
            APPEND_SITE,
            1,
            Fault::IoError { transient: false },
        ));
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap()
            .with_injector(plan, RetryPolicy::none());
        live.apply(&append("survives")).unwrap(); // attempt 0: clean
        let log_len = fs::metadata(dir.join("oplog")).unwrap().len();
        let err = live.apply(&append("lost")).unwrap_err(); // attempt 1: faulted
        assert!(err.to_string().contains("injected"));
        assert_eq!(live.epoch(), 1, "failed batch must not bump the epoch");
        assert_eq!(live.read().corpus().tweets().len(), 3);
        assert_eq!(
            fs::metadata(dir.join("oplog")).unwrap().len(),
            log_len,
            "failed batch must not grow the log"
        );
        // And the rolled-back log still replays cleanly.
        drop(live);
        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        assert_eq!(back.read().corpus().tweets().len(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_open() {
        let dir = tmpdir("torntail");
        let plan = Arc::new(FaultPlan::new(5).trigger(
            APPEND_SITE,
            1,
            Fault::TornWrite {
                numerator: 1,
                denominator: 2,
            },
        ));
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap()
            .with_injector(plan, RetryPolicy::none());
        live.apply(&append("acked")).unwrap();
        // The torn batch: bytes reach the file, the rollback repairs it —
        // simulate the crash-before-rollback by writing the torn bytes
        // directly instead.
        assert!(live.apply(&append("torn away")).is_err());
        drop(live);
        // Inject a literally torn line (no newline, broken crc frame).
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("oplog"))
            .unwrap();
        f.write_all(b"deadbeef\ttweet\talice\thalf-writ").unwrap();
        drop(f);
        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        let guard = back.read();
        assert_eq!(guard.corpus().tweets().len(), 3, "acked op survives");
        assert_eq!(guard.pending_ops(), 1, "torn tail dropped");
        drop(guard);
        drop(back);
        // The truncation healed the file: reopen is clean.
        let again = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        assert_eq!(again.read().corpus().tweets().len(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = tmpdir("midlog");
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap();
        live.apply(&append("first")).unwrap();
        live.apply(&append("second")).unwrap();
        drop(live);
        // Flip one bit in the middle of the log (first op line).
        let mut bytes = fs::read(dir.join("oplog")).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        bytes[header_end + 12] ^= 0x01;
        fs::write(dir.join("oplog"), &bytes).unwrap();
        let err = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn pending_commit_rolls_forward_and_back() {
        let dir = tmpdir("pending");
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap();
        live.apply(&append("to be compacted")).unwrap();
        drop(live);
        let corpus_path = dir.join("corpus.bin");
        let oplog_path = dir.join("oplog");
        let pending = sibling(&oplog_path, ".pending");

        // Roll back: a pending file naming a base that never landed.
        fs::write(&pending, oplog_header(0xdeadbeef)).unwrap();
        let back = LiveCorpus::open(&corpus_path, &oplog_path).unwrap();
        assert!(!pending.exists(), "stale pending discarded");
        assert_eq!(back.read().corpus().tweets().len(), 3, "old oplog replayed");
        drop(back);

        // Roll forward: pending names the *current* base → it replaces
        // the oplog (modelling a crash after the base rename).
        let base_crc = crc32(&fs::read(&corpus_path).unwrap());
        fs::write(&pending, oplog_header(base_crc)).unwrap();
        let fwd = LiveCorpus::open(&corpus_path, &oplog_path).unwrap();
        assert!(!pending.exists());
        assert_eq!(
            fwd.read().pending_ops(),
            0,
            "promoted (empty-tail) pending oplog replaced the old log"
        );
        assert_eq!(fwd.read().corpus().tweets().len(), 2, "base without tail");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn compact_write_fault_keeps_last_known_good_base() {
        let dir = tmpdir("compactfault");
        let plan = Arc::new(FaultPlan::new(9).trigger(
            COMPACT_SITE,
            0,
            Fault::TornWrite {
                numerator: 1,
                denominator: 3,
            },
        ));
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap()
            .with_injector(plan, RetryPolicy::none());
        let base_bytes = fs::read(dir.join("corpus.bin")).unwrap();
        live.apply(&append("delta tweet")).unwrap();
        assert!(live.compact().is_err());
        // Serving continues on base + delta; the persisted pair is the
        // pre-compaction one, still consistent.
        assert_eq!(live.read().corpus().match_query("delta"), vec![2]);
        assert_eq!(fs::read(dir.join("corpus.bin")).unwrap(), base_bytes);
        drop(live);
        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        assert_eq!(back.read().corpus().tweets().len(), 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn compact_bit_flip_is_caught_by_verification() {
        let dir = tmpdir("compactflip");
        let plan = Arc::new(FaultPlan::new(11).trigger(
            COMPACT_SITE,
            0,
            Fault::BitFlip {
                offset: 1234,
                bit: 2,
            },
        ));
        let live = LiveCorpus::create(base_corpus(), dir.join("corpus.bin"), dir.join("oplog"))
            .unwrap()
            .with_injector(plan, RetryPolicy::none());
        let base_bytes = fs::read(dir.join("corpus.bin")).unwrap();
        live.apply(&append("delta tweet")).unwrap();
        let err = live.compact().unwrap_err();
        assert!(err.to_string().contains("verification"), "{err}");
        assert_eq!(
            fs::read(dir.join("corpus.bin")).unwrap(),
            base_bytes,
            "corrupt candidate must never shadow the good base"
        );
        assert!(!sibling(&dir.join("corpus.bin"), ".next").exists());
        // The delta is still durable through the oplog.
        drop(live);
        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        assert_eq!(back.read().corpus().match_query("delta"), vec![2]);
        let _ = fs::remove_dir_all(dir);
    }
}
