//! The ingest operation vocabulary and its durable line codec.
//!
//! Every mutation the streaming path can make to a [`Corpus`] is one of
//! three [`IngestOp`]s: register a user, append a tweet, delete a tweet.
//! Ops travel in two places — `POST /ingest` request bodies and the
//! write-ahead oplog — and both use the same tab-separated line format,
//! so a replay file *is* an ingest body and vice versa:
//!
//! ```text
//! user\t<handle>\t<display_name>\t<description>\t<followers>\t<0|1>
//! tweet\t<author_handle>\t<text>
//! delete\t<tweet_id>
//! ```
//!
//! Fields are escaped (`\\`, `\t`, `\n`, `\r`) so arbitrary tweet text
//! round-trips through the line format; an escaped field never contains a
//! raw tab or newline, which is what makes `split('\t')` and
//! line-at-a-time framing sound.

use esharp_microblog::{Corpus, TweetId, UserId};

/// One streaming mutation, in application order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOp {
    /// Register a user so later appends can author and mention them.
    AddUser {
        /// Unique handle (`@`-less).
        handle: String,
        /// Display name.
        display_name: String,
        /// Profile description.
        description: String,
        /// Follower count (an RI/MI feature input).
        followers: u64,
        /// Verified badge.
        verified: bool,
    },
    /// Append one tweet to the delta segment.
    Append {
        /// Author handle (must already exist, possibly earlier in the
        /// same batch).
        author: String,
        /// Raw tweet text (tokenized and interned on apply).
        text: String,
    },
    /// Tombstone a tweet (hidden immediately, reclaimed at compaction).
    Delete {
        /// The tweet to hide.
        id: TweetId,
    },
}

/// What applying one op produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// A new user id.
    User(UserId),
    /// A new (delta-segment) tweet id.
    Tweet(TweetId),
    /// A tombstoned tweet id.
    Deleted(TweetId),
}

fn escape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    for c in field.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(field: &str) -> Result<String, String> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

impl IngestOp {
    /// Render the op as one line (no trailing newline). The inverse of
    /// [`IngestOp::parse`].
    pub fn render(&self) -> String {
        match self {
            IngestOp::AddUser {
                handle,
                display_name,
                description,
                followers,
                verified,
            } => format!(
                "user\t{}\t{}\t{}\t{}\t{}",
                escape(handle),
                escape(display_name),
                escape(description),
                followers,
                u8::from(*verified)
            ),
            IngestOp::Append { author, text } => {
                format!("tweet\t{}\t{}", escape(author), escape(text))
            }
            IngestOp::Delete { id } => format!("delete\t{id}"),
        }
    }

    /// Parse one line rendered by [`IngestOp::render`].
    pub fn parse(line: &str) -> Result<IngestOp, String> {
        let mut fields = line.split('\t');
        let kind = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match kind {
            "user" => {
                let [handle, display_name, description, followers, verified] = rest[..] else {
                    return Err(format!("user op expects 5 fields, got {}", rest.len()));
                };
                Ok(IngestOp::AddUser {
                    handle: unescape(handle)?,
                    display_name: unescape(display_name)?,
                    description: unescape(description)?,
                    followers: followers
                        .parse()
                        .map_err(|_| format!("bad follower count {followers:?}"))?,
                    verified: match verified {
                        "0" => false,
                        "1" => true,
                        other => return Err(format!("bad verified flag {other:?}")),
                    },
                })
            }
            "tweet" => {
                let [author, text] = rest[..] else {
                    return Err(format!("tweet op expects 2 fields, got {}", rest.len()));
                };
                Ok(IngestOp::Append {
                    author: unescape(author)?,
                    text: unescape(text)?,
                })
            }
            "delete" => {
                let [id] = rest[..] else {
                    return Err(format!("delete op expects 1 field, got {}", rest.len()));
                };
                Ok(IngestOp::Delete {
                    id: id.parse().map_err(|_| format!("bad tweet id {id:?}"))?,
                })
            }
            other => Err(format!("unknown op kind {other:?}")),
        }
    }

    /// Parse a newline-separated batch (empty lines and `#` comments
    /// skipped) — the `POST /ingest` body and `--replay` file format.
    pub fn parse_batch(text: &str) -> Result<Vec<IngestOp>, String> {
        let mut ops = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim_end_matches('\r');
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            ops.push(IngestOp::parse(line).map_err(|e| format!("line {}: {e}", n + 1))?);
        }
        Ok(ops)
    }

    /// Apply the op to a corpus. Fails without mutating anything (the
    /// underlying `Corpus` mutators validate before touching state).
    pub fn apply(&self, corpus: &mut Corpus) -> Result<Applied, String> {
        match self {
            IngestOp::AddUser {
                handle,
                display_name,
                description,
                followers,
                verified,
            } => corpus
                .add_user(handle, display_name, description, *followers, *verified)
                .map(Applied::User),
            IngestOp::Append { author, text } => {
                corpus.append_tweet(author, text).map(Applied::Tweet)
            }
            IngestOp::Delete { id } => corpus.delete_tweet(*id).map(|()| Applied::Deleted(*id)),
        }
    }
}

/// Validates a batch against a corpus *plus the batch's own earlier ops*
/// — an append may cite a user added two lines up, a delete may target a
/// tweet appended in the same batch. Used by the WAL path to guarantee
/// that once a batch is durably logged, applying it cannot fail.
#[derive(Debug)]
pub struct BatchCheck<'c> {
    corpus: &'c Corpus,
    new_handles: std::collections::HashSet<String>,
    pending_appends: usize,
    pending_deletes: std::collections::HashSet<TweetId>,
}

impl<'c> BatchCheck<'c> {
    /// Start validating a batch against `corpus`.
    pub fn new(corpus: &'c Corpus) -> BatchCheck<'c> {
        BatchCheck {
            corpus,
            new_handles: std::collections::HashSet::new(),
            pending_appends: 0,
            pending_deletes: std::collections::HashSet::new(),
        }
    }

    /// Check the next op of the batch, folding its effects into the
    /// overlay on success.
    pub fn check(&mut self, op: &IngestOp) -> Result<(), String> {
        match op {
            IngestOp::AddUser { handle, .. } => {
                if handle.is_empty() {
                    return Err("user handle must be non-empty".to_string());
                }
                if self.corpus.user_by_handle(handle).is_some()
                    || self.new_handles.contains(handle)
                {
                    return Err(format!("handle {handle:?} already exists"));
                }
                self.new_handles.insert(handle.clone());
                Ok(())
            }
            IngestOp::Append { author, .. } => {
                if self.corpus.user_by_handle(author).is_none()
                    && !self.new_handles.contains(author)
                {
                    return Err(format!("unknown author handle {author:?}"));
                }
                self.pending_appends += 1;
                Ok(())
            }
            IngestOp::Delete { id } => {
                let total = self.corpus.tweets().len() + self.pending_appends;
                if (*id as usize) >= total {
                    return Err(format!("tweet {id} does not exist"));
                }
                if ((*id as usize) < self.corpus.tweets().len() && self.corpus.is_deleted(*id))
                    || self.pending_deletes.contains(id)
                {
                    return Err(format!("tweet {id} is already deleted"));
                }
                self.pending_deletes.insert(*id);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_microblog::{Tweet, User};

    fn corpus() -> Corpus {
        let users = vec![User {
            id: 0,
            handle: "alice".to_string(),
            display_name: "ALICE".to_string(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }];
        let tweets = vec![Tweet::parse(0, 0, "hello world", |_| None)];
        Corpus::new(users, tweets)
    }

    #[test]
    fn ops_round_trip_through_the_line_codec() {
        let ops = vec![
            IngestOp::AddUser {
                handle: "dave".into(),
                display_name: "Dave\tTab".into(),
                description: "line\nbreak \\ slash".into(),
                followers: 42,
                verified: true,
            },
            IngestOp::Append {
                author: "dave".into(),
                text: "multi\nline\ttweet\r\\".into(),
            },
            IngestOp::Delete { id: 7 },
        ];
        for op in &ops {
            let line = op.render();
            assert!(!line.contains('\n'), "{line:?}");
            assert_eq!(&IngestOp::parse(&line).unwrap(), op);
        }
        let batch: String = ops.iter().map(|o| o.render() + "\n").collect();
        let with_noise = format!("# comment\n\n{batch}");
        assert_eq!(IngestOp::parse_batch(&with_noise).unwrap(), ops);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "frobnicate\tx",
            "user\tonly\ttwo",
            "user\ta\tb\tc\tnotanumber\t0",
            "user\ta\tb\tc\t1\t2",
            "tweet\tonlyauthor",
            "delete\tnotanid",
            "tweet\ta\tbad\\escape\\q",
        ] {
            assert!(IngestOp::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn batch_check_tracks_intra_batch_state() {
        let c = corpus();
        let mut check = BatchCheck::new(&c);
        // Append citing a user added earlier in the same batch.
        check
            .check(&IngestOp::AddUser {
                handle: "bob".into(),
                display_name: String::new(),
                description: String::new(),
                followers: 0,
                verified: false,
            })
            .unwrap();
        check
            .check(&IngestOp::Append {
                author: "bob".into(),
                text: "hi".into(),
            })
            .unwrap();
        // Delete of the tweet appended above (id 1 = len 1 + 0 pending).
        check.check(&IngestOp::Delete { id: 1 }).unwrap();
        // Double delete, duplicate handle, unknown author, bad id.
        assert!(check.check(&IngestOp::Delete { id: 1 }).is_err());
        assert!(check.check(&IngestOp::Delete { id: 9 }).is_err());
        assert!(check
            .check(&IngestOp::AddUser {
                handle: "alice".into(),
                display_name: String::new(),
                description: String::new(),
                followers: 0,
                verified: false,
            })
            .is_err());
        assert!(check
            .check(&IngestOp::Append {
                author: "nobody".into(),
                text: "hi".into()
            })
            .is_err());
    }

    #[test]
    fn apply_matches_corpus_semantics() {
        let mut c = corpus();
        let add = IngestOp::AddUser {
            handle: "bob".into(),
            display_name: "B".into(),
            description: String::new(),
            followers: 1,
            verified: false,
        };
        assert_eq!(add.apply(&mut c).unwrap(), Applied::User(1));
        let tweet = IngestOp::Append {
            author: "bob".into(),
            text: "hello again".into(),
        };
        assert_eq!(tweet.apply(&mut c).unwrap(), Applied::Tweet(1));
        assert_eq!(
            IngestOp::Delete { id: 1 }.apply(&mut c).unwrap(),
            Applied::Deleted(1)
        );
        assert!(IngestOp::Delete { id: 1 }.apply(&mut c).is_err());
    }
}
