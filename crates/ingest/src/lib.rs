//! `esharp-ingest` — streaming index maintenance for e#.
//!
//! The offline pipeline (esharp-core) builds expertise models from a
//! corpus snapshot; before this crate, keeping the index fresh meant a
//! weekly full rebuild. `esharp-ingest` replaces that with an LSM-style
//! maintenance loop:
//!
//! 1. **Delta segments** — new users and tweets are absorbed into the
//!    corpus's append-only delta overlay (`esharp_microblog::Corpus`),
//!    interned through the existing `TokenId` symbol table; deletions
//!    become tombstones filtered on the read path. Queries see every
//!    acked op immediately.
//! 2. **Write-ahead oplog** — with persistence configured, each batch is
//!    CRC-framed and fsynced to the oplog *before* it is applied, so a
//!    crash replays exactly the acked history ([`LiveCorpus::open`]).
//! 3. **Zero-downtime compaction** — a background thread
//!    ([`Compactor`]) folds the delta into a fresh base off-lock,
//!    verifies the written bytes by re-decode, and publishes via a
//!    two-file commit plus one pointer swap. Serving never pauses beyond
//!    that swap, and the corpus epoch bump invalidates anything cached
//!    against the old index.
//!
//! Compaction output is pinned — by unit test and by property test over
//! random append/delete/compact interleavings — to be bit-identical to a
//! from-scratch `Corpus::new` rebuild of the same live tweets, so the
//! streaming path can never drift from the weekly-rebuild semantics it
//! replaces.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod compactor;
pub mod live;
pub mod ops;

pub use compactor::{Compactor, CompactorConfig};
pub use live::{
    CompactionReport, LiveCorpus, ReadGuard, APPEND_SITE, COMPACT_SITE, OPLOG_SITE,
};
pub use ops::{Applied, BatchCheck, IngestOp};
