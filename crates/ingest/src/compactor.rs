//! The background compaction thread: watches a [`LiveCorpus`]'s pending
//! op backlog and folds the delta segment into a fresh base whenever it
//! crosses a threshold, replacing the weekly full rebuild with a
//! continuous process that never pauses serving beyond the publish swap.

use crate::live::{CompactionReport, LiveCorpus};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// When and how often the background thread compacts.
#[derive(Debug, Clone, Copy)]
pub struct CompactorConfig {
    /// Compact once this many ops have accumulated since the last base.
    pub threshold_ops: usize,
    /// How often the backlog is polled.
    pub interval: Duration,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        CompactorConfig {
            threshold_ops: 1024,
            interval: Duration::from_millis(250),
        }
    }
}

#[derive(Default)]
struct Shared {
    stop: bool,
    reports: Vec<CompactionReport>,
    errors: u64,
}

/// Handle to the background compaction thread. Dropping without
/// [`Compactor::stop`] detaches the thread (it exits at the next poll
/// once the handle's shared state is gone — prefer an explicit stop).
pub struct Compactor {
    shared: Arc<(Mutex<Shared>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Spawn the compaction loop over `live`.
    pub fn start(live: Arc<LiveCorpus>, config: CompactorConfig) -> Compactor {
        let shared = Arc::new((Mutex::new(Shared::default()), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("esharp-compactor".to_string())
            .spawn(move || {
                let (lock, cvar) = &*thread_shared;
                let mut guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if guard.stop {
                        return;
                    }
                    if live.pending_ops() >= config.threshold_ops.max(1) {
                        // Compaction runs without the status lock held so
                        // stop() can still be requested mid-cycle.
                        drop(guard);
                        let outcome = live.compact();
                        guard = lock.lock().unwrap_or_else(|e| e.into_inner());
                        match outcome {
                            Ok(Some(report)) => guard.reports.push(report),
                            Ok(None) => {}
                            Err(_) => guard.errors += 1,
                        }
                    }
                    let (next, _timeout) = cvar
                        .wait_timeout(guard, config.interval)
                        .unwrap_or_else(|e| e.into_inner());
                    guard = next;
                }
            })
            .ok();
        Compactor { shared, handle }
    }

    /// Completed compaction cycles so far.
    pub fn reports(&self) -> Vec<CompactionReport> {
        self.shared
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .reports
            .clone()
    }

    /// Failed compaction cycles so far (the corpus keeps serving on its
    /// previous base after each).
    pub fn errors(&self) -> u64 {
        self.shared.0.lock().unwrap_or_else(|e| e.into_inner()).errors
    }

    /// Stop the loop and join the thread. Idempotent.
    pub fn stop(&mut self) {
        {
            let (lock, cvar) = &*self.shared;
            lock.lock().unwrap_or_else(|e| e.into_inner()).stop = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::IngestOp;
    use esharp_microblog::{Corpus, Tweet, User};
    use std::time::Instant;

    fn corpus() -> Corpus {
        let users = vec![User {
            id: 0,
            handle: "alice".to_string(),
            display_name: "A".to_string(),
            description: String::new(),
            followers: 5,
            verified: false,
            expert_domains: vec![],
            spam: false,
        }];
        let tweets = vec![Tweet::parse(0, 0, "seed tweet", |_| None)];
        Corpus::new(users, tweets)
    }

    #[test]
    fn compacts_once_backlog_crosses_threshold() {
        let live = Arc::new(LiveCorpus::new(corpus()));
        let mut compactor = Compactor::start(
            Arc::clone(&live),
            CompactorConfig {
                threshold_ops: 4,
                interval: Duration::from_millis(5),
            },
        );
        for i in 0..6 {
            live.apply(&IngestOp::Append {
                author: "alice".into(),
                text: format!("tweet number {i}"),
            })
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while live.read().corpus().has_delta() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();
        assert!(!live.read().corpus().has_delta(), "backlog never compacted");
        assert!(!compactor.reports().is_empty());
        assert_eq!(compactor.errors(), 0);
        assert_eq!(live.read().corpus().tweets().len(), 7);
    }

    #[test]
    fn idle_loop_never_compacts_and_stops_cleanly() {
        let live = Arc::new(LiveCorpus::new(corpus()));
        let mut compactor = Compactor::start(
            Arc::clone(&live),
            CompactorConfig {
                threshold_ops: 1,
                interval: Duration::from_millis(5),
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        compactor.stop();
        compactor.stop(); // idempotent
        assert!(compactor.reports().is_empty());
        assert_eq!(live.epoch(), 0, "idle compactor must not publish");
    }
}
