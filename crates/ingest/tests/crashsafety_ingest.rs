//! Corruption matrix for the compaction writer.
//!
//! The base `corpus.bin` container already rejects every truncation and
//! bit flip (see `crates/microblog/tests/binary_corpus.rs`); these tests
//! pin the same matrix over a *compacted* base — bytes produced by the
//! streaming path's `compact_with_map` + encode, not the offline builder
//! — and then the live-instance half of the guarantee: when the
//! compaction write itself is faulted (torn, erroring, silently
//! bit-flipped, killed), the previous base keeps serving, on disk and in
//! memory, with the delta still durable through the oplog.

use esharp_fault::{Fault, FaultPlan, RetryPolicy};
use esharp_ingest::{IngestOp, LiveCorpus, COMPACT_SITE, OPLOG_SITE};
use esharp_microblog::binio::{decode_corpus, encode_corpus};
use esharp_microblog::{Corpus, Tweet, User};
use std::path::PathBuf;
use std::sync::Arc;

/// A corpus that has actually been through the streaming path: built,
/// mutated through the delta segment, compacted.
fn compacted_via_streaming() -> Corpus {
    let users = vec![
        User {
            id: 0,
            handle: "ana".into(),
            display_name: "Ana".into(),
            description: "knows football".into(),
            followers: 900,
            verified: true,
            expert_domains: vec![1],
            spam: false,
        },
        User {
            id: 1,
            handle: "bo".into(),
            display_name: "Bo".into(),
            description: String::new(),
            followers: 14,
            verified: false,
            expert_domains: vec![],
            spam: false,
        },
    ];
    let tweets = vec![
        Tweet::parse(0, 0, "niners draft niners talk", |_| None),
        Tweet::parse(1, 1, "café ☕ about the draft", |_| None),
    ];
    let live = LiveCorpus::new(Corpus::new(users, tweets));
    live.apply_batch(&[
        IngestOp::AddUser {
            handle: "cy".into(),
            display_name: "Cy".into(),
            description: "tab\there".into(),
            followers: 3,
            verified: false,
        },
        IngestOp::Append {
            author: "cy".into(),
            text: "fresh topic entirely".into(),
        },
        IngestOp::Delete { id: 1 },
    ])
    .unwrap();
    live.compact().unwrap().unwrap();
    let guard = live.read();
    guard.corpus().clone()
}

#[test]
fn every_truncation_of_a_compacted_base_is_rejected() {
    let bytes = encode_corpus(&compacted_via_streaming()).unwrap();
    for cut in 0..bytes.len() {
        assert!(
            decode_corpus(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes was accepted",
            bytes.len()
        );
    }
}

#[test]
fn every_single_bit_flip_of_a_compacted_base_is_rejected() {
    let bytes = encode_corpus(&compacted_via_streaming()).unwrap();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            assert!(
                decode_corpus(&corrupt).is_err(),
                "flip of byte {byte} bit {bit} was accepted"
            );
        }
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esharp_crashsafety_ingest_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn seeded(dir: &PathBuf, plan: FaultPlan) -> LiveCorpus {
    let users = vec![User {
        id: 0,
        handle: "ana".into(),
        display_name: "Ana".into(),
        description: String::new(),
        followers: 10,
        verified: false,
        expert_domains: vec![],
        spam: false,
    }];
    let tweets = vec![Tweet::parse(0, 0, "base tweet about niners", |_| None)];
    LiveCorpus::create(
        Corpus::new(users, tweets),
        dir.join("corpus.bin"),
        dir.join("oplog"),
    )
    .unwrap()
    .with_injector(Arc::new(plan), RetryPolicy::none())
}

/// Every fault kind at the compaction write: the cycle fails, the
/// on-disk base is byte-identical to before, in-memory serving still
/// answers from base + delta, and a reopen replays the delta from the
/// oplog. Last-known-good is never lost.
#[test]
fn faulted_compaction_write_leaves_last_known_good_serving() {
    let faults = [
        ("io", Fault::IoError { transient: false }),
        (
            "torn",
            Fault::TornWrite {
                numerator: 1,
                denominator: 2,
            },
        ),
        ("flip", Fault::BitFlip { offset: 99, bit: 5 }),
        ("kill", Fault::Kill),
    ];
    for (name, fault) in faults {
        let dir = tmpdir(&format!("compact_{name}"));
        let live = seeded(&dir, FaultPlan::new(7).trigger(COMPACT_SITE, 0, fault));
        let base_before = std::fs::read(dir.join("corpus.bin")).unwrap();
        live.apply(&IngestOp::Append {
            author: "ana".into(),
            text: "delta delta delta".into(),
        })
        .unwrap();

        let err = live.compact().unwrap_err();
        assert!(!err.to_string().is_empty(), "{name}: error must explain");
        // On-disk base untouched; no stray .next shadowing it.
        assert_eq!(
            std::fs::read(dir.join("corpus.bin")).unwrap(),
            base_before,
            "{name}: base was clobbered"
        );
        assert!(
            !dir.join("corpus.bin.next").exists(),
            "{name}: leftover .next candidate"
        );
        // In-memory serving continues on base + delta.
        assert_eq!(live.read().corpus().match_query("delta"), vec![1]);
        assert_eq!(live.read().corpus().match_query("niners"), vec![0]);
        drop(live);
        // And the delta was never only in memory: a reopen replays it.
        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        assert_eq!(back.read().corpus().match_query("delta"), vec![1]);
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Same matrix at the oplog-commit write: the base candidate is
/// discarded, the previous (base, oplog) pair keeps serving.
#[test]
fn faulted_oplog_commit_leaves_last_known_good_serving() {
    for (name, fault) in [
        ("io", Fault::IoError { transient: false }),
        ("kill", Fault::Kill),
        (
            "torn",
            Fault::TornWrite {
                numerator: 2,
                denominator: 3,
            },
        ),
    ] {
        let dir = tmpdir(&format!("oplog_{name}"));
        let live = seeded(&dir, FaultPlan::new(13).trigger(OPLOG_SITE, 0, fault));
        let base_before = std::fs::read(dir.join("corpus.bin")).unwrap();
        let oplog_before = std::fs::read(dir.join("oplog")).unwrap();
        live.apply(&IngestOp::Append {
            author: "ana".into(),
            text: "delta payload".into(),
        })
        .unwrap();
        let oplog_with_delta = std::fs::read(dir.join("oplog")).unwrap();
        assert!(oplog_with_delta.len() > oplog_before.len());

        assert!(live.compact().is_err(), "{name}: commit should fail");
        assert_eq!(
            std::fs::read(dir.join("corpus.bin")).unwrap(),
            base_before,
            "{name}: base changed under a failed commit"
        );
        assert_eq!(
            std::fs::read(dir.join("oplog")).unwrap(),
            oplog_with_delta,
            "{name}: oplog changed under a failed commit"
        );
        assert!(!dir.join("corpus.bin.next").exists(), "{name}");
        assert!(!dir.join("oplog.pending").exists(), "{name}");
        assert_eq!(live.read().corpus().match_query("payload"), vec![1]);
        drop(live);
        let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
        assert_eq!(back.read().corpus().match_query("payload"), vec![1]);
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// A transient compaction-write fault clears under the retry policy —
/// the same recovery story as the offline checkpoint pipeline.
#[test]
fn transient_compaction_fault_retries_to_success() {
    let dir = tmpdir("transient");
    let live = seeded(
        &dir,
        FaultPlan::new(21).trigger(COMPACT_SITE, 0, Fault::IoError { transient: true }),
    )
    .with_injector(
        Arc::new(FaultPlan::new(21).trigger(
            COMPACT_SITE,
            0,
            Fault::IoError { transient: true },
        )),
        RetryPolicy { max_attempts: 3 },
    );
    live.apply(&IngestOp::Append {
        author: "ana".into(),
        text: "eventually durable".into(),
    })
    .unwrap();
    let report = live.compact().unwrap().unwrap();
    assert_eq!(report.after_tweets, 2);
    drop(live);
    let back = LiveCorpus::open(dir.join("corpus.bin"), dir.join("oplog")).unwrap();
    assert_eq!(back.read().corpus().match_query("eventually"), vec![1]);
    assert_eq!(back.read().pending_ops(), 0, "compaction committed");
    let _ = std::fs::remove_dir_all(dir);
}
