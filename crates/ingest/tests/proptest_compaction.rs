//! The streaming path's core invariant, property-tested: after any
//! interleaving of appends, deletes, and compactions, a final compaction
//! yields a corpus **bit-identical** (under the binary encoding) to a
//! from-scratch `Corpus::new` rebuild of the same users and live tweets.
//! The reference model is a slot list mirroring the tweet array — `None`
//! for tombstones, densely renumbered at each compaction — so delete
//! targets and id remaps are computed independently of the code under
//! test.

use esharp_ingest::{IngestOp, LiveCorpus};
use esharp_microblog::binio::encode_corpus;
use esharp_microblog::{Corpus, Tweet, User};
use proptest::prelude::*;

/// One scripted step: (action selector, target selector, tweet text).
type Step = (u8, usize, String);

/// Reference state: users in creation order, tweet slots mirroring the
/// corpus tweet array (`None` = tombstoned).
#[derive(Default)]
struct Model {
    users: Vec<String>,
    slots: Vec<Option<(u32, String)>>,
}

impl Model {
    fn compact(&mut self) {
        self.slots = self.slots.drain(..).flatten().map(Some).collect();
    }

    /// The cold rebuild: `Corpus::new` over the current live state, as
    /// the weekly offline pipeline would have built it.
    fn rebuild(&self) -> Corpus {
        let users: Vec<User> = self
            .users
            .iter()
            .enumerate()
            .map(|(id, handle)| User {
                id: id as u32,
                handle: handle.clone(),
                display_name: format!("User {handle}"),
                description: format!("about {handle}"),
                followers: id as u64 * 13,
                verified: id % 3 == 0,
                expert_domains: Vec::new(),
                spam: false,
            })
            .collect();
        let tweets: Vec<Tweet> = self
            .slots
            .iter()
            .flatten()
            .enumerate()
            .map(|(id, (author, text))| Tweet::parse(id as u32, *author, text, |_| None))
            .collect();
        Corpus::new(users, tweets)
    }
}

/// Interpret one step against both the live corpus and the model,
/// returning the op applied (if any).
fn run_step(live: &LiveCorpus, model: &mut Model, step: &Step) {
    let (action, target, text) = step;
    match action {
        // ~15%: register a user.
        0..=14 => {
            let handle = format!("u{}", model.users.len());
            let op = IngestOp::AddUser {
                handle: handle.clone(),
                display_name: format!("User {handle}"),
                description: format!("about {handle}"),
                followers: model.users.len() as u64 * 13,
                verified: model.users.len() % 3 == 0,
            };
            live.apply(&op).unwrap();
            model.users.push(handle);
        }
        // ~55%: append a tweet from an existing user.
        15..=69 => {
            if model.users.is_empty() {
                return;
            }
            let author = target % model.users.len();
            let op = IngestOp::Append {
                author: model.users[author].clone(),
                text: text.clone(),
            };
            live.apply(&op).unwrap();
            model.slots.push(Some((author as u32, text.clone())));
        }
        // ~15%: tombstone a live tweet.
        70..=84 => {
            let live_ids: Vec<usize> = (0..model.slots.len())
                .filter(|&i| model.slots[i].is_some())
                .collect();
            if live_ids.is_empty() {
                return;
            }
            let id = live_ids[target % live_ids.len()];
            live.apply(&IngestOp::Delete { id: id as u32 }).unwrap();
            model.slots[id] = None;
        }
        // ~15%: compact mid-stream.
        _ => {
            live.compact().unwrap();
            model.compact();
        }
    }
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0u8..=99, 0usize..1024, "[a-z ]{1,24}"), 1..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// In-memory interleavings: final compaction ≡ cold rebuild, byte
    /// for byte.
    #[test]
    fn compaction_is_bit_identical_to_cold_rebuild(script in steps()) {
        let live = LiveCorpus::new(Corpus::new(Vec::new(), Vec::new()));
        let mut model = Model::default();
        for step in &script {
            run_step(&live, &mut model, step);
            // The merged read path agrees with the model at every step,
            // not just at compaction boundaries.
            prop_assert_eq!(
                live.read().corpus().live_tweet_count(),
                model.slots.iter().flatten().count()
            );
        }
        live.compact().unwrap();
        model.compact();
        let streamed = encode_corpus(live.read().corpus()).unwrap();
        let rebuilt = encode_corpus(&model.rebuild()).unwrap();
        prop_assert_eq!(streamed, rebuilt);
    }

    /// Persistent interleavings: crash (drop) at the end, reopen, replay
    /// the oplog — then the reopened instance compacts to the same bytes
    /// as the cold rebuild. Durability composes with the bit-identical
    /// guarantee.
    #[test]
    fn reopen_replay_then_compact_matches_cold_rebuild(script in steps()) {
        let dir = std::env::temp_dir().join(format!(
            "esharp_ingest_prop_{}_{}",
            std::process::id(),
            script.len() * 1000 + script.first().map_or(0, |s| s.1)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let corpus_path = dir.join("corpus.bin");
        let oplog_path = dir.join("oplog");

        let live = LiveCorpus::create(
            Corpus::new(Vec::new(), Vec::new()),
            &corpus_path,
            &oplog_path,
        )
        .unwrap();
        let mut model = Model::default();
        for step in &script {
            run_step(&live, &mut model, step);
        }
        let before: Vec<u32> = live.read().corpus().match_query("a");
        drop(live); // simulated crash: no final compaction, no shutdown

        let reopened = LiveCorpus::open(&corpus_path, &oplog_path).unwrap();
        prop_assert_eq!(reopened.read().corpus().match_query("a"), before);
        reopened.compact().unwrap();
        model.compact();
        let streamed = encode_corpus(reopened.read().corpus()).unwrap();
        let rebuilt = encode_corpus(&model.rebuild()).unwrap();
        prop_assert_eq!(streamed, rebuilt);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
