//! Log aggregation and support filtering (§4.1).
//!
//! The raw event stream is folded into `(query, url, clicks)` records, and
//! queries below the support threshold are dropped — the paper removes
//! "all the queries which appear less than 50 times per month, to reduce
//! noise and save space".

use crate::loggen::RawEvent;
use crate::world::{TermId, UrlId, World};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One aggregated click record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClickRecord {
    /// The query term.
    pub term: TermId,
    /// The clicked URL.
    pub url: UrlId,
    /// How many times this (query, URL) pair was observed.
    pub clicks: u64,
}

/// An aggregated query log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AggregatedLog {
    /// Aggregated records, sorted by (term, url) for determinism.
    pub records: Vec<ClickRecord>,
    /// Total clicks per term (indexed by `TermId`; terms never observed
    /// hold 0).
    pub term_totals: Vec<u64>,
    /// Number of raw events folded in.
    pub raw_events: u64,
}

impl AggregatedLog {
    /// Fold a raw event stream into aggregated records.
    pub fn from_events(events: impl Iterator<Item = RawEvent>, num_terms: usize) -> Self {
        let mut counts: HashMap<(TermId, UrlId), u64> = HashMap::new();
        let mut term_totals = vec![0u64; num_terms];
        let mut raw_events = 0u64;
        for ev in events {
            *counts.entry((ev.term, ev.url)).or_insert(0) += 1;
            if (ev.term as usize) < term_totals.len() {
                term_totals[ev.term as usize] += 1;
            }
            raw_events += 1;
        }
        let mut records: Vec<ClickRecord> = counts
            .into_iter()
            .map(|((term, url), clicks)| ClickRecord { term, url, clicks })
            .collect();
        records.sort_by_key(|r| (r.term, r.url));
        AggregatedLog {
            records,
            term_totals,
            raw_events,
        }
    }

    /// Drop every record whose query's *total* observation count is below
    /// `min_support` (the paper's 50-per-month rule). Returns the filtered
    /// log plus how many distinct queries were dropped.
    pub fn filter_min_support(&self, min_support: u64) -> (AggregatedLog, usize) {
        let keep = |term: TermId| self.term_totals[term as usize] >= min_support;
        let records: Vec<ClickRecord> = self
            .records
            .iter()
            .filter(|r| keep(r.term))
            .copied()
            .collect();
        let dropped = self
            .term_totals
            .iter()
            .filter(|&&total| total > 0 && total < min_support)
            .count();
        let mut term_totals = vec![0u64; self.term_totals.len()];
        for (i, &total) in self.term_totals.iter().enumerate() {
            if total >= min_support {
                term_totals[i] = total;
            }
        }
        (
            AggregatedLog {
                records,
                term_totals,
                raw_events: self.raw_events,
            },
            dropped,
        )
    }

    /// Distinct queries present in the log.
    pub fn num_terms(&self) -> usize {
        self.term_totals.iter().filter(|&&t| t > 0).count()
    }

    /// Approximate payload size in bytes (Table 9 accounting: 998 GB in,
    /// 2.6 GB of similarity graph out in the paper).
    pub fn byte_size(&self) -> u64 {
        (self.records.len() * std::mem::size_of::<ClickRecord>()) as u64
    }

    /// Pretty textual form `(query, url, clicks)` for small logs, resolving
    /// ids through the world.
    pub fn resolve<'a>(
        &'a self,
        world: &'a World,
    ) -> impl Iterator<Item = (&'a str, &'a str, u64)> + 'a {
        self.records
            .iter()
            .map(move |r| (world.term_text(r.term), world.url_text(r.url), r.clicks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loggen::{LogConfig, LogGenerator};
    use crate::world::{World, WorldConfig};

    fn raw(term: TermId, url: UrlId) -> RawEvent {
        RawEvent { term, url }
    }

    #[test]
    fn aggregation_counts_pairs() {
        let events = vec![raw(0, 0), raw(0, 0), raw(0, 1), raw(1, 0)];
        let log = AggregatedLog::from_events(events.into_iter(), 2);
        assert_eq!(log.raw_events, 4);
        assert_eq!(
            log.records,
            vec![
                ClickRecord { term: 0, url: 0, clicks: 2 },
                ClickRecord { term: 0, url: 1, clicks: 1 },
                ClickRecord { term: 1, url: 0, clicks: 1 },
            ]
        );
        assert_eq!(log.term_totals, vec![3, 1]);
    }

    #[test]
    fn min_support_drops_tail_queries() {
        let events = vec![raw(0, 0), raw(0, 1), raw(0, 0), raw(1, 0)];
        let log = AggregatedLog::from_events(events.into_iter(), 2);
        let (filtered, dropped) = log.filter_min_support(2);
        assert_eq!(dropped, 1);
        assert!(filtered.records.iter().all(|r| r.term == 0));
        assert_eq!(filtered.num_terms(), 1);
        // Raw event count is preserved for accounting.
        assert_eq!(filtered.raw_events, 4);
    }

    #[test]
    fn end_to_end_with_generator_most_terms_survive_reasonable_support() {
        let w = World::generate(&WorldConfig::tiny(1));
        let log = AggregatedLog::from_events(
            LogGenerator::new(&w, &LogConfig::tiny(2)),
            w.terms.len(),
        );
        let before = log.num_terms();
        // Pick a support threshold at the 75th percentile of totals so the
        // test is robust to world size: the head survives, the tail drops.
        let mut totals: Vec<u64> = log.term_totals.iter().copied().filter(|&t| t > 0).collect();
        totals.sort_unstable();
        let support = totals[totals.len() * 3 / 4];
        let (filtered, dropped) = log.filter_min_support(support);
        assert!(filtered.num_terms() + dropped == before);
        assert!(filtered.num_terms() > 0);
        // Zipf tail: some queries must fall below support.
        assert!(dropped > 0, "expected a long tail to be filtered");
    }
}
