//! Samplers for the heavy-tailed distributions the synthetic log needs.
//!
//! Implemented on top of `rand` directly (rather than pulling `rand_distr`)
//! to keep the dependency set at the workspace-approved minimum.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`.
///
/// Web query popularity is famously Zipfian; the paper's pipeline depends
/// on this shape twice — the ≥50 clicks/month support filter only bites
/// when there is a long tail, and the "Top 250" query set only makes sense
/// when the head is heavy.
///
/// Uses a precomputed cumulative table and binary search: O(n) memory,
/// O(log n) per sample, exact (no rejection).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (s=1.0 is classic
    /// Zipf; larger s is more skewed).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the sampler covers no ranks (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// A log-normal sampler (`exp(mu + sigma * N(0,1))`).
///
/// The paper observes that the expert features (TS/MI/RI) "appear to be
/// log-normally distributed"; the corpus generator uses this shape so that
/// the detector's log-transform + z-score normalization does what the
/// paper expects.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A sampler with the given location `mu` and scale `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        LogNormal { mu, sigma }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_head_dominates() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.1 the top-10 ranks carry a large share of the mass.
        assert!(head as f64 / N as f64 > 0.35, "head share {head}/{N}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > z.pmf(1));
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let ln = LogNormal::new(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..10_000).map(|_| ln.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        // Log-normal: mean > median.
        assert!(mean > median);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
