//! Synthetic search-log generation.
//!
//! Stands in for the paper's "998 GB of Web search query logs" (May 2014,
//! US): a stream of `(query, clicked URL)` events sampled from the
//! ground-truth [`World`]. The generator preserves the statistical
//! properties the pipeline depends on — Zipfian query popularity, clicks
//! concentrated on the owning domain's URLs (high within-domain cosine
//! similarity), weaker clicks on category hub URLs (weak cross-domain
//! edges), and a floor of uniform noise.

use crate::world::{DomainId, TermId, UrlId, World};
use crate::dist::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One raw search event: a query was issued and a URL clicked.
/// Stored as interned ids — the raw log is by far the largest artifact in
/// the pipeline (998 GB in the paper) and ids keep it compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawEvent {
    /// The query term.
    pub term: TermId,
    /// The clicked URL.
    pub url: UrlId,
}

/// Log-generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogConfig {
    /// Number of raw events to emit.
    pub events: usize,
    /// Zipf exponent over domain popularity ranks.
    pub domain_zipf_s: f64,
    /// Zipf exponent over terms within a domain (head term dominates).
    pub term_zipf_s: f64,
    /// Zipf exponent over a domain's own URLs.
    pub url_zipf_s: f64,
    /// Probability that a click lands on a category hub URL instead of a
    /// domain URL.
    pub hub_click_prob: f64,
    /// Probability that a click is uniform noise over all URLs.
    pub noise_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            events: 500_000,
            domain_zipf_s: 1.05,
            term_zipf_s: 0.8,
            url_zipf_s: 0.7,
            hub_click_prob: 0.12,
            noise_prob: 0.02,
            seed: 0x106,
        }
    }
}

impl LogConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        LogConfig {
            events: 20_000,
            seed,
            ..LogConfig::default()
        }
    }
}

/// Streaming generator of raw search events.
pub struct LogGenerator<'w> {
    world: &'w World,
    rng: StdRng,
    /// Domains ordered by descending popularity; Zipf ranks map onto this.
    domain_order: Vec<DomainId>,
    domain_zipf: Zipf,
    term_zipf_s: f64,
    url_zipf_s: f64,
    hub_click_prob: f64,
    noise_prob: f64,
    remaining: usize,
}

impl<'w> LogGenerator<'w> {
    /// Create a generator over `world` with the given configuration.
    pub fn new(world: &'w World, config: &LogConfig) -> Self {
        let mut domain_order: Vec<DomainId> = (0..world.num_domains() as DomainId).collect();
        domain_order.sort_by(|&a, &b| {
            world.domains[b as usize]
                .popularity
                .total_cmp(&world.domains[a as usize].popularity)
        });
        LogGenerator {
            world,
            rng: StdRng::seed_from_u64(config.seed),
            domain_zipf: Zipf::new(domain_order.len(), config.domain_zipf_s),
            domain_order,
            term_zipf_s: config.term_zipf_s,
            url_zipf_s: config.url_zipf_s,
            hub_click_prob: config.hub_click_prob,
            noise_prob: config.noise_prob,
            remaining: config.events,
        }
    }

    fn sample_event(&mut self) -> RawEvent {
        let rank = self.domain_zipf.sample(&mut self.rng);
        let domain = &self.world.domains[self.domain_order[rank] as usize];

        // Term within the domain, head-skewed.
        let term_rank = zipf_rank(domain.terms.len(), self.term_zipf_s, &mut self.rng);
        let term = domain.terms[term_rank];

        // Click target: noise, hub, or owned URL.
        let url = if self.rng.gen_bool(self.noise_prob) {
            self.rng.gen_range(0..self.world.urls.len()) as UrlId
        } else if !domain.hub_urls.is_empty() && self.rng.gen_bool(self.hub_click_prob) {
            domain.hub_urls[self.rng.gen_range(0..domain.hub_urls.len())]
        } else {
            let url_rank = zipf_rank(domain.urls.len(), self.url_zipf_s, &mut self.rng);
            domain.urls[url_rank]
        };
        RawEvent { term, url }
    }
}

/// Cheap inline Zipf over a small `n` — avoids building a table per domain.
fn zipf_rank(n: usize, s: f64, rng: &mut impl Rng) -> usize {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    // Inverse-CDF on the truncated zeta, computed incrementally. Domains
    // hold at most a few dozen terms, so the linear scan is cheap.
    let total: f64 = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).sum();
    let mut u = rng.gen::<f64>() * total;
    for r in 1..=n {
        u -= 1.0 / (r as f64).powf(s);
        if u <= 0.0 {
            return r - 1;
        }
    }
    n - 1
}

impl Iterator for LogGenerator<'_> {
    type Item = RawEvent;

    fn next(&mut self) -> Option<RawEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.sample_event())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for LogGenerator<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn world() -> World {
        World::generate(&WorldConfig::tiny(1))
    }

    #[test]
    fn emits_exactly_the_requested_events() {
        let w = world();
        let config = LogConfig::tiny(2);
        let events: Vec<RawEvent> = LogGenerator::new(&w, &config).collect();
        assert_eq!(events.len(), config.events);
    }

    #[test]
    fn deterministic_in_seed() {
        let w = world();
        let a: Vec<RawEvent> = LogGenerator::new(&w, &LogConfig::tiny(3)).take(100).collect();
        let b: Vec<RawEvent> = LogGenerator::new(&w, &LogConfig::tiny(3)).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<RawEvent> = LogGenerator::new(&w, &LogConfig::tiny(4)).take(100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn same_domain_terms_click_same_urls() {
        let w = world();
        let niners = w.domain_by_label("49ers").unwrap();
        let config = LogConfig {
            events: 100_000,
            noise_prob: 0.0,
            hub_click_prob: 0.0,
            ..LogConfig::tiny(5)
        };
        let domain_urls: std::collections::HashSet<_> = niners.urls.iter().copied().collect();
        for ev in LogGenerator::new(&w, &config) {
            if niners.terms.contains(&ev.term)
                && w.terms[ev.term as usize].domains == vec![niners.id]
            {
                assert!(
                    domain_urls.contains(&ev.url),
                    "unambiguous 49ers term clicked a foreign URL"
                );
            }
        }
    }

    #[test]
    fn popularity_is_head_heavy() {
        let w = world();
        let config = LogConfig::tiny(6);
        let mut counts = vec![0u64; w.terms.len()];
        for ev in LogGenerator::new(&w, &config) {
            counts[ev.term as usize] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let top10: u64 = sorted.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.2,
            "expected a heavy head, got {top10}/{total}"
        );
    }
}
