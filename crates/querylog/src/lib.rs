//! # esharp-querylog
//!
//! Search-query-log substrate for the e# reproduction (EDBT 2016).
//!
//! The paper builds its collection of expertise domains from one month of
//! commercial search-engine logs (998 GB). That data is proprietary, so
//! this crate provides the synthetic equivalent (see DESIGN.md §1):
//!
//! * [`World`] — ground-truth expertise domains: topics with canonical
//!   terms, minted surface variants (`#sanfrancisco`, `sf`, typos…), URL
//!   pools, category hub URLs and Zipf-ish popularity. Includes the
//!   paper's running examples (the 49ers cluster, `dow futures`,
//!   `diabetes`, the ambiguous `football`, …).
//! * [`LogGenerator`] — a deterministic stream of raw `(query, click)`
//!   events sampled from the world.
//! * [`AggregatedLog`] — the `(query, url, clicks)` aggregation plus the
//!   paper's ≥50-observations support filter (§4.1).
//!
//! ```
//! use esharp_querylog::{World, WorldConfig, LogGenerator, LogConfig, AggregatedLog};
//!
//! let world = World::generate(&WorldConfig::tiny(7));
//! let events = LogGenerator::new(&world, &LogConfig::tiny(7));
//! let log = AggregatedLog::from_events(events, world.terms.len());
//! let (filtered, _dropped) = log.filter_min_support(5);
//! assert!(filtered.num_terms() > 0);
//! ```

#![warn(missing_docs)]

mod aggregate;
pub mod dist;
mod loggen;
pub mod variants;
mod world;

pub use aggregate::{AggregatedLog, ClickRecord};
pub use loggen::{LogConfig, LogGenerator, RawEvent};
pub use world::{
    Category, Domain, DomainId, TermId, TermInfo, UrlId, World, WorldConfig, ALL_CATEGORIES,
};
