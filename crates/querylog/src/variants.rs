//! Surface-form variant generation.
//!
//! §4.1 of the paper: "the same term can appear with dozens, sometimes
//! hundreds of variants (e.g., san francisco, #sanfrancisco, sf, …). We
//! leave these queries unchanged (no stemming, or correcting), in order to
//! capture as many different cases as possible." The synthetic world
//! therefore mints realistic variants for its canonical terms, and the
//! pipeline is expected to cluster them back together via click behaviour
//! — never via string similarity.

use rand::Rng;

/// The kinds of variants the generator can mint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantKind {
    /// `san francisco` → `#sanfrancisco`.
    Hashtag,
    /// `san francisco` → `sf` (initials).
    Initials,
    /// `san francisco` → `sanfrancisco` (squashed).
    Squash,
    /// One dropped character: `francisco` → `fancisco`.
    DropChar,
    /// Two adjacent characters swapped: `football` → `footblal`.
    SwapChars,
    /// Truncation: `football` → `footbal`.
    Truncate,
}

/// All kinds, in the order the generator cycles through them.
pub const ALL_KINDS: [VariantKind; 6] = [
    VariantKind::Hashtag,
    VariantKind::Initials,
    VariantKind::Squash,
    VariantKind::DropChar,
    VariantKind::SwapChars,
    VariantKind::Truncate,
];

/// Produce one variant of `term`, or `None` when the kind does not apply
/// (e.g. initials of a single short word).
pub fn variant(term: &str, kind: VariantKind, rng: &mut impl Rng) -> Option<String> {
    let term = term.trim();
    if term.is_empty() {
        return None;
    }
    match kind {
        VariantKind::Hashtag => Some(format!("#{}", term.replace(' ', ""))),
        VariantKind::Initials => {
            let words: Vec<&str> = term.split_whitespace().collect();
            if words.len() < 2 {
                return None;
            }
            Some(
                words
                    .iter()
                    .filter_map(|w| w.chars().next())
                    .collect::<String>(),
            )
        }
        VariantKind::Squash => {
            if !term.contains(' ') {
                return None;
            }
            Some(term.replace(' ', ""))
        }
        VariantKind::DropChar => {
            let chars: Vec<char> = term.chars().collect();
            if chars.len() < 4 {
                return None;
            }
            // Never drop the first character: real typos rarely do, and it
            // keeps variants recognizable in the demo output.
            let idx = rng.gen_range(1..chars.len());
            let mut out: String = chars[..idx].iter().collect();
            out.extend(&chars[idx + 1..]);
            Some(out)
        }
        VariantKind::SwapChars => {
            let mut chars: Vec<char> = term.chars().collect();
            if chars.len() < 4 {
                return None;
            }
            let idx = rng.gen_range(1..chars.len() - 1);
            chars.swap(idx, idx + 1);
            Some(chars.into_iter().collect())
        }
        VariantKind::Truncate => {
            let chars: Vec<char> = term.chars().collect();
            if chars.len() < 5 {
                return None;
            }
            Some(chars[..chars.len() - 1].iter().collect())
        }
    }
}

/// Mint up to `count` distinct variants of `term` (excluding the term
/// itself), cycling through the variant kinds.
pub fn mint_variants(term: &str, count: usize, rng: &mut impl Rng) -> Vec<String> {
    let term = term.trim(); // variant() trims too; compare like with like
    let mut out = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 8 {
        let kind = ALL_KINDS[attempts % ALL_KINDS.len()];
        attempts += 1;
        if let Some(v) = variant(term, kind, rng) {
            if v != term && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hashtag_and_squash() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            variant("san francisco", VariantKind::Hashtag, &mut rng),
            Some("#sanfrancisco".into())
        );
        assert_eq!(
            variant("san francisco", VariantKind::Squash, &mut rng),
            Some("sanfrancisco".into())
        );
        assert_eq!(variant("nfl", VariantKind::Squash, &mut rng), None);
    }

    #[test]
    fn initials_need_multiple_words() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            variant("san francisco", VariantKind::Initials, &mut rng),
            Some("sf".into())
        );
        assert_eq!(variant("football", VariantKind::Initials, &mut rng), None);
    }

    #[test]
    fn typo_variants_differ_but_preserve_first_char() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let v = variant("football", VariantKind::DropChar, &mut rng).unwrap();
            assert_ne!(v, "football");
            assert!(v.starts_with('f'));
            assert_eq!(v.chars().count(), 7);
        }
    }

    #[test]
    fn mint_produces_distinct_variants() {
        let mut rng = StdRng::seed_from_u64(3);
        let vs = mint_variants("baltimore ravens", 5, &mut rng);
        assert!(vs.len() >= 4, "got {vs:?}");
        let mut dedup = vs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), vs.len());
        assert!(!vs.contains(&"baltimore ravens".to_string()));
    }

    #[test]
    fn short_terms_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        for kind in ALL_KINDS {
            let _ = variant("ab", kind, &mut rng);
            let _ = variant("", kind, &mut rng);
        }
    }
}
