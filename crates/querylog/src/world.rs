//! The synthetic *world*: ground-truth expertise domains.
//!
//! This is the substitution for the paper's proprietary data (DESIGN.md §1).
//! A world holds a set of *domains* — topics of expertise, each with a pool
//! of query terms (canonical forms plus minted surface variants) and a pool
//! of URLs. The search-log generator ([`crate::loggen`]) and the microblog
//! corpus generator (`esharp-microblog`) both sample from the same world,
//! which is what lets the evaluation score results against ground truth.
//!
//! Besides randomly generated domains, a world can include hand-authored
//! *showcase* domains reproducing the paper's running examples (the 49ers
//! cluster of Figure 7, and the query subjects of Tables 2–7), including
//! the `football` ambiguity from the introduction.

use crate::variants::mint_variants;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a domain inside a [`World`].
pub type DomainId = u32;
/// Identifier of an interned term.
pub type TermId = u32;
/// Identifier of an interned URL.
pub type UrlId = u32;

/// The six query-set categories of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Sports topics (49ers, nascar, …).
    Sports,
    /// Consumer electronics (bluetooth, xbox, …).
    Electronics,
    /// Finance (nasdaq, dow futures, …).
    Finance,
    /// Health (diabetes, asthma, …).
    Health,
    /// Encyclopedic topics (world war II, beyonce, …).
    Wikipedia,
    /// Everything else (the "Top 250" set samples across all categories
    /// including this one).
    General,
}

/// All categories, in Table 1 order.
pub const ALL_CATEGORIES: [Category; 6] = [
    Category::Sports,
    Category::Electronics,
    Category::Finance,
    Category::Health,
    Category::Wikipedia,
    Category::General,
];

impl Category {
    /// Display name matching Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Sports => "Sports",
            Category::Electronics => "Electronics",
            Category::Finance => "Finance",
            Category::Health => "Health",
            Category::Wikipedia => "Wikipedia",
            Category::General => "General",
        }
    }
}

/// An interned query term.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TermInfo {
    /// Surface form (already lower-case).
    pub text: String,
    /// Domains this term belongs to (more than one ⇒ ambiguous, like
    /// `football` meaning different sports on different continents).
    pub domains: Vec<DomainId>,
}

/// A ground-truth expertise domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Domain {
    /// Identifier (index into [`World::domains`]).
    pub id: DomainId,
    /// Human-readable label — the canonical head term.
    pub label: String,
    /// Category for query-set construction.
    pub category: Category,
    /// Member terms; index 0 is the head term.
    pub terms: Vec<TermId>,
    /// Parallel to `terms`: true when the term is a minted surface
    /// variant (hashtag/initials/typo). Variants are *searched* but
    /// rarely *posted* — the vocabulary gap behind the paper's recall
    /// problem.
    pub variant_flags: Vec<bool>,
    /// URLs owned by this domain (clicks concentrate here).
    pub urls: Vec<UrlId>,
    /// Category hub URLs shared with sibling domains (espn.com style);
    /// clicked with lower probability, they create the *weak* inter-domain
    /// edges behind Figure 7's "closest communities".
    pub hub_urls: Vec<UrlId>,
    /// Relative popularity weight (already normalized across the world).
    pub popularity: f64,
}

impl Domain {
    /// Indices into `terms` of the canonical (non-variant) terms.
    pub fn canonical_terms(&self) -> Vec<TermId> {
        self.terms
            .iter()
            .zip(&self.variant_flags)
            .filter(|&(_, &is_variant)| !is_variant)
            .map(|(&t, _)| t)
            .collect()
    }

    /// The minted surface-variant terms.
    pub fn variant_terms(&self) -> Vec<TermId> {
        self.terms
            .iter()
            .zip(&self.variant_flags)
            .filter(|&(_, &is_variant)| is_variant)
            .map(|(&t, _)| t)
            .collect()
    }
}

/// Configuration for world generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Randomly generated domains per category.
    pub domains_per_category: usize,
    /// Inclusive range of canonical terms per domain.
    pub concepts_per_domain: (usize, usize),
    /// Inclusive range of minted variants per canonical term.
    pub variants_per_concept: (usize, usize),
    /// Inclusive range of URLs per domain.
    pub urls_per_domain: (usize, usize),
    /// Hub URLs per category.
    pub hub_urls_per_category: usize,
    /// Probability that a generated canonical term is shared with a second
    /// domain of a *different* category (ambiguity).
    pub ambiguity_prob: f64,
    /// Include the hand-authored showcase domains from the paper.
    pub include_showcase: bool,
    /// RNG seed; everything downstream is deterministic in this.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            domains_per_category: 40,
            concepts_per_domain: (2, 6),
            variants_per_concept: (0, 3),
            urls_per_domain: (3, 8),
            hub_urls_per_category: 4,
            ambiguity_prob: 0.02,
            include_showcase: true,
            seed: 0xE5A4,
        }
    }
}

impl WorldConfig {
    /// A tiny world for unit tests (fast, still exercises every feature).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            domains_per_category: 4,
            concepts_per_domain: (2, 4),
            variants_per_concept: (0, 2),
            urls_per_domain: (2, 4),
            hub_urls_per_category: 2,
            ambiguity_prob: 0.05,
            include_showcase: true,
            seed,
        }
    }
}

/// The generated ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// All domains.
    pub domains: Vec<Domain>,
    /// Interned terms.
    pub terms: Vec<TermInfo>,
    /// Interned URLs.
    pub urls: Vec<String>,
    /// Seed the world was generated from.
    pub seed: u64,
}

impl World {
    /// Generate a world from a configuration.
    pub fn generate(config: &WorldConfig) -> World {
        Builder::new(config).build()
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The text of a term id.
    pub fn term_text(&self, id: TermId) -> &str {
        &self.terms[id as usize].text
    }

    /// The text of a URL id.
    pub fn url_text(&self, id: UrlId) -> &str {
        &self.urls[id as usize]
    }

    /// Look up a term id by its exact lower-case text.
    pub fn term_id(&self, text: &str) -> Option<TermId> {
        // Linear scan is fine: worlds hold tens of thousands of terms and
        // this is a test/demo convenience, not a hot path.
        self.terms
            .iter()
            .position(|t| t.text == text)
            .map(|i| i as TermId)
    }

    /// The domain a term belongs to (first, when ambiguous).
    pub fn primary_domain_of(&self, term: TermId) -> Option<DomainId> {
        self.terms[term as usize].domains.first().copied()
    }

    /// Ground-truth communities as term-text sets, for clustering quality
    /// metrics (NMI/ARI) — something the paper could not compute on
    /// proprietary data.
    pub fn ground_truth_communities(&self) -> Vec<Vec<String>> {
        self.domains
            .iter()
            .map(|d| {
                d.terms
                    .iter()
                    .map(|&t| self.term_text(t).to_string())
                    .collect()
            })
            .collect()
    }

    /// Domains of a category, most popular first.
    pub fn domains_in_category(&self, category: Category) -> Vec<&Domain> {
        let mut out: Vec<&Domain> = self
            .domains
            .iter()
            .filter(|d| d.category == category)
            .collect();
        out.sort_by(|a, b| b.popularity.total_cmp(&a.popularity));
        out
    }

    /// The showcase domain labelled `label`, if the world includes it.
    pub fn domain_by_label(&self, label: &str) -> Option<&Domain> {
        self.domains.iter().find(|d| d.label == label)
    }

    /// Persist the world (ground truth) to a JSON file, so an experiment
    /// can be re-scored later without regenerating it.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a world persisted by [`World::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<World> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

// ------------------------------------------------------------------------
// Generation internals.

struct Builder<'a> {
    config: &'a WorldConfig,
    rng: StdRng,
    domains: Vec<Domain>,
    terms: Vec<TermInfo>,
    term_index: HashMap<String, TermId>,
    urls: Vec<String>,
    url_index: HashMap<String, UrlId>,
    /// Number of hand-authored showcase domains at the front of `domains`.
    showcase_count: usize,
}

/// Syllables used to mint pseudo-words. Chosen to be pronounceable so the
/// demo output reads naturally.
const SYLLABLES: [&str; 24] = [
    "ba", "ce", "di", "fo", "ga", "hu", "ji", "ka", "lo", "mi", "na", "pe", "qu", "ra", "so",
    "ta", "ve", "wi", "xo", "yu", "za", "bri", "sto", "cla",
];

impl<'a> Builder<'a> {
    fn new(config: &'a WorldConfig) -> Self {
        Builder {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            domains: Vec::new(),
            terms: Vec::new(),
            term_index: HashMap::new(),
            urls: Vec::new(),
            url_index: HashMap::new(),
            showcase_count: 0,
        }
    }

    fn build(mut self) -> World {
        // Hub URLs per category first, so random domains can reference them.
        let mut hubs: HashMap<Category, Vec<UrlId>> = HashMap::new();
        for category in ALL_CATEGORIES {
            let mut ids = Vec::new();
            for i in 0..self.config.hub_urls_per_category {
                let url = format!("{}-hub{}.com", category.name().to_lowercase(), i);
                ids.push(self.intern_url(&url));
            }
            hubs.insert(category, ids);
        }

        if self.config.include_showcase {
            self.add_showcase_domains(&hubs);
            self.showcase_count = self.domains.len();
        }

        for category in ALL_CATEGORIES {
            for _ in 0..self.config.domains_per_category {
                self.add_random_domain(category, &hubs);
            }
        }

        // Normalize popularity weights to sum to 1.
        let total: f64 = self.domains.iter().map(|d| d.popularity).sum();
        for d in &mut self.domains {
            d.popularity /= total;
        }

        World {
            domains: self.domains,
            terms: self.terms,
            urls: self.urls,
            seed: self.config.seed,
        }
    }

    fn intern_url(&mut self, url: &str) -> UrlId {
        if let Some(&id) = self.url_index.get(url) {
            return id;
        }
        let id = self.urls.len() as UrlId;
        self.urls.push(url.to_string());
        self.url_index.insert(url.to_string(), id);
        id
    }

    /// Intern a term and attach it to a domain.
    fn intern_term(&mut self, text: &str, domain: DomainId) -> TermId {
        let text = text.to_lowercase();
        if let Some(&id) = self.term_index.get(&text) {
            let info = &mut self.terms[id as usize];
            if !info.domains.contains(&domain) {
                info.domains.push(domain);
            }
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(TermInfo {
            text: text.clone(),
            domains: vec![domain],
        });
        self.term_index.insert(text, id);
        id
    }

    fn pseudo_word(&mut self) -> String {
        let syllables = self.rng.gen_range(2..=3);
        (0..syllables)
            .map(|_| SYLLABLES[self.rng.gen_range(0..SYLLABLES.len())])
            .collect()
    }

    fn add_random_domain(&mut self, category: Category, hubs: &HashMap<Category, Vec<UrlId>>) {
        let id = self.domains.len() as DomainId;
        let head = {
            // Head concept: one or two pseudo-words.
            if self.rng.gen_bool(0.4) {
                format!("{} {}", self.pseudo_word(), self.pseudo_word())
            } else {
                self.pseudo_word()
            }
        };

        let (lo, hi) = self.config.concepts_per_domain;
        let concepts = self.rng.gen_range(lo..=hi);
        let mut concept_texts = vec![head.clone()];
        for _ in 1..concepts {
            // Related concept: shares the head word half the time
            // ("49ers" → "49ers draft"), a fresh word otherwise (player
            // names etc.).
            let text = if self.rng.gen_bool(0.5) {
                format!("{} {}", head, self.pseudo_word())
            } else {
                format!("{} {}", self.pseudo_word(), self.pseudo_word())
            };
            concept_texts.push(text);
        }

        // Ambiguity: occasionally share a concept with an existing domain
        // of another category (the "football" effect). Showcase domains
        // are excluded — they already carry their own hand-authored
        // ambiguity (`football`), and keeping them clean makes the
        // Figure 7 and Tables 2–7 output legible.
        if self.rng.gen_bool(self.config.ambiguity_prob) && self.domains.len() > self.showcase_count
        {
            let other = self
                .rng
                .gen_range(self.showcase_count..self.domains.len());
            if self.domains[other].category != category {
                if let Some(&t) = self.domains[other].terms.first() {
                    let text = self.terms[t as usize].text.clone();
                    concept_texts.push(text);
                }
            }
        }

        // Mint variants and intern everything.
        let (vlo, vhi) = self.config.variants_per_concept;
        let mut term_ids = Vec::new();
        let mut variant_flags = Vec::new();
        for concept in &concept_texts {
            term_ids.push(self.intern_term(concept, id));
            variant_flags.push(false);
            let n = self.rng.gen_range(vlo..=vhi);
            let minted = mint_variants(concept, n, &mut self.rng);
            for v in minted {
                term_ids.push(self.intern_term(&v, id));
                variant_flags.push(true);
            }
        }
        // Dedup while keeping flags aligned (duplicates are rare: an
        // ambiguous shared concept may repeat).
        let mut seen = std::collections::HashSet::new();
        let mut deduped_terms = Vec::with_capacity(term_ids.len());
        let mut deduped_flags = Vec::with_capacity(term_ids.len());
        for (t, f) in term_ids.into_iter().zip(variant_flags) {
            if seen.insert(t) {
                deduped_terms.push(t);
                deduped_flags.push(f);
            }
        }
        let term_ids = deduped_terms;
        let variant_flags = deduped_flags;

        // URLs.
        let (ulo, uhi) = self.config.urls_per_domain;
        let n_urls = self.rng.gen_range(ulo..=uhi);
        let slug = head.replace(' ', "");
        let urls: Vec<UrlId> = (0..n_urls)
            .map(|i| {
                let url = format!("{slug}-{i}.com");
                self.intern_url(&url)
            })
            .collect();

        // Popularity: log-normal weight ⇒ Zipf-ish ranking after sorting.
        let popularity = crate::dist::LogNormal::new(0.0, 1.4).sample(&mut self.rng);

        self.domains.push(Domain {
            id,
            label: head,
            category,
            terms: term_ids,
            variant_flags,
            urls,
            hub_urls: hubs[&category].clone(),
            popularity,
        });
    }

    /// Hand-authored domains reproducing the paper's running examples.
    /// Each entry: (label, category, canonical terms, surface variants,
    /// urls, popularity weight). Variants are searched but rarely posted.
    fn add_showcase_domains(&mut self, hubs: &HashMap<Category, Vec<UrlId>>) {
        type Entry = (
            &'static str,
            Category,
            &'static [&'static str],
            &'static [&'static str],
            &'static [&'static str],
            f64,
        );
        let showcase: [Entry; 11] = [
            (
                "49ers",
                Category::Sports,
                &["49ers", "49ers draft", "bruce ellington", "vernon davis", "49ers news"],
                &["niners", "sf 49ers", "#49ers"],
                &["49ers.com", "ninersnation.com", "49ers-blog.com", "ninersdigest.com", "49ers-forum.com"],
                6.0,
            ),
            (
                "nfl",
                Category::Sports,
                &["nfl", "football", "nfl draft", "nfl scores"],
                &["american football"],
                &["nfl.com", "nfl-news.com", "gridiron-today.com", "nfl-rumors.com"],
                8.0,
            ),
            (
                "soccer",
                Category::Sports,
                // The intro's ambiguity: `football` names a different sport
                // in Europe — shared term, different domain.
                &["soccer", "football", "premier league"],
                &["fotbal", "foot"],
                &["uefa.com", "premierleague.com", "worldfootball-daily.com", "goalwire.com"],
                5.0,
            ),
            (
                "san francisco",
                Category::Wikipedia,
                &["san francisco", "san francisco tourism", "golden gate"],
                &["#sanfrancisco", "sf"],
                &["sftravel.com", "sanfrancisco.gov", "sf-city-guide.com", "goldengatepark.org"],
                4.0,
            ),
            (
                "sf gate",
                Category::General,
                &["sf gate", "sf gate sports"],
                &["sfgate"],
                &["sfgate.com", "sfgate-archive.com", "sfgate-blogs.com"],
                2.0,
            ),
            (
                "colin kaepernick",
                Category::Sports,
                &["colin kaepernick"],
                &["kaepernick", "kaep"],
                &["kaepernick7.com", "kaep-highlights.com", "qb-profiles.com"],
                3.0,
            ),
            (
                "bluetooth speakers",
                Category::Electronics,
                &["bluetooth speakers", "bluetooth", "portable speaker"],
                &["wireless speakers", "bluetooth speaker reviews"],
                &["speakerhub.com", "audioreview.com"],
                5.0,
            ),
            (
                "dow futures",
                Category::Finance,
                &["dow futures", "dow jones", "dow"],
                &["djia futures", "stock futures"],
                &["markets-live.com", "futures-watch.com"],
                5.0,
            ),
            (
                "diabetes",
                Category::Health,
                &["diabetes", "type 1 diabetes", "diabetes symptoms", "insulin"],
                &["t1d", "#stopdiabetes"],
                &["diabetes.org", "diabetesnews.com"],
                5.0,
            ),
            (
                "world war i",
                Category::Wikipedia,
                &["world war i", "first world war"],
                &["ww1", "world war 1", "1914 1918"],
                &["ww1-history.org", "greatwar.co.uk"],
                3.0,
            ),
            (
                "sarah palin",
                Category::General,
                &["sarah palin", "sarah palin news"],
                &["palin", "#palin"],
                &["palin-news.com"],
                4.0,
            ),
        ];

        for (label, category, canonical, variants, urls, weight) in showcase {
            let id = self.domains.len() as DomainId;
            let mut term_ids = Vec::new();
            let mut variant_flags = Vec::new();
            for t in canonical {
                term_ids.push(self.intern_term(t, id));
                variant_flags.push(false);
            }
            for t in variants {
                term_ids.push(self.intern_term(t, id));
                variant_flags.push(true);
            }
            let url_ids: Vec<UrlId> = urls.iter().map(|u| self.intern_url(u)).collect();
            self.domains.push(Domain {
                id,
                label: label.to_string(),
                category,
                terms: term_ids,
                variant_flags,
                urls: url_ids,
                hub_urls: hubs[&category].clone(),
                popularity: weight,
            });
        }

        // Weak cross-domain URL sharing between the related showcase
        // topics, mirroring reality (espn.com serves both the 49ers and
        // the NFL; SF Gate covers the city and the team). These shared
        // tail URLs produce the weak inter-community edges Figure 7
        // visualizes as "closest communities".
        let shared: [(&str, &[&str]); 3] = [
            ("bayarea-news.com", &["49ers", "san francisco", "sf gate"]),
            ("pro-football-report.com", &["nfl", "colin kaepernick", "49ers"]),
            ("worldsport-live.com", &["nfl", "soccer"]),
        ];
        for (url, labels) in shared {
            let url_id = self.intern_url(url);
            for label in labels {
                if let Some(domain) = self.domains.iter_mut().find(|d| d.label == *label) {
                    domain.urls.push(url_id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_deterministic_in_seed() {
        let a = World::generate(&WorldConfig::tiny(9));
        let b = World::generate(&WorldConfig::tiny(9));
        assert_eq!(a.urls, b.urls);
        assert_eq!(a.terms.len(), b.terms.len());
        assert_eq!(a.domains.len(), b.domains.len());
        let c = World::generate(&WorldConfig::tiny(10));
        assert_ne!(
            a.terms.iter().map(|t| &t.text).collect::<Vec<_>>(),
            c.terms.iter().map(|t| &t.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn showcase_domains_present_with_paper_terms() {
        let w = World::generate(&WorldConfig::tiny(1));
        let niners = w.domain_by_label("49ers").expect("49ers domain");
        let texts: Vec<&str> = niners.terms.iter().map(|&t| w.term_text(t)).collect();
        assert!(texts.contains(&"niners"));
        assert!(texts.contains(&"vernon davis"));
        assert!(w.domain_by_label("dow futures").is_some());
        assert!(w.domain_by_label("sarah palin").is_some());
    }

    #[test]
    fn football_is_ambiguous_between_nfl_and_soccer() {
        let w = World::generate(&WorldConfig::tiny(1));
        let football = w.term_id("football").expect("football term");
        let domains = &w.terms[football as usize].domains;
        assert_eq!(domains.len(), 2, "football should belong to two domains");
        let labels: Vec<&str> = domains
            .iter()
            .map(|&d| w.domains[d as usize].label.as_str())
            .collect();
        assert!(labels.contains(&"nfl"));
        assert!(labels.contains(&"soccer"));
    }

    #[test]
    fn popularity_normalized() {
        let w = World::generate(&WorldConfig::tiny(3));
        let total: f64 = w.domains.iter().map(|d| d.popularity).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn terms_are_lowercase_and_domains_consistent() {
        let w = World::generate(&WorldConfig::tiny(5));
        for t in &w.terms {
            assert_eq!(t.text, t.text.to_lowercase());
            assert!(!t.domains.is_empty());
        }
        for d in &w.domains {
            assert!(!d.terms.is_empty());
            assert!(!d.urls.is_empty());
            for &t in &d.terms {
                assert!(
                    w.terms[t as usize].domains.contains(&d.id),
                    "term {} missing backlink to domain {}",
                    w.term_text(t),
                    d.label
                );
            }
        }
    }

    #[test]
    fn save_load_round_trip() {
        let w = World::generate(&WorldConfig::tiny(77));
        let dir = std::env::temp_dir().join("esharp_world_io_test");
        let path = dir.join("world.json");
        w.save(&path).unwrap();
        let back = World::load(&path).unwrap();
        assert_eq!(back.domains.len(), w.domains.len());
        assert_eq!(back.urls, w.urls);
        assert_eq!(back.term_id("49ers"), w.term_id("49ers"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn categories_all_populated() {
        let w = World::generate(&WorldConfig::tiny(2));
        for c in ALL_CATEGORIES {
            assert!(
                !w.domains_in_category(c).is_empty(),
                "category {c:?} empty"
            );
        }
    }
}
