//! Property-based tests of the distribution samplers, variant minting and
//! log aggregation.

use esharp_querylog::dist::{LogNormal, Zipf};
use esharp_querylog::variants::{mint_variants, variant, ALL_KINDS};
use esharp_querylog::{AggregatedLog, RawEvent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..200, s in 0.1f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // PMF is non-increasing in rank.
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range(n in 1usize..50, s in 0.1f64..3.0, seed in 0u64..1000) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn lognormal_is_positive(mu in -2.0f64..4.0, sigma in 0.1f64..2.0, seed in 0u64..1000) {
        let ln = LogNormal::new(mu, sigma);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = ln.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn variants_never_panic_and_differ(term in "[a-z0-9 ]{0,24}", seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in ALL_KINDS {
            if let Some(v) = variant(&term, kind, &mut rng) {
                prop_assert!(!v.is_empty());
            }
        }
        let minted = mint_variants(&term, 4, &mut rng);
        let mut dedup = minted.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), minted.len(), "duplicate variants");
        prop_assert!(!minted.iter().any(|v| *v == term.trim()));
    }

    #[test]
    fn aggregation_conserves_events(
        events in prop::collection::vec((0u32..10, 0u32..10), 0..200),
        min_support in 0u64..20,
    ) {
        let raw: Vec<RawEvent> = events
            .iter()
            .map(|&(term, url)| RawEvent { term, url })
            .collect();
        let log = AggregatedLog::from_events(raw.iter().copied(), 10);
        // Total clicks equal raw event count.
        let total: u64 = log.records.iter().map(|r| r.clicks).sum();
        prop_assert_eq!(total, raw.len() as u64);
        prop_assert_eq!(log.term_totals.iter().sum::<u64>(), raw.len() as u64);
        // Records are sorted and unique on (term, url).
        for pair in log.records.windows(2) {
            prop_assert!((pair[0].term, pair[0].url) < (pair[1].term, pair[1].url));
        }
        // Filtering keeps exactly the qualifying terms' records.
        let (filtered, dropped) = log.filter_min_support(min_support);
        for r in &filtered.records {
            prop_assert!(log.term_totals[r.term as usize] >= min_support);
        }
        let kept = filtered.num_terms();
        prop_assert_eq!(kept + dropped, log.num_terms());
    }
}
