//! Tier-1 out-of-core smoke: the clustering SQL over a synthetic
//! multigraph whose paged table is several times larger than the buffer
//! pool must terminate and be **bit-identical** to the in-memory run.
//!
//! This is the end-to-end acceptance check for the paged storage +
//! planner stack: a 4 MiB pool (the tier-1 configuration) against a
//! ~16 MiB heap file, so the pool holds under a quarter of the input and
//! eviction/writeback is continuously exercised while the SQL loop runs.
//!
//! The graph is a ring of 6-cliques: communities the clustering recovers
//! in a couple of iterations, keeping the smoke fast in release mode
//! (`scripts/tier1.sh` runs it with `--release`).

use esharp_community::{cluster_sql, cluster_sql_report, SqlClusterConfig};
use esharp_graph::MultiGraph;

const POOL_BYTES: usize = 4 << 20;

/// `n` disjoint 6-cliques joined into a ring by single bridge edges.
fn ring_of_cliques(n: usize) -> MultiGraph {
    let size = 6u32;
    let mut edges = Vec::with_capacity(n * 16);
    for c in 0..n as u32 {
        let base = c * size;
        for i in 0..size {
            for j in i + 1..size {
                edges.push((base + i, base + j, 1));
            }
        }
        let next = ((c + 1) % n as u32) * size;
        edges.push((base, next, 1));
    }
    MultiGraph::from_edges(n * size as usize, edges)
}

#[test]
fn clustering_sql_with_a_4mib_pool_is_bit_identical_to_in_memory() {
    // ~20k cliques → ~320k edges → ~640k table rows → a heap file a few
    // times the 4 MiB pool. Assert the ratio rather than trusting the
    // arithmetic.
    // Debug runs (plain `cargo test`) shrink both sides of the ratio so
    // the property — pool < table — still holds without the release-sized
    // table's debug-mode slowness.
    let (cliques, pool_bytes) = if cfg!(debug_assertions) {
        (2_000, 64 * 8192)
    } else {
        (20_000, POOL_BYTES)
    };
    let g = ring_of_cliques(cliques);

    let mem = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
    let (ooc, report) = cluster_sql_report(
        &g,
        &SqlClusterConfig {
            buffer_pool_bytes: Some(pool_bytes),
            ..Default::default()
        },
    )
    .unwrap();

    assert_eq!(mem.assignment, ooc.assignment, "assignments diverged");
    assert_eq!(mem.trace, ooc.trace, "convergence traces diverged");

    let pool = report.pool.expect("paged run must report pool stats");
    assert!(
        pool.misses > pool.capacity,
        "table never exceeded the pool: {} misses vs {} frames",
        pool.misses,
        pool.capacity
    );
    if !cfg!(debug_assertions) {
        // Release (tier-1) sizing: the heap file is over 4× the pool, so
        // even the first scan must miss more than 4 pool-fulls of pages
        // and evict continuously.
        assert!(
            pool.misses >= 4 * pool.capacity,
            "heap file was not >4× the pool: {} misses vs {} frames",
            pool.misses,
            pool.capacity
        );
        assert!(pool.evictions > 0, "larger-than-pool scan never evicted");
    }
}
