//! Property-based tests of the modularity math and the clustering
//! algorithms on random multigraphs.

use esharp_community::{
    ari, cluster_label_propagation, cluster_louvain, cluster_newman, cluster_parallel,
    cluster_sql, nmi, Assignment, LabelPropConfig, LouvainConfig, NewmanConfig, ParallelConfig,
    PartitionStats, SqlClusterConfig,
};
use esharp_graph::MultiGraph;
use proptest::prelude::*;

/// Random multigraph strategy: up to `n` nodes, random weighted edges.
fn arb_multigraph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = MultiGraph> {
    (2usize..=max_nodes).prop_flat_map(move |n| {
        prop::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..4), 0..max_edges)
            .prop_map(move |edges| MultiGraph::from_edges(n, edges))
    })
}

/// Random assignment over `n` nodes with up to `n` labels.
fn arb_assignment(n: usize) -> impl Strategy<Value = Assignment> {
    prop::collection::vec(0u32..n.max(1) as u32, n).prop_map(Assignment::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn whole_graph_modularity_is_zero(g in arb_multigraph(12, 40)) {
        let whole = Assignment::from_vec(vec![0; g.num_nodes()]);
        let stats = PartitionStats::compute(&g, &whole);
        prop_assert!(stats.total_modularity().abs() < 1e-9);
    }

    #[test]
    fn delta_mod_shortcut_equals_direct_difference(g in arb_multigraph(10, 30)) {
        // Pick two singleton communities and compare eq. 8 with the direct
        // TMod difference (eq. 7).
        let n = g.num_nodes();
        prop_assume!(n >= 2);
        let before = Assignment::singletons(n);
        let stats = PartitionStats::compute(&g, &before);
        let shortcut = stats.delta_mod(0, 1);
        let mut merged = before.clone();
        merged.set(1, 0);
        let direct = PartitionStats::compute(&g, &merged).total_modularity()
            - stats.total_modularity();
        prop_assert!((shortcut - direct).abs() < 1e-9, "{} vs {}", shortcut, direct);
    }

    #[test]
    fn normalized_modularity_is_bounded(g in arb_multigraph(12, 40), seed_parts in 1u32..5) {
        let a = Assignment::from_vec(
            (0..g.num_nodes() as u32).map(|v| v % seed_parts).collect(),
        );
        let q = PartitionStats::compute(&g, &a).normalized_modularity();
        prop_assert!((-1.0..=1.0).contains(&q), "Q = {}", q);
    }

    #[test]
    fn all_algorithms_produce_total_assignments(g in arb_multigraph(14, 50)) {
        let n = g.num_nodes();
        for assignment in [
            cluster_parallel(&g, &ParallelConfig::default()).assignment,
            cluster_newman(&g, &NewmanConfig::default()),
            cluster_louvain(&g, &LouvainConfig::default()),
            cluster_label_propagation(&g, &LabelPropConfig::default()),
        ] {
            prop_assert_eq!(assignment.len(), n);
            prop_assert!(assignment.num_communities() >= 1);
            prop_assert!(assignment.num_communities() <= n);
        }
    }

    #[test]
    fn greedy_algorithms_never_lose_to_singletons(g in arb_multigraph(14, 50)) {
        let singles = PartitionStats::compute(&g, &Assignment::singletons(g.num_nodes()))
            .total_modularity();
        for assignment in [
            cluster_parallel(&g, &ParallelConfig::default()).assignment,
            cluster_newman(&g, &NewmanConfig::default()),
            cluster_louvain(&g, &LouvainConfig::default()),
        ] {
            let q = PartitionStats::compute(&g, &assignment).total_modularity();
            prop_assert!(q >= singles - 1e-9, "ended below singletons: {} < {}", q, singles);
        }
    }

    #[test]
    fn sql_equals_native_on_random_graphs(g in arb_multigraph(10, 30)) {
        let native = cluster_parallel(&g, &ParallelConfig::default());
        let sql = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
        prop_assert_eq!(native.assignment, sql.assignment);
    }

    #[test]
    fn nmi_and_ari_are_symmetric_and_self_perfect(
        a in arb_assignment(10),
        b in arb_assignment(10),
    ) {
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((ari(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-9);
        prop_assert!((ari(&a, &b) - ari(&b, &a)).abs() < 1e-9);
        let v = nmi(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn canonicalize_preserves_partition(a in arb_assignment(12)) {
        let c = a.canonicalize();
        prop_assert!(a.same_partition(&c));
        prop_assert_eq!(a.num_communities(), c.num_communities());
        prop_assert_eq!(a.sizes(), c.sizes());
    }
}
