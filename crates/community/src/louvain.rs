//! Louvain community detection — one of the "different community detection
//! paradigms" the paper's conclusion names as future work; used here as an
//! ablation comparator for the 3-step algorithm.
//!
//! Standard two-phase scheme on the unit-edge multigraph: (1) local moving
//! — repeatedly move single nodes to the neighboring community with the
//! best modularity gain; (2) aggregation — contract communities into
//! super-nodes and recurse. Deterministic: nodes are visited in id order
//! and ties break toward the smaller community id.

use crate::assignment::Assignment;
use esharp_graph::MultiGraph;
use std::collections::HashMap;

/// Configuration of the Louvain loop.
#[derive(Debug, Clone)]
pub struct LouvainConfig {
    /// Cap on local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Cap on aggregation levels.
    pub max_levels: usize,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        LouvainConfig {
            max_sweeps: 20,
            max_levels: 10,
        }
    }
}

/// Run Louvain, returning the flat node → community assignment.
pub fn cluster_louvain(graph: &MultiGraph, config: &LouvainConfig) -> Assignment {
    let n = graph.num_nodes();
    if n == 0 {
        return Assignment::singletons(0);
    }
    // node_to_final[v] = community of v in the original graph.
    let mut node_to_final: Vec<u32> = (0..n as u32).collect();
    let mut level_graph = LevelGraph::from_multigraph(graph);

    for _ in 0..config.max_levels {
        let local = local_moving(&level_graph, config.max_sweeps);
        let distinct = {
            let mut c = local.clone();
            c.sort_unstable();
            c.dedup();
            c.len()
        };
        if distinct == level_graph.n {
            break; // No node moved: converged.
        }
        // Re-map the original nodes through this level's assignment.
        let (dense, k) = densify(&local);
        for final_c in node_to_final.iter_mut() {
            *final_c = dense[local[*final_c as usize] as usize];
        }
        level_graph = level_graph.aggregate(&local, &dense, k);
        if level_graph.n <= 1 {
            break;
        }
    }
    Assignment::from_vec(node_to_final)
}

/// Adjacency-list weighted graph used between levels.
struct LevelGraph {
    n: usize,
    /// adjacency[v] = (neighbor, weight); no self entries, self-loop weight
    /// tracked separately.
    adjacency: Vec<Vec<(u32, f64)>>,
    self_loops: Vec<f64>,
    degrees: Vec<f64>,
    total_weight: f64, // m (counting each edge once; self-loops count once)
}

impl LevelGraph {
    fn from_multigraph(graph: &MultiGraph) -> Self {
        let n = graph.num_nodes();
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b, k) in graph.edges() {
            adjacency[a as usize].push((b, k as f64));
            adjacency[b as usize].push((a, k as f64));
        }
        let degrees: Vec<f64> = graph.degrees().iter().map(|&d| d as f64).collect();
        LevelGraph {
            n,
            adjacency,
            self_loops: vec![0.0; n],
            degrees,
            total_weight: graph.total_edges() as f64,
        }
    }

    /// Contract by an assignment with `dense` relabeling into `k`
    /// super-nodes.
    fn aggregate(&self, local: &[u32], dense: &[u32], k: usize) -> LevelGraph {
        let mut self_loops = vec![0.0; k];
        let mut pair_weights: HashMap<(u32, u32), f64> = HashMap::new();
        for v in 0..self.n {
            let cv = dense[local[v] as usize];
            self_loops[cv as usize] += self.self_loops[v];
            for &(w, weight) in &self.adjacency[v] {
                if (w as usize) < v {
                    continue; // visit each undirected edge once
                }
                let cw = dense[local[w as usize] as usize];
                if cv == cw {
                    self_loops[cv as usize] += weight;
                } else {
                    *pair_weights.entry((cv.min(cw), cv.max(cw))).or_insert(0.0) += weight;
                }
            }
        }
        let mut adjacency = vec![Vec::new(); k];
        for (&(a, b), &w) in &pair_weights {
            adjacency[a as usize].push((b, w));
            adjacency[b as usize].push((a, w));
        }
        for adj in &mut adjacency {
            adj.sort_by_key(|&(n, _)| n);
        }
        let mut degrees = vec![0.0; k];
        for c in 0..k {
            degrees[c] = 2.0 * self_loops[c] + adjacency[c].iter().map(|&(_, w)| w).sum::<f64>();
        }
        LevelGraph {
            n: k,
            adjacency,
            self_loops,
            degrees,
            total_weight: self.total_weight,
        }
    }
}

/// Phase 1: greedy single-node moves until stable.
fn local_moving(graph: &LevelGraph, max_sweeps: usize) -> Vec<u32> {
    let n = graph.n;
    let m = graph.total_weight;
    let mut community: Vec<u32> = (0..n as u32).collect();
    // Sum of degrees per community.
    let mut community_degree: Vec<f64> = graph.degrees.clone();
    if m == 0.0 {
        return community;
    }

    for _ in 0..max_sweeps {
        let mut moved = false;
        for v in 0..n {
            let cv = community[v];
            let deg_v = graph.degrees[v];
            // Weights from v to each neighboring community.
            let mut to_comm: HashMap<u32, f64> = HashMap::new();
            for &(w, weight) in &graph.adjacency[v] {
                to_comm
                    .entry(community[w as usize])
                    .and_modify(|x| *x += weight)
                    .or_insert(weight);
            }
            let to_own = to_comm.get(&cv).copied().unwrap_or(0.0);
            // Gain of leaving cv then joining c: standard Louvain ΔQ
            // comparison; constant factors cancel, compare
            // k_{v,c} − deg_v·Σ_c / (2m).
            let base = to_own - deg_v * (community_degree[cv as usize] - deg_v) / (2.0 * m);
            let mut best_c = cv;
            let mut best_gain = 0.0;
            let mut candidates: Vec<(u32, f64)> = to_comm.into_iter().collect();
            candidates.sort_by_key(|&(c, _)| c); // determinism
            for (c, k_vc) in candidates {
                if c == cv {
                    continue;
                }
                let gain =
                    (k_vc - deg_v * community_degree[c as usize] / (2.0 * m)) - base;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            if best_c != cv {
                community_degree[cv as usize] -= deg_v;
                community_degree[best_c as usize] += deg_v;
                community[v] = best_c;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    community
}

/// Relabel arbitrary community ids to dense `0..k` (order of appearance);
/// returns the lookup table and `k`. Unused slots stay `u32::MAX` and must
/// never be read.
fn densify(assignment: &[u32]) -> (Vec<u32>, usize) {
    let max = assignment.iter().copied().max().unwrap_or(0) as usize;
    let mut dense = vec![u32::MAX; max + 1];
    let mut next = 0u32;
    for &c in assignment {
        if dense[c as usize] == u32::MAX {
            dense[c as usize] = next;
            next += 1;
        }
    }
    (dense, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::PartitionStats;

    fn ring_of_cliques(cliques: usize, size: usize) -> MultiGraph {
        let mut edges = Vec::new();
        for c in 0..cliques {
            let base = (c * size) as u32;
            for i in 0..size as u32 {
                for j in i + 1..size as u32 {
                    edges.push((base + i, base + j, 1));
                }
            }
            let next_base = (((c + 1) % cliques) * size) as u32;
            edges.push((base, next_base, 1));
        }
        MultiGraph::from_edges(cliques * size, edges)
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let g = ring_of_cliques(4, 5);
        let a = cluster_louvain(&g, &LouvainConfig::default());
        assert_eq!(a.num_communities(), 4, "got {:?}", a.as_slice());
        // Every clique is uniform.
        for c in 0..4u32 {
            let base = c * 5;
            for i in 1..5 {
                assert_eq!(a.community_of(base), a.community_of(base + i));
            }
        }
    }

    #[test]
    fn beats_or_matches_singletons() {
        let g = ring_of_cliques(3, 4);
        let a = cluster_louvain(&g, &LouvainConfig::default());
        let q = PartitionStats::compute(&g, &a).normalized_modularity();
        assert!(q > 0.3, "Q = {q}");
    }

    #[test]
    fn deterministic() {
        let g = ring_of_cliques(5, 4);
        let a = cluster_louvain(&g, &LouvainConfig::default());
        let b = cluster_louvain(&g, &LouvainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_graphs() {
        let empty = MultiGraph::from_edges(0, vec![]);
        assert!(cluster_louvain(&empty, &LouvainConfig::default()).is_empty());
        let isolated = MultiGraph::from_edges(3, vec![]);
        let a = cluster_louvain(&isolated, &LouvainConfig::default());
        assert_eq!(a.num_communities(), 3);
    }
}
