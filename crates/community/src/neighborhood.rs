//! Community neighborhoods — the data behind Figure 7 ("the community
//! which contains the term 49ers … along with its three closest
//! communities").

use crate::assignment::Assignment;
use esharp_graph::SimilarityGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One community with resolved member labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityView {
    /// Community id (internal label).
    pub id: u32,
    /// Member term texts, sorted.
    pub members: Vec<String>,
    /// Closeness to the seed community (sum of inter-community edge
    /// weights; the seed itself reports 0).
    pub closeness: f64,
}

/// The seed community of `term` plus its `k` closest communities by total
/// inter-community edge weight.
///
/// Returns `None` when the term is not a node of the graph (e.g. filtered
/// out by min-support).
pub fn neighborhood_of_term(
    graph: &SimilarityGraph,
    assignment: &Assignment,
    term: &str,
    k: usize,
) -> Option<(CommunityView, Vec<CommunityView>)> {
    let seed_node = graph.node_by_label(term)?;
    let seed_comm = assignment.community_of(seed_node);

    // Total inter-community weight from the seed community to each other
    // community.
    let mut closeness: HashMap<u32, f64> = HashMap::new();
    for edge in graph.edges() {
        let (ca, cb) = (
            assignment.community_of(edge.a),
            assignment.community_of(edge.b),
        );
        if ca == cb {
            continue;
        }
        if ca == seed_comm {
            *closeness.entry(cb).or_insert(0.0) += edge.weight;
        } else if cb == seed_comm {
            *closeness.entry(ca).or_insert(0.0) += edge.weight;
        }
    }

    let members = |community: u32| -> Vec<String> {
        let mut out: Vec<String> = (0..graph.num_nodes() as u32)
            .filter(|&v| assignment.community_of(v) == community)
            .map(|v| graph.label(v).to_string())
            .collect();
        out.sort();
        out
    };

    let seed_view = CommunityView {
        id: seed_comm,
        members: members(seed_comm),
        closeness: 0.0,
    };

    let mut ranked: Vec<(u32, f64)> = closeness.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let neighbors = ranked
        .into_iter()
        .take(k)
        .map(|(id, closeness)| CommunityView {
            id,
            members: members(id),
            closeness,
        })
        .collect();

    Some((seed_view, neighbors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_graph::Edge;
    use std::sync::Arc;

    fn graph() -> SimilarityGraph {
        // Three clusters: {a0,a1}, {b0,b1}, {c0}; a–b strongly linked,
        // a–c weakly.
        SimilarityGraph::new(
            vec![
                Arc::from("a0"),
                Arc::from("a1"),
                Arc::from("b0"),
                Arc::from("b1"),
                Arc::from("c0"),
            ],
            vec![
                Edge { a: 0, b: 1, weight: 0.9 },
                Edge { a: 2, b: 3, weight: 0.9 },
                Edge { a: 1, b: 2, weight: 0.5 },
                Edge { a: 0, b: 4, weight: 0.1 },
            ],
        )
    }

    fn assignment() -> Assignment {
        Assignment::from_vec(vec![0, 0, 1, 1, 2])
    }

    #[test]
    fn finds_seed_and_ranks_neighbors_by_weight() {
        let (seed, neighbors) =
            neighborhood_of_term(&graph(), &assignment(), "a0", 2).unwrap();
        assert_eq!(seed.members, vec!["a0", "a1"]);
        assert_eq!(neighbors.len(), 2);
        assert_eq!(neighbors[0].members, vec!["b0", "b1"]); // 0.5 beats 0.1
        assert!((neighbors[0].closeness - 0.5).abs() < 1e-12);
        assert_eq!(neighbors[1].members, vec!["c0"]);
    }

    #[test]
    fn missing_term_returns_none() {
        assert!(neighborhood_of_term(&graph(), &assignment(), "zzz", 3).is_none());
    }

    #[test]
    fn k_zero_returns_only_seed() {
        let (seed, neighbors) =
            neighborhood_of_term(&graph(), &assignment(), "b1", 0).unwrap();
        assert_eq!(seed.members, vec!["b0", "b1"]);
        assert!(neighbors.is_empty());
    }
}
