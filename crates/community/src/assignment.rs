//! Node → community assignments and derived views.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A partition of nodes into communities: `assignment[node] = community`.
///
/// Community ids are arbitrary `u32`s (the algorithms use node ids as
/// community representatives); [`Assignment::canonicalize`] relabels them
/// to `0..k` for comparisons.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    communities: Vec<u32>,
}

impl Assignment {
    /// Every node in its own community (the paper's initialization).
    pub fn singletons(num_nodes: usize) -> Self {
        Assignment {
            communities: (0..num_nodes as u32).collect(),
        }
    }

    /// From an explicit vector.
    pub fn from_vec(communities: Vec<u32>) -> Self {
        Assignment { communities }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.communities.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.communities.is_empty()
    }

    /// The community of one node.
    pub fn community_of(&self, node: u32) -> u32 {
        self.communities[node as usize]
    }

    /// Mutable access for algorithms.
    pub fn set(&mut self, node: u32, community: u32) {
        self.communities[node as usize] = community;
    }

    /// Raw slice view.
    pub fn as_slice(&self) -> &[u32] {
        &self.communities
    }

    /// Number of distinct communities.
    pub fn num_communities(&self) -> usize {
        let mut seen: Vec<u32> = self.communities.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Members of each community, keyed by community id, each sorted.
    pub fn groups(&self) -> HashMap<u32, Vec<u32>> {
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for (node, &c) in self.communities.iter().enumerate() {
            groups.entry(c).or_default().push(node as u32);
        }
        groups
    }

    /// Community sizes, descending.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.groups().values().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Relabel communities to dense ids `0..k` in order of first
    /// appearance, so two assignments that induce the same partition
    /// compare equal.
    pub fn canonicalize(&self) -> Assignment {
        let mut mapping: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        let communities = self
            .communities
            .iter()
            .map(|&c| {
                *mapping.entry(c).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        Assignment { communities }
    }

    /// True if both assignments induce the same partition (up to label
    /// renaming).
    pub fn same_partition(&self, other: &Assignment) -> bool {
        self.canonicalize() == other.canonicalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let a = Assignment::singletons(4);
        assert_eq!(a.num_communities(), 4);
        assert_eq!(a.community_of(2), 2);
    }

    #[test]
    fn groups_and_sizes() {
        let a = Assignment::from_vec(vec![5, 5, 9, 5]);
        let groups = a.groups();
        assert_eq!(groups[&5], vec![0, 1, 3]);
        assert_eq!(groups[&9], vec![2]);
        assert_eq!(a.sizes(), vec![3, 1]);
    }

    #[test]
    fn canonicalize_is_label_invariant() {
        let a = Assignment::from_vec(vec![7, 7, 3, 3, 7]);
        let b = Assignment::from_vec(vec![0, 0, 1, 1, 0]);
        assert!(a.same_partition(&b));
        let c = Assignment::from_vec(vec![0, 1, 1, 0, 0]);
        assert!(!a.same_partition(&c));
    }
}
