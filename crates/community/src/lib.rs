//! # esharp-community
//!
//! Community detection for e# (EDBT 2016, §4.2): modularity maximization
//! over the discretized term-similarity multigraph.
//!
//! Four algorithms over the same [`esharp_graph::MultiGraph`]:
//!
//! * [`cluster_parallel`] — the paper's contribution: the 3-step
//!   neighborhood-creation / separation / aggregation loop (§4.2.2,
//!   Figure 3), with a thread-parallel statistics pass.
//! * [`cluster_sql`] — the same loop expressed as the *actual Figure 4
//!   SQL*, parsed and executed by `esharp-relation` (with the `ModulGain`
//!   UDF and `argmax` aggregate). Produces bit-identical partitions to the
//!   native path.
//! * [`cluster_newman`] — Newman/CNM sequential greedy, the single-machine
//!   baseline of §4.2.1.
//! * [`cluster_louvain`] / [`cluster_label_propagation`] — the "other
//!   community detection paradigms" of the paper's future work, used as
//!   ablations.
//!
//! Plus the analysis tooling the evaluation needs: modularity math
//! (equations 3–9) in [`modularity`], the Figure 5 convergence trace, the
//! Figure 6 [`SizeHistogram`], Figure 7 [`neighborhood_of_term`], and
//! ground-truth quality metrics ([`nmi`], [`ari`]).

#![warn(missing_docs)]

mod assignment;
mod labelprop;
mod louvain;
pub mod metrics;
pub mod modularity;
mod neighborhood;
mod newman;
mod parallel;
mod sqlimpl;
mod stats;

pub use assignment::Assignment;
pub use labelprop::{cluster_label_propagation, LabelPropConfig};
pub use louvain::{cluster_louvain, LouvainConfig};
pub use metrics::{ari, nmi};
pub use modularity::{delta_mod, PartitionStats};
pub use neighborhood::{neighborhood_of_term, CommunityView};
pub use newman::{cluster_newman, NewmanConfig};
pub use parallel::{
    choose_owners, cluster_parallel, cluster_parallel_resumable, compute_stats,
    ClusteringOutcome, IterationStat, ParallelConfig,
};
pub use sqlimpl::{
    cluster_sql, cluster_sql_report, SqlClusterConfig, SqlRunReport, NEIGHBORS_SQL, PARTITIONS_SQL,
};
pub use stats::SizeHistogram;
