//! Modularity arithmetic (§4.2.1, equations 3–9).
//!
//! The paper works on the *unnormalized* modularity
//! `Mod(C) = m_C − m_G · (D_C / D_G)²` (their footnote: dividing by `m_G`
//! "is equivalent to ours" since it is constant). We follow that
//! convention and also expose the conventional normalized value
//! `Q = TMod / m_G` for comparison against the literature.

use crate::assignment::Assignment;
use esharp_graph::MultiGraph;
use std::collections::HashMap;

/// Aggregate statistics of a partition over a multigraph: everything the
/// merge decisions need.
#[derive(Debug, Clone)]
pub struct PartitionStats {
    /// Sum of (weighted) degrees per community id. Communities are sparse:
    /// keyed by their current representative id.
    pub degree_sum: HashMap<u32, u64>,
    /// Intra-community unit-edge counts `m_C`.
    pub internal_edges: HashMap<u32, u64>,
    /// Inter-community unit-edge counts `m_{C1↔C2}`, keyed by
    /// `(min, max)` community id.
    pub between_edges: HashMap<(u32, u32), u64>,
    /// Total unit edges `m_G` of the graph.
    pub total_edges: u64,
}

impl PartitionStats {
    /// Compute all statistics in one pass over the edges.
    pub fn compute(graph: &MultiGraph, assignment: &Assignment) -> Self {
        let mut degree_sum: HashMap<u32, u64> = HashMap::new();
        for node in 0..graph.num_nodes() {
            let c = assignment.community_of(node as u32);
            *degree_sum.entry(c).or_insert(0) += graph.degree(node as u32);
        }
        let mut internal_edges: HashMap<u32, u64> = HashMap::new();
        let mut between_edges: HashMap<(u32, u32), u64> = HashMap::new();
        for &(a, b, k) in graph.edges() {
            let (ca, cb) = (assignment.community_of(a), assignment.community_of(b));
            if ca == cb {
                *internal_edges.entry(ca).or_insert(0) += k;
            } else {
                *between_edges.entry((ca.min(cb), ca.max(cb))).or_insert(0) += k;
            }
        }
        PartitionStats {
            degree_sum,
            internal_edges,
            between_edges,
            total_edges: graph.total_edges(),
        }
    }

    /// `Mod(C) = m_C − m_G (D_C / D_G)²` (equation 6).
    pub fn community_modularity(&self, community: u32) -> f64 {
        let m_c = *self.internal_edges.get(&community).unwrap_or(&0) as f64;
        let d_c = *self.degree_sum.get(&community).unwrap_or(&0) as f64;
        let m_g = self.total_edges as f64;
        if m_g == 0.0 {
            return 0.0;
        }
        let d_g = 2.0 * m_g;
        m_c - m_g * (d_c / d_g) * (d_c / d_g)
    }

    /// Total modularity `TMod = Σ_C Mod(C)` (equation 2). Summed in
    /// sorted community order so the result is bit-stable across runs
    /// (HashMap iteration order would perturb the last ulp).
    pub fn total_modularity(&self) -> f64 {
        let mut communities: Vec<u32> = self.degree_sum.keys().copied().collect();
        communities.sort_unstable();
        communities
            .into_iter()
            .map(|c| self.community_modularity(c))
            .sum()
    }

    /// Conventional normalized modularity `Q = TMod / m_G`.
    pub fn normalized_modularity(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.total_modularity() / self.total_edges as f64
        }
    }

    /// Merge gain `ΔMod = m_{1↔2} − D₁·D₂ / (2 m_G)` (equations 8–9).
    /// Returns 0 for unknown communities (degree 0).
    pub fn delta_mod(&self, c1: u32, c2: u32) -> f64 {
        if c1 == c2 {
            return 0.0;
        }
        let m12 = *self
            .between_edges
            .get(&(c1.min(c2), c1.max(c2)))
            .unwrap_or(&0) as f64;
        let d1 = *self.degree_sum.get(&c1).unwrap_or(&0) as f64;
        let d2 = *self.degree_sum.get(&c2).unwrap_or(&0) as f64;
        delta_mod(m12, d1, d2, self.total_edges as f64)
    }

    /// Number of non-empty communities.
    pub fn num_communities(&self) -> usize {
        self.degree_sum.len()
    }
}

/// The raw ΔMod formula (equations 8–9): gain of merging two communities
/// with `m12` connecting unit edges and degree sums `d1`, `d2` in a graph
/// of `m_g` unit edges.
pub fn delta_mod(m12: f64, d1: f64, d2: f64, m_g: f64) -> f64 {
    if m_g == 0.0 {
        return 0.0;
    }
    m12 - (d1 * d2) / (2.0 * m_g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use esharp_graph::MultiGraph;

    /// Two triangles joined by one edge — the canonical two-community graph.
    fn two_triangles() -> MultiGraph {
        MultiGraph::from_edges(
            6,
            vec![
                (0, 1, 1),
                (1, 2, 1),
                (0, 2, 1),
                (3, 4, 1),
                (4, 5, 1),
                (3, 5, 1),
                (2, 3, 1),
            ],
        )
    }

    #[test]
    fn singletons_have_negative_total_modularity() {
        let g = two_triangles();
        let a = Assignment::singletons(g.num_nodes());
        let stats = PartitionStats::compute(&g, &a);
        assert_eq!(stats.num_communities(), 6);
        // No internal edges: every Mod(C) is −m_G (D_C/D_G)² < 0.
        assert!(stats.total_modularity() < 0.0);
    }

    #[test]
    fn true_partition_beats_singletons_and_whole() {
        let g = two_triangles();
        let truth = Assignment::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let singles = Assignment::singletons(6);
        let whole = Assignment::from_vec(vec![0; 6]);
        let q_truth = PartitionStats::compute(&g, &truth).total_modularity();
        let q_singles = PartitionStats::compute(&g, &singles).total_modularity();
        let q_whole = PartitionStats::compute(&g, &whole).total_modularity();
        assert!(q_truth > q_singles);
        assert!(q_truth > q_whole);
    }

    #[test]
    fn whole_graph_modularity_is_zero() {
        // With everything in one community, m_C = m_G and D_C = D_G, so
        // Mod = m_G − m_G · 1 = 0.
        let g = two_triangles();
        let whole = Assignment::from_vec(vec![0; 6]);
        let stats = PartitionStats::compute(&g, &whole);
        assert!((stats.total_modularity() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn delta_mod_matches_direct_difference() {
        // Equation 8 is a shortcut for eq 7; verify they agree.
        let g = two_triangles();
        let before = Assignment::from_vec(vec![0, 0, 0, 1, 1, 2]);
        let stats = PartitionStats::compute(&g, &before);
        let shortcut = stats.delta_mod(1, 2);

        let after = Assignment::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let direct = PartitionStats::compute(&g, &after).total_modularity()
            - stats.total_modularity();
        assert!(
            (shortcut - direct).abs() < 1e-9,
            "shortcut {shortcut} vs direct {direct}"
        );
    }

    #[test]
    fn delta_mod_positive_for_dense_pairs_negative_for_far_pairs() {
        let g = two_triangles();
        let a = Assignment::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let stats = PartitionStats::compute(&g, &a);
        // Merging the two triangles (one connecting edge, heavy degrees)
        // must not pay.
        assert!(stats.delta_mod(0, 1) < 0.0);
        // Merging a community with itself is 0.
        assert_eq!(stats.delta_mod(0, 0), 0.0);
    }

    #[test]
    fn normalized_modularity_in_range() {
        let g = two_triangles();
        let a = Assignment::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let q = PartitionStats::compute(&g, &a).normalized_modularity();
        assert!(q > 0.0 && q <= 1.0, "Q = {q}");
    }

    #[test]
    fn empty_graph_is_all_zero() {
        let g = MultiGraph::from_edges(3, vec![]);
        let a = Assignment::singletons(3);
        let stats = PartitionStats::compute(&g, &a);
        assert_eq!(stats.total_modularity(), 0.0);
        assert_eq!(stats.delta_mod(0, 1), 0.0);
    }
}
