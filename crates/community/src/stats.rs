//! Descriptive statistics over clusterings — the data behind Figures 5–6.

use crate::assignment::Assignment;
use serde::{Deserialize, Serialize};

/// Figure 6's community-size histogram buckets: 1, 2–10, 11–50, >50.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// Orphans (size 1).
    pub orphans: usize,
    /// Communities with 2–10 members.
    pub small: usize,
    /// Communities with 11–50 members.
    pub medium: usize,
    /// Communities with more than 50 members.
    pub large: usize,
}

impl SizeHistogram {
    /// Compute the histogram of an assignment.
    pub fn compute(assignment: &Assignment) -> Self {
        let mut h = SizeHistogram {
            orphans: 0,
            small: 0,
            medium: 0,
            large: 0,
        };
        for size in assignment.sizes() {
            match size {
                1 => h.orphans += 1,
                2..=10 => h.small += 1,
                11..=50 => h.medium += 1,
                _ => h.large += 1,
            }
        }
        h
    }

    /// Total number of communities.
    pub fn total(&self) -> usize {
        self.orphans + self.small + self.medium + self.large
    }

    /// Share of each bucket, in Figure 6 order
    /// `[1, 2–10, 10–50, >50]`.
    pub fn shares(&self) -> [f64; 4] {
        let total = self.total().max(1) as f64;
        [
            self.orphans as f64 / total,
            self.small as f64 / total,
            self.medium as f64 / total,
            self.large as f64 / total,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_match_figure6_boundaries() {
        // 1 orphan, one community of 2, one of 10, one of 11, one of 51.
        let mut v = Vec::new();
        for (label, size) in [1usize, 2, 10, 11, 51].into_iter().enumerate() {
            for _ in 0..size {
                v.push(label as u32);
            }
        }
        let h = SizeHistogram::compute(&Assignment::from_vec(v));
        assert_eq!(h.orphans, 1);
        assert_eq!(h.small, 2);
        assert_eq!(h.medium, 1);
        assert_eq!(h.large, 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn shares_sum_to_one() {
        let a = Assignment::from_vec(vec![0, 0, 1, 2, 2, 2]);
        let shares = SizeHistogram::compute(&a).shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
