//! Newman's sequential greedy modularity maximization (CNM-style), the
//! "seminal single-machine heuristic" of §4.2.1.
//!
//! Each step merges the single pair of connected communities with the
//! largest positive `ΔMod`; the loop stops when no merge improves the
//! score (or when `target_communities` is reached — "a satisfying number
//! of communities"). A lazy max-heap over candidate merges with version
//! stamps keeps each step near `O(log m)` amortized.

use crate::assignment::Assignment;
use crate::modularity::delta_mod;
use esharp_graph::MultiGraph;
use std::collections::{BinaryHeap, HashMap};

/// Configuration of the sequential greedy.
#[derive(Debug, Clone, Default)]
pub struct NewmanConfig {
    /// Stop early once this many communities remain (0 = run to the
    /// modularity optimum).
    pub target_communities: usize,
}

/// A candidate merge in the heap. Ordered by gain, then by ids for
/// determinism.
#[derive(Debug, PartialEq)]
struct Candidate {
    gain: f64,
    a: u32,
    b: u32,
    /// Version stamps of both communities at push time; stale entries are
    /// skipped on pop.
    stamp_a: u64,
    stamp_b: u64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Run the sequential greedy to the modularity optimum (or the target
/// community count). Returns the final assignment.
pub fn cluster_newman(graph: &MultiGraph, config: &NewmanConfig) -> Assignment {
    let n = graph.num_nodes();
    let m_g = graph.total_edges() as f64;
    if n == 0 || m_g == 0.0 {
        return Assignment::singletons(n);
    }

    // Union-find with explicit community state.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut degree: Vec<f64> = graph.degrees().iter().map(|&d| d as f64).collect();
    // Inter-community edge counts, adjacency per community.
    let mut between: Vec<HashMap<u32, f64>> = vec![HashMap::new(); n];
    for &(a, b, k) in graph.edges() {
        *between[a as usize].entry(b).or_insert(0.0) += k as f64;
        *between[b as usize].entry(a).or_insert(0.0) += k as f64;
    }
    let mut stamp: Vec<u64> = vec![0; n];
    let mut alive = n;

    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    for (a, neighbors) in between.iter().enumerate() {
        for (&b, &m12) in neighbors {
            if (a as u32) < b {
                let gain = delta_mod(m12, degree[a], degree[b as usize], m_g);
                if gain > 0.0 {
                    heap.push(Candidate {
                        gain,
                        a: a as u32,
                        b,
                        stamp_a: 0,
                        stamp_b: 0,
                    });
                }
            }
        }
    }

    while let Some(cand) = heap.pop() {
        if config.target_communities > 0 && alive <= config.target_communities {
            break;
        }
        // Skip stale candidates (either endpoint changed since push).
        if stamp[cand.a as usize] != cand.stamp_a || stamp[cand.b as usize] != cand.stamp_b {
            continue;
        }
        let (a, b) = (find(&mut parent, cand.a), find(&mut parent, cand.b));
        if a == b || cand.gain <= 0.0 {
            continue;
        }
        // Merge the smaller adjacency into the larger (weighted union).
        let (keep, drop) = if between[a as usize].len() >= between[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        parent[drop as usize] = keep;
        degree[keep as usize] += degree[drop as usize];
        alive -= 1;
        stamp[keep as usize] += 1;
        stamp[drop as usize] += 1;

        let dropped: Vec<(u32, f64)> = between[drop as usize].drain().collect();
        for (nbr, m12) in dropped {
            let nbr_root = find(&mut parent, nbr);
            if nbr_root == keep {
                continue;
            }
            *between[keep as usize].entry(nbr_root).or_insert(0.0) += m12;
            let e = between[nbr_root as usize].entry(keep).or_insert(0.0);
            *e += m12;
            between[nbr_root as usize].remove(&drop);
        }
        // Refresh candidates around the merged community.
        let snapshot: Vec<(u32, f64)> = between[keep as usize]
            .iter()
            .map(|(&nbr, &m12)| (nbr, m12))
            .collect();
        for (nbr, m12) in snapshot {
            let nbr_root = find(&mut parent, nbr);
            if nbr_root == keep {
                continue;
            }
            let gain = delta_mod(m12, degree[keep as usize], degree[nbr_root as usize], m_g);
            if gain > 0.0 {
                let (x, y) = (keep.min(nbr_root), keep.max(nbr_root));
                heap.push(Candidate {
                    gain,
                    a: x,
                    b: y,
                    stamp_a: stamp[x as usize],
                    stamp_b: stamp[y as usize],
                });
            }
        }
    }

    let communities: Vec<u32> = (0..n as u32).map(|v| find(&mut parent, v)).collect();
    Assignment::from_vec(communities)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::PartitionStats;

    fn two_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j, 1));
                }
            }
        }
        edges.push((3, 4, 1));
        MultiGraph::from_edges(8, edges)
    }

    #[test]
    fn recovers_two_cliques() {
        let g = two_cliques();
        let a = cluster_newman(&g, &NewmanConfig::default());
        let truth = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(a.same_partition(&truth), "got {:?}", a.as_slice());
    }

    #[test]
    fn never_ends_below_singleton_modularity() {
        let g = two_cliques();
        let greedy = cluster_newman(&g, &NewmanConfig::default());
        let q_greedy = PartitionStats::compute(&g, &greedy).total_modularity();
        let q_single =
            PartitionStats::compute(&g, &Assignment::singletons(8)).total_modularity();
        assert!(q_greedy > q_single);
    }

    #[test]
    fn target_communities_stops_early() {
        let g = two_cliques();
        let a = cluster_newman(
            &g,
            &NewmanConfig {
                target_communities: 4,
            },
        );
        assert!(a.num_communities() >= 4);
    }

    #[test]
    fn handles_isolated_nodes_and_empty_graphs() {
        let g = MultiGraph::from_edges(4, vec![(0, 1, 2)]);
        let a = cluster_newman(&g, &NewmanConfig::default());
        assert_eq!(a.community_of(0), a.community_of(1));
        assert_ne!(a.community_of(2), a.community_of(3));

        let empty = MultiGraph::from_edges(0, vec![]);
        assert_eq!(cluster_newman(&empty, &NewmanConfig::default()).len(), 0);
    }

    #[test]
    fn deterministic() {
        let g = two_cliques();
        let a = cluster_newman(&g, &NewmanConfig::default());
        let b = cluster_newman(&g, &NewmanConfig::default());
        assert_eq!(a, b);
    }
}
