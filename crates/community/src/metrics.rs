//! Clustering quality metrics against ground truth (NMI, ARI).
//!
//! The paper could not score its clustering directly — its query log has
//! no labels. Our synthetic world *does* carry ground truth (the domains),
//! so the evaluation additionally reports normalized mutual information
//! and the adjusted Rand index between detected communities and true
//! domains, and the ablation benches use them to compare algorithms.

use crate::assignment::Assignment;
use std::collections::HashMap;

/// The contingency table between two assignments over the same nodes.
struct Contingency {
    counts: HashMap<(u32, u32), f64>,
    row_sums: HashMap<u32, f64>,
    col_sums: HashMap<u32, f64>,
    n: f64,
}

impl Contingency {
    fn compute(a: &Assignment, b: &Assignment) -> Self {
        assert_eq!(a.len(), b.len(), "assignments over different node sets");
        let mut counts: HashMap<(u32, u32), f64> = HashMap::new();
        let mut row_sums: HashMap<u32, f64> = HashMap::new();
        let mut col_sums: HashMap<u32, f64> = HashMap::new();
        for node in 0..a.len() as u32 {
            let (ca, cb) = (a.community_of(node), b.community_of(node));
            *counts.entry((ca, cb)).or_insert(0.0) += 1.0;
            *row_sums.entry(ca).or_insert(0.0) += 1.0;
            *col_sums.entry(cb).or_insert(0.0) += 1.0;
        }
        Contingency {
            counts,
            row_sums,
            col_sums,
            n: a.len() as f64,
        }
    }
}

/// Normalized mutual information in `[0, 1]` (arithmetic-mean
/// normalization). 1 when the partitions are identical; by convention 1
/// when both are trivial (single community or all singletons agreeing).
pub fn nmi(a: &Assignment, b: &Assignment) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let table = Contingency::compute(a, b);
    let n = table.n;
    let mut mutual = 0.0;
    for (&(ca, cb), &count) in &table.counts {
        let pa = table.row_sums[&ca] / n;
        let pb = table.col_sums[&cb] / n;
        let pab = count / n;
        mutual += pab * (pab / (pa * pb)).ln();
    }
    let ha: f64 = -table
        .row_sums
        .values()
        .map(|&c| (c / n) * (c / n).ln())
        .sum::<f64>();
    let hb: f64 = -table
        .col_sums
        .values()
        .map(|&c| (c / n) * (c / n).ln())
        .sum::<f64>();
    if ha == 0.0 && hb == 0.0 {
        // Both trivial: identical iff equal partitions.
        return if a.same_partition(b) { 1.0 } else { 0.0 };
    }
    (2.0 * mutual / (ha + hb)).clamp(0.0, 1.0)
}

/// Adjusted Rand index in `[-1, 1]`; 1 for identical partitions, ~0 for
/// independent ones.
pub fn ari(a: &Assignment, b: &Assignment) -> f64 {
    if a.is_empty() {
        return 1.0;
    }
    let table = Contingency::compute(a, b);
    let choose2 = |x: f64| x * (x - 1.0) / 2.0;
    let sum_cells: f64 = table.counts.values().map(|&c| choose2(c)).sum();
    let sum_rows: f64 = table.row_sums.values().map(|&c| choose2(c)).sum();
    let sum_cols: f64 = table.col_sums.values().map(|&c| choose2(c)).sum();
    let total_pairs = choose2(table.n);
    if total_pairs == 0.0 {
        return 1.0;
    }
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = (sum_rows + sum_cols) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return if a.same_partition(b) { 1.0 } else { 0.0 };
    }
    (sum_cells - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = Assignment::from_vec(vec![0, 0, 1, 1, 2]);
        let b = Assignment::from_vec(vec![7, 7, 3, 3, 9]); // relabeled
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-9);
        assert!((ari(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_partitions_score_low() {
        // a splits in half, b alternates — close to independent.
        let a = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let b = Assignment::from_vec(vec![0, 1, 0, 1, 0, 1, 0, 1]);
        assert!(nmi(&a, &b) < 0.2);
        assert!(ari(&a, &b).abs() < 0.2);
    }

    #[test]
    fn partial_agreement_is_between() {
        let truth = Assignment::from_vec(vec![0, 0, 0, 1, 1, 1]);
        let noisy = Assignment::from_vec(vec![0, 0, 1, 1, 1, 1]);
        let score = nmi(&truth, &noisy);
        assert!(score > 0.2 && score < 1.0, "nmi = {score}");
        let r = ari(&truth, &noisy);
        assert!(r > 0.2 && r < 1.0, "ari = {r}");
    }

    #[test]
    fn trivial_partitions_handled() {
        let single = Assignment::from_vec(vec![0, 0, 0]);
        assert!((nmi(&single, &single) - 1.0).abs() < 1e-9);
        assert!((ari(&single, &single) - 1.0).abs() < 1e-9);
        let empty = Assignment::from_vec(vec![]);
        assert_eq!(nmi(&empty, &empty), 1.0);
    }

    #[test]
    #[should_panic(expected = "different node sets")]
    fn mismatched_lengths_panic() {
        let a = Assignment::from_vec(vec![0]);
        let b = Assignment::from_vec(vec![0, 1]);
        nmi(&a, &b);
    }
}
