//! The paper's parallel 3-step modularity-maximization algorithm (§4.2.2,
//! Figure 3) — native implementation.
//!
//! Per iteration:
//! 1. **Neighborhood creation** — for every pair of connected communities
//!    `(C1, C2)` with `ΔMod > 0`, `C2` belongs to `C1`'s neighborhood.
//! 2. **Neighborhood separation** — each community keeps only the
//!    neighborhood whose `ΔMod` is largest (the SQL's
//!    `argmax(distance, query1) … group by query2`).
//! 3. **Aggregation** — every community is renamed to its chosen
//!    neighborhood owner.
//!
//! Communities with no positive neighbor keep their own name. The loop
//! stops when an iteration changes nothing (convergence — Figure 5 shows
//! ~6 iterations on the paper's production graph) or after `max_iterations`.
//!
//! The expensive part of each iteration — accumulating per-community
//! degree sums and inter-community edge counts — is embarrassingly
//! parallel over edge chunks; with `workers > 1` it fans out on the
//! process-wide persistent [`esharp_par`] pool (no per-iteration thread
//! spawns) into dense per-worker accumulators, the same map-reduce shape
//! the paper targets. All merged quantities are `u64` counts, whose sums
//! are exact and order-independent, so the clustering result is identical
//! at any worker count.

use crate::assignment::Assignment;
use crate::modularity::PartitionStats;
use esharp_graph::MultiGraph;
use esharp_par::shared_pool;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the parallel merge loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Iteration cap (the algorithm usually converges much sooner).
    pub max_iterations: usize,
    /// Worker threads for the statistics pass.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            max_iterations: 20,
            workers: 1,
        }
    }
}

/// One row of the Figure 5 convergence trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStat {
    /// Iteration number (0 = the singleton initialization).
    pub iteration: usize,
    /// Communities alive after this iteration.
    pub communities: usize,
    /// Total modularity after this iteration (paper's unnormalized TMod).
    pub total_modularity: f64,
    /// Communities that changed owner in this iteration.
    pub merges: usize,
}

/// Result of a clustering run: final assignment plus the per-iteration
/// trace that regenerates Figure 5.
#[derive(Debug, Clone)]
pub struct ClusteringOutcome {
    /// Final node → community assignment.
    pub assignment: Assignment,
    /// Per-iteration statistics (index 0 describes the initialization).
    pub trace: Vec<IterationStat>,
}

impl ClusteringOutcome {
    /// Communities after the final iteration.
    pub fn num_communities(&self) -> usize {
        self.trace.last().map_or(0, |s| s.communities)
    }

    /// Iterations executed (excluding the initialization row).
    pub fn iterations(&self) -> usize {
        self.trace.len().saturating_sub(1)
    }
}

/// Run the paper's 3-step algorithm to convergence.
pub fn cluster_parallel(graph: &MultiGraph, config: &ParallelConfig) -> ClusteringOutcome {
    match cluster_parallel_resumable(graph, config, None, |_, _| {
        Ok::<(), std::convert::Infallible>(())
    }) {
        Ok(outcome) => outcome,
        Err(never) => match never {},
    }
}

/// Resumable, observer-carrying variant of [`cluster_parallel`] — the
/// crash-safe pipeline's entry point.
///
/// `on_iteration` fires after the initialization row and after every
/// completed iteration, receiving the assignment and the trace so far;
/// a checkpointing caller persists that pair and propagates its own error
/// type `E` out of the loop. After a crash, the last persisted pair comes
/// back in as `resume` and the loop continues from
/// `trace.last().iteration + 1` — a run killed at iteration 4 restarts at
/// 4, not 0.
///
/// Determinism: one iteration is a pure function of `(graph, assignment)`
/// (the [`compute_stats`] merge order is fixed and worker-count
/// independent), so a resumed run reproduces the uninterrupted run's
/// assignment and trace bit for bit. A `resume` whose assignment does not
/// match the graph's node count (stale checkpoint) is ignored and the run
/// starts clean.
pub fn cluster_parallel_resumable<E>(
    graph: &MultiGraph,
    config: &ParallelConfig,
    resume: Option<(Assignment, Vec<IterationStat>)>,
    mut on_iteration: impl FnMut(&Assignment, &[IterationStat]) -> Result<(), E>,
) -> Result<ClusteringOutcome, E> {
    let resume = resume.filter(|(a, t)| a.len() == graph.num_nodes() && !t.is_empty());
    let (mut assignment, mut trace) = match resume {
        Some(state) => state,
        None => {
            let assignment = Assignment::singletons(graph.num_nodes());
            let initial_stats = compute_stats(graph, &assignment, config.workers);
            let trace = vec![IterationStat {
                iteration: 0,
                communities: graph.num_nodes(),
                total_modularity: initial_stats.total_modularity(),
                merges: 0,
            }];
            on_iteration(&assignment, &trace)?;
            (assignment, trace)
        }
    };

    let first = trace.last().map_or(0, |s| s.iteration) + 1;
    for iteration in first..=config.max_iterations {
        let stats = compute_stats(graph, &assignment, config.workers);
        let owners = choose_owners(&stats);
        if owners.is_empty() {
            break;
        }
        // Step 3: rename every node of each re-assigned community.
        let mut merges = 0;
        let mut renamed = assignment.clone();
        for node in 0..graph.num_nodes() as u32 {
            let c = assignment.community_of(node);
            if let Some(&owner) = owners.get(&c) {
                if owner != c {
                    renamed.set(node, owner);
                }
            }
        }
        for (&c, &owner) in &owners {
            if owner != c {
                merges += 1;
            }
        }
        // Convergence check on the *partition*, not the label vector: a
        // residual rename cycle (A→B→C→A) permutes labels without changing
        // the partition and must terminate the loop.
        if merges == 0 || renamed.same_partition(&assignment) {
            break;
        }
        assignment = renamed;
        let after = compute_stats(graph, &assignment, config.workers);
        trace.push(IterationStat {
            iteration,
            communities: after.num_communities(),
            total_modularity: after.total_modularity(),
            merges,
        });
        on_iteration(&assignment, &trace)?;
    }

    Ok(ClusteringOutcome { assignment, trace })
}

/// Steps 1+2: for each community, the best (`argmax ΔMod`) positive-gain
/// neighbor to merge into; absent when no neighbor has positive gain.
/// Tie-break: the smaller owner id — matching the relational `argmax`'s
/// deterministic tie-break so the SQL and native paths agree exactly.
///
/// One repair on top of the paper's pseudo-code: when two communities
/// mutually select each other, renaming as written would merely *swap*
/// their names forever. Both are redirected to the smaller id instead, so
/// a mutual selection becomes an actual merge. (Production systems built
/// on the paper's Figure 4 need the same symmetry-breaking; DESIGN.md §4
/// lists it as a documented deviation.)
pub fn choose_owners(stats: &PartitionStats) -> HashMap<u32, u32> {
    let mut best: HashMap<u32, (f64, u32)> = HashMap::new();
    for &(a, b) in stats.between_edges.keys() {
        let gain = stats.delta_mod(a, b);
        if gain <= 0.0 {
            continue;
        }
        // `b` may join `a`'s neighborhood and vice versa.
        for (community, owner) in [(a, b), (b, a)] {
            match best.get_mut(&community) {
                Some((g, o)) => {
                    if gain > *g || (gain == *g && owner < *o) {
                        *g = gain;
                        *o = owner;
                    }
                }
                None => {
                    best.insert(community, (gain, owner));
                }
            }
        }
    }
    let mut owners: HashMap<u32, u32> = best.into_iter().map(|(c, (_, o))| (c, o)).collect();
    // Resolve mutual selections to the smaller id.
    let snapshot: Vec<(u32, u32)> = owners.iter().map(|(&c, &o)| (c, o)).collect();
    for (c, o) in snapshot {
        if owners.get(&o) == Some(&c) {
            let target = c.min(o);
            owners.insert(c, target);
            owners.insert(o, target);
        }
    }
    owners
}

/// Partition statistics, optionally computed with `workers` threads over
/// edge chunks on the persistent shared pool.
///
/// Community ids are node-id representatives (always `< num_nodes`), so
/// per-worker accumulators are dense `Vec<u64>` indexed by community —
/// no hash probes on the hot edge loop, and the fold/reduce merge is a
/// branch-free element-wise add. Inter-community counts, whose key space
/// is quadratic, use flat `(packed pair, count)` buffers merged by
/// sort + fold instead. All counts are `u64` (exact, order-independent
/// addition), so the result is identical at any worker count.
pub fn compute_stats(graph: &MultiGraph, assignment: &Assignment, workers: usize) -> PartitionStats {
    if workers <= 1 || graph.edges().len() < 4 * workers {
        return PartitionStats::compute(graph, assignment);
    }
    let num_nodes = graph.num_nodes();
    let pool = shared_pool(workers);
    // One chunk per worker: chunk *count*, not edge count, bounds the
    // transient dense-accumulator memory.
    let chunk = graph.edges().len().div_ceil(workers);
    let partials = pool.map_chunks(graph.edges(), chunk, |edges| {
        let mut internal = vec![0u64; num_nodes];
        let mut between: Vec<(u64, u64)> = Vec::new();
        for &(a, b, k) in edges {
            let (ca, cb) = (assignment.community_of(a), assignment.community_of(b));
            if ca == cb {
                internal[ca as usize] += k;
            } else {
                let pair = ((ca.min(cb) as u64) << 32) | ca.max(cb) as u64;
                between.push((pair, k));
            }
        }
        (internal, between)
    });

    let mut internal_dense = vec![0u64; num_nodes];
    let mut between_flat: Vec<(u64, u64)> = Vec::new();
    for (internal, between) in partials {
        for (total, partial) in internal_dense.iter_mut().zip(internal) {
            *total += partial;
        }
        between_flat.extend(between);
    }
    between_flat.sort_unstable_by_key(|&(pair, _)| pair);
    let mut between_edges: HashMap<(u32, u32), u64> = HashMap::new();
    for (pair, k) in between_flat {
        *between_edges
            .entry(((pair >> 32) as u32, pair as u32))
            .or_insert(0) += k;
    }

    // Degree sums and community occupancy in one dense O(n) pass. A
    // community exists when any node maps to it (even at degree 0), which
    // is exactly the key set the serial HashMap pass produces.
    let mut degree_dense = vec![0u64; num_nodes];
    let mut occupied = vec![false; num_nodes];
    for node in 0..num_nodes {
        let c = assignment.community_of(node as u32) as usize;
        occupied[c] = true;
        degree_dense[c] += graph.degree(node as u32);
    }
    let mut degree_sum: HashMap<u32, u64> = HashMap::new();
    let mut internal_edges: HashMap<u32, u64> = HashMap::new();
    for c in 0..num_nodes {
        if occupied[c] {
            degree_sum.insert(c as u32, degree_dense[c]);
        }
        if internal_dense[c] > 0 {
            internal_edges.insert(c as u32, internal_dense[c]);
        }
    }
    PartitionStats {
        degree_sum,
        internal_edges,
        between_edges,
        total_edges: graph.total_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques linked by a single edge.
    fn two_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j, 1));
                }
            }
        }
        edges.push((3, 4, 1));
        MultiGraph::from_edges(8, edges)
    }

    #[test]
    fn recovers_the_two_cliques() {
        let g = two_cliques();
        let out = cluster_parallel(&g, &ParallelConfig::default());
        let truth = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(
            out.assignment.same_partition(&truth),
            "got {:?}",
            out.assignment.as_slice()
        );
    }

    #[test]
    fn trace_is_monotone_in_community_count() {
        let g = two_cliques();
        let out = cluster_parallel(&g, &ParallelConfig::default());
        assert!(out.trace.len() >= 2);
        assert_eq!(out.trace[0].communities, 8);
        for pair in out.trace.windows(2) {
            assert!(pair[1].communities <= pair[0].communities);
        }
        // The greedy ends far above the singleton initialization.
        let first = out.trace.first().unwrap().total_modularity;
        let last = out.trace.last().unwrap().total_modularity;
        assert!(last > first);
    }

    #[test]
    fn parallel_stats_match_serial() {
        let g = two_cliques();
        let a = Assignment::from_vec(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let serial = compute_stats(&g, &a, 1);
        let par = compute_stats(&g, &a, 4);
        assert_eq!(serial.degree_sum, par.degree_sum);
        assert_eq!(serial.internal_edges, par.internal_edges);
        assert_eq!(serial.between_edges, par.between_edges);
    }

    /// A weighted graph large enough (≥ 4·workers edges) to force the
    /// parallel dense-accumulator path rather than the serial fallback.
    fn weighted_ring_of_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for clique in 0..6u32 {
            let base = clique * 5;
            for i in 0..5 {
                for j in i + 1..5 {
                    edges.push((base + i, base + j, 1 + ((i + j) % 3) as u64));
                }
            }
            let next = ((clique + 1) % 6) * 5;
            edges.push((base + 4, next, 2));
        }
        MultiGraph::from_edges(30, edges)
    }

    #[test]
    fn dense_stats_match_hashmap_reference() {
        let g = weighted_ring_of_cliques();
        // Communities with varied sizes, including a degree-carrying merge
        // of nodes across cliques and sparse representative ids.
        let communities: Vec<u32> = (0..30u32).map(|n| (n / 7) * 7).collect();
        let a = Assignment::from_vec(communities);
        let reference = PartitionStats::compute(&g, &a);
        for workers in [2, 4, 8] {
            assert!(g.edges().len() >= 4 * workers || workers == 8);
            let dense = compute_stats(&g, &a, workers);
            assert_eq!(dense.degree_sum, reference.degree_sum, "workers={workers}");
            assert_eq!(dense.internal_edges, reference.internal_edges);
            assert_eq!(dense.between_edges, reference.between_edges);
            assert_eq!(dense.total_edges, reference.total_edges);
            assert_eq!(
                dense.total_modularity().to_bits(),
                reference.total_modularity().to_bits()
            );
        }
    }

    #[test]
    fn workers_do_not_change_the_result() {
        let g = two_cliques();
        let serial = cluster_parallel(&g, &ParallelConfig { workers: 1, ..Default::default() });
        let par = cluster_parallel(&g, &ParallelConfig { workers: 4, ..Default::default() });
        assert!(serial.assignment.same_partition(&par.assignment));
        assert_eq!(serial.trace, par.trace);
    }

    #[test]
    fn isolated_nodes_stay_orphans() {
        let g = MultiGraph::from_edges(5, vec![(0, 1, 3)]);
        let out = cluster_parallel(&g, &ParallelConfig::default());
        // Nodes 2,3,4 are isolated: they must remain singletons.
        let a = &out.assignment;
        assert_eq!(a.community_of(0), a.community_of(1));
        assert_ne!(a.community_of(2), a.community_of(3));
        assert_eq!(out.num_communities(), 4);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = MultiGraph::from_edges(3, vec![]);
        let out = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(out.iterations(), 0);
        assert_eq!(out.assignment.num_communities(), 3);
    }

    #[test]
    fn resume_from_any_iteration_is_bit_identical() {
        let g = weighted_ring_of_cliques();
        let config = ParallelConfig::default();
        let reference = cluster_parallel(&g, &config);
        assert!(reference.iterations() >= 2, "graph converges too fast to test resume");

        // Record the state after every iteration, then restart from each
        // as if the process had died right after persisting it.
        let mut states: Vec<(Assignment, Vec<IterationStat>)> = Vec::new();
        cluster_parallel_resumable(&g, &config, None, |a, t| {
            states.push((a.clone(), t.to_vec()));
            Ok::<(), std::convert::Infallible>(())
        })
        .unwrap();
        for (i, state) in states.into_iter().enumerate() {
            let resumed =
                cluster_parallel_resumable(&g, &config, Some(state), |_, _| {
                    Ok::<(), std::convert::Infallible>(())
                })
                .unwrap();
            assert_eq!(
                resumed.assignment.as_slice(),
                reference.assignment.as_slice(),
                "resume after callback {i} diverged"
            );
            assert_eq!(resumed.trace, reference.trace, "trace after callback {i} diverged");
            for (a, b) in resumed.trace.iter().zip(&reference.trace) {
                assert_eq!(
                    a.total_modularity.to_bits(),
                    b.total_modularity.to_bits(),
                    "modularity not bit-identical at iteration {}",
                    a.iteration
                );
            }
        }
    }

    #[test]
    fn stale_resume_state_is_ignored() {
        let g = two_cliques();
        let stale = (
            Assignment::singletons(3), // wrong node count
            vec![IterationStat { iteration: 7, communities: 3, total_modularity: 0.0, merges: 0 }],
        );
        let out = cluster_parallel_resumable(
            &g,
            &ParallelConfig::default(),
            Some(stale),
            |_, _| Ok::<(), std::convert::Infallible>(()),
        )
        .unwrap();
        let reference = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(out.trace, reference.trace);
    }

    #[test]
    fn callback_errors_abort_the_loop() {
        let g = two_cliques();
        let mut calls = 0;
        let out = cluster_parallel_resumable(&g, &ParallelConfig::default(), None, |_, t| {
            calls += 1;
            if t.last().map_or(0, |s| s.iteration) >= 1 {
                Err("disk full")
            } else {
                Ok(())
            }
        });
        assert_eq!(out.unwrap_err(), "disk full");
        assert_eq!(calls, 2, "must stop at the first failing persist");
    }
}
