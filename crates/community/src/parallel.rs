//! The paper's parallel 3-step modularity-maximization algorithm (§4.2.2,
//! Figure 3) — native implementation.
//!
//! Per iteration:
//! 1. **Neighborhood creation** — for every pair of connected communities
//!    `(C1, C2)` with `ΔMod > 0`, `C2` belongs to `C1`'s neighborhood.
//! 2. **Neighborhood separation** — each community keeps only the
//!    neighborhood whose `ΔMod` is largest (the SQL's
//!    `argmax(distance, query1) … group by query2`).
//! 3. **Aggregation** — every community is renamed to its chosen
//!    neighborhood owner.
//!
//! Communities with no positive neighbor keep their own name. The loop
//! stops when an iteration changes nothing (convergence — Figure 5 shows
//! ~6 iterations on the paper's production graph) or after `max_iterations`.
//!
//! The expensive part of each iteration — accumulating per-community
//! degree sums and inter-community edge counts — is embarrassingly
//! parallel over edge chunks; with `workers > 1` it fans out on scoped
//! threads and merges per-thread maps, the same shape as the map-reduce
//! execution the paper targets.

use crate::assignment::Assignment;
use crate::modularity::PartitionStats;
use esharp_graph::MultiGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of the parallel merge loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Iteration cap (the algorithm usually converges much sooner).
    pub max_iterations: usize,
    /// Worker threads for the statistics pass.
    pub workers: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            max_iterations: 20,
            workers: 1,
        }
    }
}

/// One row of the Figure 5 convergence trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationStat {
    /// Iteration number (0 = the singleton initialization).
    pub iteration: usize,
    /// Communities alive after this iteration.
    pub communities: usize,
    /// Total modularity after this iteration (paper's unnormalized TMod).
    pub total_modularity: f64,
    /// Communities that changed owner in this iteration.
    pub merges: usize,
}

/// Result of a clustering run: final assignment plus the per-iteration
/// trace that regenerates Figure 5.
#[derive(Debug, Clone)]
pub struct ClusteringOutcome {
    /// Final node → community assignment.
    pub assignment: Assignment,
    /// Per-iteration statistics (index 0 describes the initialization).
    pub trace: Vec<IterationStat>,
}

impl ClusteringOutcome {
    /// Communities after the final iteration.
    pub fn num_communities(&self) -> usize {
        self.trace.last().map_or(0, |s| s.communities)
    }

    /// Iterations executed (excluding the initialization row).
    pub fn iterations(&self) -> usize {
        self.trace.len().saturating_sub(1)
    }
}

/// Run the paper's 3-step algorithm to convergence.
pub fn cluster_parallel(graph: &MultiGraph, config: &ParallelConfig) -> ClusteringOutcome {
    let mut assignment = Assignment::singletons(graph.num_nodes());
    let mut trace = Vec::with_capacity(config.max_iterations + 1);
    let initial_stats = compute_stats(graph, &assignment, config.workers);
    trace.push(IterationStat {
        iteration: 0,
        communities: graph.num_nodes(),
        total_modularity: initial_stats.total_modularity(),
        merges: 0,
    });

    for iteration in 1..=config.max_iterations {
        let stats = compute_stats(graph, &assignment, config.workers);
        let owners = choose_owners(&stats);
        if owners.is_empty() {
            break;
        }
        // Step 3: rename every node of each re-assigned community.
        let mut merges = 0;
        let mut renamed = assignment.clone();
        for node in 0..graph.num_nodes() as u32 {
            let c = assignment.community_of(node);
            if let Some(&owner) = owners.get(&c) {
                if owner != c {
                    renamed.set(node, owner);
                }
            }
        }
        for (&c, &owner) in &owners {
            if owner != c {
                merges += 1;
            }
        }
        // Convergence check on the *partition*, not the label vector: a
        // residual rename cycle (A→B→C→A) permutes labels without changing
        // the partition and must terminate the loop.
        if merges == 0 || renamed.same_partition(&assignment) {
            break;
        }
        assignment = renamed;
        let after = compute_stats(graph, &assignment, config.workers);
        trace.push(IterationStat {
            iteration,
            communities: after.num_communities(),
            total_modularity: after.total_modularity(),
            merges,
        });
    }

    ClusteringOutcome { assignment, trace }
}

/// Steps 1+2: for each community, the best (`argmax ΔMod`) positive-gain
/// neighbor to merge into; absent when no neighbor has positive gain.
/// Tie-break: the smaller owner id — matching the relational `argmax`'s
/// deterministic tie-break so the SQL and native paths agree exactly.
///
/// One repair on top of the paper's pseudo-code: when two communities
/// mutually select each other, renaming as written would merely *swap*
/// their names forever. Both are redirected to the smaller id instead, so
/// a mutual selection becomes an actual merge. (Production systems built
/// on the paper's Figure 4 need the same symmetry-breaking; DESIGN.md §4
/// lists it as a documented deviation.)
pub fn choose_owners(stats: &PartitionStats) -> HashMap<u32, u32> {
    let mut best: HashMap<u32, (f64, u32)> = HashMap::new();
    for &(a, b) in stats.between_edges.keys() {
        let gain = stats.delta_mod(a, b);
        if gain <= 0.0 {
            continue;
        }
        // `b` may join `a`'s neighborhood and vice versa.
        for (community, owner) in [(a, b), (b, a)] {
            match best.get_mut(&community) {
                Some((g, o)) => {
                    if gain > *g || (gain == *g && owner < *o) {
                        *g = gain;
                        *o = owner;
                    }
                }
                None => {
                    best.insert(community, (gain, owner));
                }
            }
        }
    }
    let mut owners: HashMap<u32, u32> = best.into_iter().map(|(c, (_, o))| (c, o)).collect();
    // Resolve mutual selections to the smaller id.
    let snapshot: Vec<(u32, u32)> = owners.iter().map(|(&c, &o)| (c, o)).collect();
    for (c, o) in snapshot {
        if owners.get(&o) == Some(&c) {
            let target = c.min(o);
            owners.insert(c, target);
            owners.insert(o, target);
        }
    }
    owners
}

/// Partition statistics, optionally computed with `workers` threads over
/// edge chunks.
pub fn compute_stats(graph: &MultiGraph, assignment: &Assignment, workers: usize) -> PartitionStats {
    if workers <= 1 || graph.edges().len() < 4 * workers {
        return PartitionStats::compute(graph, assignment);
    }
    let chunk = graph.edges().len().div_ceil(workers);
    type PartialStats = (HashMap<u32, u64>, HashMap<(u32, u32), u64>);
    let partials: Vec<PartialStats> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = graph
                .edges()
                .chunks(chunk)
                .map(|edges| {
                    scope.spawn(move |_| {
                        let mut internal: HashMap<u32, u64> = HashMap::new();
                        let mut between: HashMap<(u32, u32), u64> = HashMap::new();
                        for &(a, b, k) in edges {
                            let (ca, cb) =
                                (assignment.community_of(a), assignment.community_of(b));
                            if ca == cb {
                                *internal.entry(ca).or_insert(0) += k;
                            } else {
                                *between.entry((ca.min(cb), ca.max(cb))).or_insert(0) += k;
                            }
                        }
                        (internal, between)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stats worker panicked"))
                .collect()
        })
        .expect("thread scope failed");

    let mut internal_edges: HashMap<u32, u64> = HashMap::new();
    let mut between_edges: HashMap<(u32, u32), u64> = HashMap::new();
    for (internal, between) in partials {
        for (c, k) in internal {
            *internal_edges.entry(c).or_insert(0) += k;
        }
        for (pair, k) in between {
            *between_edges.entry(pair).or_insert(0) += k;
        }
    }
    // Degree sums are a cheap O(n) pass; no need to parallelize.
    let mut degree_sum: HashMap<u32, u64> = HashMap::new();
    for node in 0..graph.num_nodes() {
        let c = assignment.community_of(node as u32);
        *degree_sum.entry(c).or_insert(0) += graph.degree(node as u32);
    }
    PartitionStats {
        degree_sum,
        internal_edges,
        between_edges,
        total_edges: graph.total_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques linked by a single edge.
    fn two_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j, 1));
                }
            }
        }
        edges.push((3, 4, 1));
        MultiGraph::from_edges(8, edges)
    }

    #[test]
    fn recovers_the_two_cliques() {
        let g = two_cliques();
        let out = cluster_parallel(&g, &ParallelConfig::default());
        let truth = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(
            out.assignment.same_partition(&truth),
            "got {:?}",
            out.assignment.as_slice()
        );
    }

    #[test]
    fn trace_is_monotone_in_community_count() {
        let g = two_cliques();
        let out = cluster_parallel(&g, &ParallelConfig::default());
        assert!(out.trace.len() >= 2);
        assert_eq!(out.trace[0].communities, 8);
        for pair in out.trace.windows(2) {
            assert!(pair[1].communities <= pair[0].communities);
        }
        // The greedy ends far above the singleton initialization.
        let first = out.trace.first().unwrap().total_modularity;
        let last = out.trace.last().unwrap().total_modularity;
        assert!(last > first);
    }

    #[test]
    fn parallel_stats_match_serial() {
        let g = two_cliques();
        let a = Assignment::from_vec(vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let serial = compute_stats(&g, &a, 1);
        let par = compute_stats(&g, &a, 4);
        assert_eq!(serial.degree_sum, par.degree_sum);
        assert_eq!(serial.internal_edges, par.internal_edges);
        assert_eq!(serial.between_edges, par.between_edges);
    }

    #[test]
    fn workers_do_not_change_the_result() {
        let g = two_cliques();
        let serial = cluster_parallel(&g, &ParallelConfig { workers: 1, ..Default::default() });
        let par = cluster_parallel(&g, &ParallelConfig { workers: 4, ..Default::default() });
        assert!(serial.assignment.same_partition(&par.assignment));
        assert_eq!(serial.trace, par.trace);
    }

    #[test]
    fn isolated_nodes_stay_orphans() {
        let g = MultiGraph::from_edges(5, vec![(0, 1, 3)]);
        let out = cluster_parallel(&g, &ParallelConfig::default());
        // Nodes 2,3,4 are isolated: they must remain singletons.
        let a = &out.assignment;
        assert_eq!(a.community_of(0), a.community_of(1));
        assert_ne!(a.community_of(2), a.community_of(3));
        assert_eq!(out.num_communities(), 4);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = MultiGraph::from_edges(3, vec![]);
        let out = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(out.iterations(), 0);
        assert_eq!(out.assignment.num_communities(), 3);
    }
}
