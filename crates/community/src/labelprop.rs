//! Label propagation — the second ablation comparator (a non-modularity
//! "community detection paradigm" in the sense of the paper's future-work
//! note). Near-linear time, no objective function.
//!
//! Standard asynchronous LPA (Raghavan et al.): nodes are visited in a
//! shuffled order each sweep and adopt the incident label with the largest
//! total edge weight, breaking ties uniformly at random (deterministically
//! seeded — plain smallest-label tie-breaking floods the whole graph with
//! one label on unweighted ties). Converges when every node already holds
//! a maximal label.

use crate::assignment::Assignment;
use esharp_graph::MultiGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the propagation loop.
#[derive(Debug, Clone)]
pub struct LabelPropConfig {
    /// Sweep cap (propagation on meshes can oscillate; the cap bounds it).
    pub max_sweeps: usize,
    /// Seed for visit order and tie-breaking.
    pub seed: u64,
}

impl Default for LabelPropConfig {
    fn default() -> Self {
        LabelPropConfig {
            max_sweeps: 50,
            seed: 0x1a6e,
        }
    }
}

/// Run label propagation and return the assignment.
pub fn cluster_label_propagation(graph: &MultiGraph, config: &LabelPropConfig) -> Assignment {
    let n = graph.num_nodes();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    if n == 0 {
        return Assignment::from_vec(labels);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut adjacency: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for &(a, b, k) in graph.edges() {
        adjacency[a as usize].push((b, k));
        adjacency[b as usize].push((a, k));
    }
    let mut order: Vec<usize> = (0..n).collect();

    for _ in 0..config.max_sweeps {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &v in &order {
            if adjacency[v].is_empty() {
                continue;
            }
            let mut weight_by_label: HashMap<u32, u64> = HashMap::new();
            for &(w, k) in &adjacency[v] {
                *weight_by_label.entry(labels[w as usize]).or_insert(0) += k;
            }
            let max_weight = *weight_by_label.values().max().expect("non-empty");
            let mut maxima: Vec<u32> = weight_by_label
                .into_iter()
                .filter(|&(_, w)| w == max_weight)
                .map(|(l, _)| l)
                .collect();
            maxima.sort_unstable();
            if maxima.contains(&labels[v]) {
                continue; // current label already maximal — stable
            }
            let pick = maxima[rng.gen_range(0..maxima.len())];
            labels[v] = pick;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    Assignment::from_vec(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j, 1));
                }
            }
        }
        edges.push((3, 4, 1));
        MultiGraph::from_edges(8, edges)
    }

    #[test]
    fn separates_two_cliques_for_most_seeds() {
        // LPA is stochastic; require that a clear majority of seeds recover
        // the planted structure (flooding would fail almost all of them).
        let truth = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let mut hits = 0;
        for seed in 0..20 {
            let a = cluster_label_propagation(
                &two_cliques(),
                &LabelPropConfig {
                    max_sweeps: 50,
                    seed,
                },
            );
            if a.same_partition(&truth) {
                hits += 1;
            }
        }
        assert!(hits >= 12, "only {hits}/20 seeds recovered the cliques");
    }

    #[test]
    fn isolated_nodes_keep_their_own_label() {
        let g = MultiGraph::from_edges(4, vec![(0, 1, 1)]);
        let a = cluster_label_propagation(&g, &LabelPropConfig::default());
        assert_ne!(a.community_of(2), a.community_of(3));
        assert_eq!(a.community_of(0), a.community_of(1));
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let g = two_cliques();
        let a = cluster_label_propagation(&g, &LabelPropConfig::default());
        let b = cluster_label_propagation(&g, &LabelPropConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn respects_edge_weights() {
        // Node 2 is tied to clique {0,1} by a heavy edge and to {3,4} by
        // light ones; weight must win.
        let g = MultiGraph::from_edges(
            5,
            vec![(0, 1, 5), (0, 2, 5), (1, 2, 5), (2, 3, 1), (3, 4, 5)],
        );
        let a = cluster_label_propagation(&g, &LabelPropConfig::default());
        assert_eq!(a.community_of(2), a.community_of(0));
        assert_ne!(a.community_of(2), a.community_of(3));
    }
}
