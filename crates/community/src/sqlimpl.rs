//! SQL-based modularity maximization (§4.2.2, Figure 4) — the paper's
//! headline implementation, executed on the `esharp-relation` engine.
//!
//! Each iteration runs the two declarative statements of Figure 4 through
//! the SQL front-end:
//!
//! ```sql
//! -- Step 1: neighborhood creation
//! neighbors  = select c1.comm_name as comm1, c2.comm_name as comm2,
//!                     ModulGain(c1.comm_name, c2.comm_name) as gain
//!              from graph
//!              inner join communities c1 on c1.query = graph.node1
//!              inner join communities c2 on c2.query = graph.node2
//!              where c1.comm_name <> c2.comm_name
//!                and ModulGain(c1.comm_name, c2.comm_name) > 0;
//! -- Step 2: neighborhood separation
//! partitions = select comm2, argmax(gain, comm1) as owner
//!              from neighbors group by comm2;
//! ```
//!
//! `ModulGain` is registered as a scalar UDF closing over the current
//! partition statistics (equations 8–9). Step 3 — "grouping and renaming
//! … executed in one map-reduce pass" — applies the owner map to the
//! communities table; communities absent from `partitions` (no positive
//! neighbor) keep their name, and mutual selections collapse to the
//! smaller id exactly as in the native implementation
//! ([`crate::parallel::choose_owners`]), so the two paths produce
//! identical partitions iteration for iteration.

use crate::assignment::Assignment;
use crate::modularity::PartitionStats;
use crate::parallel::{ClusteringOutcome, IterationStat};
use esharp_graph::relation_io::multigraph_to_table;
use esharp_graph::MultiGraph;
use esharp_relation::{
    run_sql, Catalog, Cluster, DataType, ExecContext, FnUdf, JoinStrategy, RelError, RelResult,
    StatsRegistry, Value,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the SQL-based clustering loop.
#[derive(Debug, Clone)]
pub struct SqlClusterConfig {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Worker threads for the parallel joins/aggregations.
    pub workers: usize,
    /// Join strategy for the graph ⋈ communities joins (§4.2.3).
    pub join_strategy: JoinStrategy,
    /// Optional per-operator statistics sink (Table 9 accounting).
    pub stats: Option<StatsRegistry>,
}

impl Default for SqlClusterConfig {
    fn default() -> Self {
        SqlClusterConfig {
            max_iterations: 20,
            workers: 1,
            join_strategy: JoinStrategy::Broadcast,
            stats: None,
        }
    }
}

/// The Figure 4 statements (in this engine's dialect — standard `ON`
/// equality conditions instead of the paper's shorthand `on query2`).
pub const NEIGHBORS_SQL: &str = "\
select c1.comm_name as comm1, c2.comm_name as comm2, \
       ModulGain(c1.comm_name, c2.comm_name) as gain \
from graph \
inner join communities c1 on c1.query = graph.node1 \
inner join communities c2 on c2.query = graph.node2 \
where c1.comm_name <> c2.comm_name \
  and ModulGain(c1.comm_name, c2.comm_name) > 0";

/// Step 2 of Figure 4.
pub const PARTITIONS_SQL: &str =
    "select comm2, argmax(gain, comm1) as owner from neighbors group by comm2";

/// Run the paper's SQL-based clustering on a multigraph.
pub fn cluster_sql(graph: &MultiGraph, config: &SqlClusterConfig) -> RelResult<ClusteringOutcome> {
    let catalog = Catalog::new();
    catalog.register("graph", multigraph_to_table(graph)?);

    let mut ctx = ExecContext::new(catalog)
        .with_cluster(Cluster::new(config.workers))
        .with_join_strategy(config.join_strategy);
    if let Some(stats) = &config.stats {
        ctx = ctx.with_stats(stats.clone());
    }

    let mut assignment = Assignment::singletons(graph.num_nodes());
    let mut trace = Vec::with_capacity(config.max_iterations + 1);
    trace.push(IterationStat {
        iteration: 0,
        communities: graph.num_nodes(),
        total_modularity: PartitionStats::compute(graph, &assignment).total_modularity(),
        merges: 0,
    });

    for iteration in 1..=config.max_iterations {
        // Register the current communities table and the ModulGain UDF
        // closing over this iteration's partition statistics.
        let stats = PartitionStats::compute(graph, &assignment);
        ctx.catalog.register(
            "communities",
            esharp_graph::relation_io::assignment_to_table(assignment.as_slice())?,
        );
        ctx.udfs.register(make_modulgain_udf(&stats));

        // Step 1 (SQL): neighborhood creation.
        let neighbors = run_sql(NEIGHBORS_SQL, &ctx)?;
        ctx.catalog.register("neighbors", neighbors);

        // Step 2 (SQL): neighborhood separation.
        let partitions = run_sql(PARTITIONS_SQL, &ctx)?;

        // Step 3: aggregation/renaming.
        let mut owners: HashMap<u32, u32> = HashMap::with_capacity(partitions.num_rows());
        let comm_col = partitions.column_by_name("comm2")?;
        let owner_col = partitions.column_by_name("owner")?;
        for row in 0..partitions.num_rows() {
            let c = comm_col
                .value(row)
                .as_int()
                .ok_or_else(|| RelError::Eval("non-int community".into()))? as u32;
            let o = owner_col
                .value(row)
                .as_int()
                .ok_or_else(|| RelError::Eval("non-int owner".into()))? as u32;
            owners.insert(c, o);
        }
        // Mutual selections collapse to the smaller id (same repair as the
        // native path; see `choose_owners`).
        let snapshot: Vec<(u32, u32)> = owners.iter().map(|(&c, &o)| (c, o)).collect();
        for (c, o) in snapshot {
            if owners.get(&o) == Some(&c) {
                let target = c.min(o);
                owners.insert(c, target);
                owners.insert(o, target);
            }
        }

        let mut merges = 0;
        let mut renamed = assignment.clone();
        for node in 0..graph.num_nodes() as u32 {
            let c = assignment.community_of(node);
            if let Some(&owner) = owners.get(&c) {
                if owner != c {
                    renamed.set(node, owner);
                }
            }
        }
        for (&c, &owner) in &owners {
            if owner != c {
                merges += 1;
            }
        }
        if merges == 0 || renamed.same_partition(&assignment) {
            break;
        }
        assignment = renamed;
        let after = PartitionStats::compute(graph, &assignment);
        trace.push(IterationStat {
            iteration,
            communities: after.num_communities(),
            total_modularity: after.total_modularity(),
            merges,
        });
    }

    Ok(ClusteringOutcome { assignment, trace })
}

/// Build the `ModulGain(comm1, comm2)` scalar UDF over a snapshot of the
/// current partition statistics.
fn make_modulgain_udf(stats: &PartitionStats) -> Arc<FnUdf<impl Fn(&[Value]) -> RelResult<Value> + Send + Sync>> {
    let degree_sum: Arc<HashMap<u32, u64>> = Arc::new(stats.degree_sum.clone());
    let between: Arc<HashMap<(u32, u32), u64>> = Arc::new(stats.between_edges.clone());
    let m_g = stats.total_edges as f64;
    Arc::new(FnUdf::new("ModulGain", DataType::Float, move |args| {
        let [a, b] = args else {
            return Err(RelError::Eval("ModulGain expects 2 arguments".into()));
        };
        let (Some(a), Some(b)) = (a.as_int(), b.as_int()) else {
            return Err(RelError::Eval("ModulGain expects integer community ids".into()));
        };
        let (a, b) = (a as u32, b as u32);
        if a == b {
            return Ok(Value::Float(0.0));
        }
        let m12 = *between.get(&(a.min(b), a.max(b))).unwrap_or(&0) as f64;
        let d1 = *degree_sum.get(&a).unwrap_or(&0) as f64;
        let d2 = *degree_sum.get(&b).unwrap_or(&0) as f64;
        Ok(Value::Float(crate::modularity::delta_mod(m12, d1, d2, m_g)))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{cluster_parallel, ParallelConfig};

    fn two_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j, 1));
                }
            }
        }
        edges.push((3, 4, 1));
        MultiGraph::from_edges(8, edges)
    }

    #[test]
    fn sql_recovers_two_cliques() {
        let g = two_cliques();
        let out = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
        let truth = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(out.assignment.same_partition(&truth));
    }

    #[test]
    fn sql_matches_native_exactly() {
        let g = two_cliques();
        let sql = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
        let native = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(sql.assignment, native.assignment);
        assert_eq!(sql.trace, native.trace);
    }

    #[test]
    fn sql_matches_native_under_parallel_copartitioned_execution() {
        let g = two_cliques();
        let sql = cluster_sql(
            &g,
            &SqlClusterConfig {
                workers: 4,
                join_strategy: JoinStrategy::CoPartitioned,
                ..Default::default()
            },
        )
        .unwrap();
        let native = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(sql.assignment, native.assignment);
    }

    #[test]
    fn stats_registry_sees_the_joins() {
        let g = two_cliques();
        let registry = StatsRegistry::new();
        cluster_sql(
            &g,
            &SqlClusterConfig {
                stats: Some(registry.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let snap = registry.snapshot();
        assert!(snap.iter().any(|s| s.stage == "join"));
        assert!(snap.iter().any(|s| s.stage == "aggregate"));
    }
}
