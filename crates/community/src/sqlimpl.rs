//! SQL-based modularity maximization (§4.2.2, Figure 4) — the paper's
//! headline implementation, executed on the `esharp-relation` engine.
//!
//! Each iteration runs the two declarative statements of Figure 4 through
//! the SQL front-end:
//!
//! ```sql
//! -- Step 1: neighborhood creation
//! neighbors  = select c1.comm_name as comm1, c2.comm_name as comm2,
//!                     ModulGain(c1.comm_name, c2.comm_name) as gain
//!              from graph
//!              inner join communities c1 on c1.query = graph.node1
//!              inner join communities c2 on c2.query = graph.node2
//!              where c1.comm_name <> c2.comm_name
//!                and ModulGain(c1.comm_name, c2.comm_name) > 0;
//! -- Step 2: neighborhood separation
//! partitions = select comm2, argmax(gain, comm1) as owner
//!              from neighbors group by comm2;
//! ```
//!
//! `ModulGain` is registered as a scalar UDF closing over the current
//! partition statistics (equations 8–9). Step 3 — "grouping and renaming
//! … executed in one map-reduce pass" — applies the owner map to the
//! communities table; communities absent from `partitions` (no positive
//! neighbor) keep their name, and mutual selections collapse to the
//! smaller id exactly as in the native implementation
//! ([`crate::parallel::choose_owners`]), so the two paths produce
//! identical partitions iteration for iteration.

use crate::assignment::Assignment;
use crate::modularity::PartitionStats;
use crate::parallel::{ClusteringOutcome, IterationStat};
use esharp_graph::relation_io::multigraph_to_table;
use esharp_graph::MultiGraph;
use esharp_relation::{
    explain_analyze, explain_physical, optimize, plan_sql, BufferPool, Catalog, Cluster, DataType,
    ExecContext, FnUdf, JoinStrategy, PagedTable, PlanHistory, PoolStats, RelError, RelResult,
    StatsRegistry, Value,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of the SQL-based clustering loop.
#[derive(Debug, Clone)]
pub struct SqlClusterConfig {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Worker threads for the parallel joins/aggregations.
    pub workers: usize,
    /// Join strategy for the graph ⋈ communities joins (§4.2.3) — the
    /// planner's fallback; with statistics or history available the
    /// optimizer picks per join.
    pub join_strategy: JoinStrategy,
    /// Optional per-operator statistics sink (Table 9 accounting).
    pub stats: Option<StatsRegistry>,
    /// When set, the graph table is written to an on-disk paged heap
    /// file and every scan streams its pages through a buffer pool of
    /// this many bytes (out-of-core execution). `None` keeps the graph
    /// in memory.
    pub buffer_pool_bytes: Option<usize>,
    /// Memory grant in bytes for blocking operators (sort, hash join,
    /// hash aggregate): an operator whose working set exceeds the grant
    /// spills to disk instead of growing. `None` = never spill.
    pub memory_grant: Option<usize>,
    /// Capture EXPLAIN / EXPLAIN ANALYZE text for the Figure 4
    /// statements (first iteration, plus the history-informed re-plan of
    /// the second), returned in [`SqlRunReport::explain`].
    pub explain: bool,
}

impl Default for SqlClusterConfig {
    fn default() -> Self {
        SqlClusterConfig {
            max_iterations: 20,
            workers: 1,
            join_strategy: JoinStrategy::Broadcast,
            stats: None,
            buffer_pool_bytes: None,
            memory_grant: None,
            explain: false,
        }
    }
}

/// Side-channel observations from [`cluster_sql_report`].
#[derive(Debug, Clone, Default)]
pub struct SqlRunReport {
    /// Buffer-pool counters when the graph ran out-of-core
    /// (`buffer_pool_bytes` was set).
    pub pool: Option<PoolStats>,
    /// EXPLAIN / EXPLAIN ANALYZE text when `explain` was requested.
    pub explain: Option<String>,
}

/// The Figure 4 statements (in this engine's dialect — standard `ON`
/// equality conditions instead of the paper's shorthand `on query2`).
pub const NEIGHBORS_SQL: &str = "\
select c1.comm_name as comm1, c2.comm_name as comm2, \
       ModulGain(c1.comm_name, c2.comm_name) as gain \
from graph \
inner join communities c1 on c1.query = graph.node1 \
inner join communities c2 on c2.query = graph.node2 \
where c1.comm_name <> c2.comm_name \
  and ModulGain(c1.comm_name, c2.comm_name) > 0";

/// Step 2 of Figure 4.
pub const PARTITIONS_SQL: &str =
    "select comm2, argmax(gain, comm1) as owner from neighbors group by comm2";

/// Run the paper's SQL-based clustering on a multigraph.
pub fn cluster_sql(graph: &MultiGraph, config: &SqlClusterConfig) -> RelResult<ClusteringOutcome> {
    cluster_sql_report(graph, config).map(|(outcome, _)| outcome)
}

/// Distinguishes concurrent out-of-core runs sharing one temp dir.
static RUN_ID: AtomicU64 = AtomicU64::new(0);

/// Like [`cluster_sql`], but also returns a [`SqlRunReport`] with
/// buffer-pool counters and (when requested) EXPLAIN output.
pub fn cluster_sql_report(
    graph: &MultiGraph,
    config: &SqlClusterConfig,
) -> RelResult<(ClusteringOutcome, SqlRunReport)> {
    let catalog = Catalog::new();
    let graph_table = multigraph_to_table(graph)?;

    // Working directory for heap and spill files; removed on exit.
    let workdir = std::env::temp_dir().join(format!(
        "esharp-sql-{}-{}",
        std::process::id(),
        RUN_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let needs_disk = config.buffer_pool_bytes.is_some() || config.memory_grant.is_some();
    if needs_disk {
        std::fs::create_dir_all(&workdir)?;
    }

    let pool = match config.buffer_pool_bytes {
        Some(bytes) => {
            let base = workdir.join("graph");
            let paged = Arc::new(PagedTable::create(&base, &graph_table)?);
            let pool = Arc::new(BufferPool::with_capacity_bytes(bytes));
            catalog.register_paged("graph", paged, pool.clone());
            Some(pool)
        }
        None => {
            catalog.register("graph", graph_table);
            None
        }
    };

    // Record stats even when the caller did not ask for them: the measured
    // per-node rows/bytes feed the next iteration's plan (PlanHistory).
    let registry = config.stats.clone().unwrap_or_default();
    let mut ctx = ExecContext::new(catalog)
        .with_cluster(Cluster::new(config.workers))
        .with_join_strategy(config.join_strategy)
        .with_stats(registry.clone());
    if let Some(grant) = config.memory_grant {
        ctx = ctx.with_memory_grant(grant);
    }
    if needs_disk {
        ctx = ctx.with_spill_root(workdir.clone());
    }
    let result = cluster_sql_inner(graph, config, ctx, &registry, pool.as_deref());
    if needs_disk {
        let _ = std::fs::remove_dir_all(&workdir);
    }
    result
}

fn cluster_sql_inner(
    graph: &MultiGraph,
    config: &SqlClusterConfig,
    mut ctx: ExecContext,
    registry: &StatsRegistry,
    pool: Option<&BufferPool>,
) -> RelResult<(ClusteringOutcome, SqlRunReport)> {
    let mut report = SqlRunReport::default();
    let mut explain_text = String::new();
    // Per-statement measured feedback: the two Figure 4 statements keep
    // their plan shape across iterations, so node ids line up and the
    // optimizer can replace its static guesses with measured rows/bytes.
    let mut neighbors_history = PlanHistory::new();
    let mut partitions_history = PlanHistory::new();

    let mut assignment = Assignment::singletons(graph.num_nodes());
    let mut trace = Vec::with_capacity(config.max_iterations + 1);
    trace.push(IterationStat {
        iteration: 0,
        communities: graph.num_nodes(),
        total_modularity: PartitionStats::compute(graph, &assignment).total_modularity(),
        merges: 0,
    });

    for iteration in 1..=config.max_iterations {
        // Register the current communities table and the ModulGain UDF
        // closing over this iteration's partition statistics.
        let stats = PartitionStats::compute(graph, &assignment);
        ctx.catalog.register(
            "communities",
            esharp_graph::relation_io::assignment_to_table(assignment.as_slice())?,
        );
        ctx.udfs.register(make_modulgain_udf(&stats));

        // Step 1 (SQL): neighborhood creation, planned with last
        // iteration's measurements.
        ctx.history = neighbors_history.clone();
        let nplan = plan_sql(NEIGHBORS_SQL, &ctx)?;
        let nphys = optimize(&nplan, &ctx)?;
        if config.explain && iteration <= 2 {
            explain_text.push_str(&format!(
                "-- iteration {iteration}: neighbors (EXPLAIN{})\n{}",
                if iteration == 2 { ", history-informed" } else { "" },
                explain_physical(&nphys)
            ));
        }
        let mark = registry.snapshot().len();
        let neighbors = ctx.execute_physical(&nphys)?;
        let snap = registry.snapshot();
        neighbors_history = PlanHistory::from_stats(&snap[mark..]);
        if config.explain && iteration == 1 {
            explain_text.push_str(&format!(
                "-- iteration 1: neighbors (EXPLAIN ANALYZE)\n{}",
                explain_analyze(&nphys, &snap[mark..])
            ));
        }
        ctx.catalog.register("neighbors", neighbors);

        // Step 2 (SQL): neighborhood separation.
        ctx.history = partitions_history.clone();
        let pplan = plan_sql(PARTITIONS_SQL, &ctx)?;
        let pphys = optimize(&pplan, &ctx)?;
        let mark = registry.snapshot().len();
        let partitions = ctx.execute_physical(&pphys)?;
        let snap = registry.snapshot();
        partitions_history = PlanHistory::from_stats(&snap[mark..]);
        if config.explain && iteration == 1 {
            explain_text.push_str(&format!(
                "-- iteration 1: partitions (EXPLAIN ANALYZE)\n{}",
                explain_analyze(&pphys, &snap[mark..])
            ));
        }

        // Step 3: aggregation/renaming.
        let mut owners: HashMap<u32, u32> = HashMap::with_capacity(partitions.num_rows());
        let comm_col = partitions.column_by_name("comm2")?;
        let owner_col = partitions.column_by_name("owner")?;
        for row in 0..partitions.num_rows() {
            let c = comm_col
                .value(row)
                .as_int()
                .ok_or_else(|| RelError::Eval("non-int community".into()))? as u32;
            let o = owner_col
                .value(row)
                .as_int()
                .ok_or_else(|| RelError::Eval("non-int owner".into()))? as u32;
            owners.insert(c, o);
        }
        // Mutual selections collapse to the smaller id (same repair as the
        // native path; see `choose_owners`).
        let snapshot: Vec<(u32, u32)> = owners.iter().map(|(&c, &o)| (c, o)).collect();
        for (c, o) in snapshot {
            if owners.get(&o) == Some(&c) {
                let target = c.min(o);
                owners.insert(c, target);
                owners.insert(o, target);
            }
        }

        let mut merges = 0;
        let mut renamed = assignment.clone();
        for node in 0..graph.num_nodes() as u32 {
            let c = assignment.community_of(node);
            if let Some(&owner) = owners.get(&c) {
                if owner != c {
                    renamed.set(node, owner);
                }
            }
        }
        for (&c, &owner) in &owners {
            if owner != c {
                merges += 1;
            }
        }
        if merges == 0 || renamed.same_partition(&assignment) {
            break;
        }
        assignment = renamed;
        let after = PartitionStats::compute(graph, &assignment);
        trace.push(IterationStat {
            iteration,
            communities: after.num_communities(),
            total_modularity: after.total_modularity(),
            merges,
        });
    }

    report.pool = pool.map(|p| p.stats());
    if config.explain {
        report.explain = Some(explain_text);
    }
    Ok((ClusteringOutcome { assignment, trace }, report))
}

/// Build the `ModulGain(comm1, comm2)` scalar UDF over a snapshot of the
/// current partition statistics.
fn make_modulgain_udf(stats: &PartitionStats) -> Arc<FnUdf<impl Fn(&[Value]) -> RelResult<Value> + Send + Sync>> {
    let degree_sum: Arc<HashMap<u32, u64>> = Arc::new(stats.degree_sum.clone());
    let between: Arc<HashMap<(u32, u32), u64>> = Arc::new(stats.between_edges.clone());
    let m_g = stats.total_edges as f64;
    Arc::new(FnUdf::new("ModulGain", DataType::Float, move |args| {
        let [a, b] = args else {
            return Err(RelError::Eval("ModulGain expects 2 arguments".into()));
        };
        let (Some(a), Some(b)) = (a.as_int(), b.as_int()) else {
            return Err(RelError::Eval("ModulGain expects integer community ids".into()));
        };
        let (a, b) = (a as u32, b as u32);
        if a == b {
            return Ok(Value::Float(0.0));
        }
        let m12 = *between.get(&(a.min(b), a.max(b))).unwrap_or(&0) as f64;
        let d1 = *degree_sum.get(&a).unwrap_or(&0) as f64;
        let d2 = *degree_sum.get(&b).unwrap_or(&0) as f64;
        Ok(Value::Float(crate::modularity::delta_mod(m12, d1, d2, m_g)))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{cluster_parallel, ParallelConfig};

    fn two_cliques() -> MultiGraph {
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for i in 0..4 {
                for j in i + 1..4 {
                    edges.push((base + i, base + j, 1));
                }
            }
        }
        edges.push((3, 4, 1));
        MultiGraph::from_edges(8, edges)
    }

    #[test]
    fn sql_recovers_two_cliques() {
        let g = two_cliques();
        let out = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
        let truth = Assignment::from_vec(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert!(out.assignment.same_partition(&truth));
    }

    #[test]
    fn sql_matches_native_exactly() {
        let g = two_cliques();
        let sql = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
        let native = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(sql.assignment, native.assignment);
        assert_eq!(sql.trace, native.trace);
    }

    #[test]
    fn sql_matches_native_under_parallel_copartitioned_execution() {
        let g = two_cliques();
        let sql = cluster_sql(
            &g,
            &SqlClusterConfig {
                workers: 4,
                join_strategy: JoinStrategy::CoPartitioned,
                ..Default::default()
            },
        )
        .unwrap();
        let native = cluster_parallel(&g, &ParallelConfig::default());
        assert_eq!(sql.assignment, native.assignment);
    }

    #[test]
    fn out_of_core_matches_in_memory_bit_for_bit() {
        let g = two_cliques();
        let mem = cluster_sql(&g, &SqlClusterConfig::default()).unwrap();
        // Tiny pool (2 pages) and tiny grant force paging and spilling.
        let (ooc, report) = cluster_sql_report(
            &g,
            &SqlClusterConfig {
                buffer_pool_bytes: Some(2 * 8192),
                memory_grant: Some(256),
                explain: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(mem.assignment, ooc.assignment);
        assert_eq!(mem.trace, ooc.trace);
        let pool = report.pool.expect("paged run must report pool stats");
        assert!(pool.hits + pool.misses > 0);
        let text = report.explain.expect("explain was requested");
        assert!(text.contains("EXPLAIN ANALYZE"));
        assert!(text.contains("SeqScan: graph"));
        assert!(text.contains("actual:"));
        assert!(text.contains("history-informed"));
    }

    #[test]
    fn stats_registry_sees_the_joins() {
        let g = two_cliques();
        let registry = StatsRegistry::new();
        cluster_sql(
            &g,
            &SqlClusterConfig {
                stats: Some(registry.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        let snap = registry.snapshot();
        assert!(snap.iter().any(|s| s.stage == "join"));
        assert!(snap.iter().any(|s| s.stage == "aggregate"));
    }
}
