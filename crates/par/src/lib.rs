//! # esharp-par
//!
//! Deterministic data-parallel primitives for the e# offline pipeline.
//!
//! The paper's offline stage is an explicitly parallel map-reduce over
//! hundreds of machines (§4.2, Figure 3); this crate is the single-node
//! analog: a **persistent** thread pool (built once, reused across every
//! operator call — no per-call thread spawning) plus ordered chunk
//! map/reduce helpers that obey the repository's deterministic-parallel-
//! reduction rule (see `PERF.md`):
//!
//! 1. **Fixed chunking** — chunk boundaries depend only on the input
//!    length, never on the worker count ([`chunk_ranges`]).
//! 2. **Ordered merge** — per-chunk results are returned (and therefore
//!    reduced) in chunk-index order, so floating-point accumulation order
//!    is identical at any worker count.
//! 3. **No map-iteration-order dependence** — accumulators are flat
//!    vectors or dense arrays, never `HashMap`s whose iteration order
//!    could leak into results.
//!
//! The pool is intentionally rayon-shaped ([`ThreadPool::run`] ≈
//! `scope`+`spawn`, [`ThreadPool::map_chunks`] ≈ `par_chunks().map()`
//! with an ordered collect) so the implementation can be swapped for
//! rayon wholesale if the crate ever becomes available to the build; the
//! deterministic contracts above are the part that must survive such a
//! swap. It is std-only, which keeps the offline build hermetic.
//!
//! Worker accounting matches the paper's "number of machines" notion: a
//! pool of `workers = N` uses the calling thread plus `N - 1` pool
//! threads, so `workers = 1` is exactly the serial path (no queue, no
//! synchronization).

use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<std::collections::VecDeque<Job>>,
    ready: Condvar,
    shutdown: std::sync::atomic::AtomicBool,
}

/// A persistent pool of worker threads with a caller-runs submission
/// model: `run` enqueues tasks, then the calling thread helps drain the
/// queue until its own batch completes. Nested `run` calls from inside
/// pool tasks are safe (the nested caller also helps, so the pool cannot
/// deadlock on itself).
pub struct ThreadPool {
    workers: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ThreadPool {
    /// A pool with `workers` logical workers (minimum 1). `workers - 1`
    /// OS threads are spawned; the caller is the remaining worker.
    pub fn new(workers: usize) -> ThreadPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(std::collections::VecDeque::new()),
            ready: Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let handles = (1..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("esharp-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            workers,
            shared,
            handles,
        }
    }

    /// Logical worker count (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every task, returning results in **task order** regardless
    /// of completion order. Tasks may borrow from the caller's stack; all
    /// tasks are guaranteed to finish before `run` returns. A panicking
    /// task is resumed on the caller once the rest of the batch finishes.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers == 1 || n == 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }

        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        {
            let mut queue = self.shared.queue.lock().unwrap();
            for (index, task) in tasks.into_iter().enumerate() {
                let tx: Sender<(usize, std::thread::Result<T>)> = tx.clone();
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task));
                    let _ = tx.send((index, result));
                });
                // SAFETY: `run` blocks until every task in this batch has
                // sent its result, and workers drop each job immediately
                // after executing it, so no borrow in `job` outlives this
                // call even though the queue's element type is 'static.
                let job: Job = unsafe { std::mem::transmute(job) };
                queue.push_back(job);
            }
        }
        drop(tx);
        self.shared.ready.notify_all();

        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        while received < n {
            // Caller-runs: prefer doing queued work over sleeping.
            let job = self.shared.queue.lock().unwrap().pop_front();
            let worked = job.is_some();
            if let Some(job) = job {
                job();
            }
            while let Ok((index, result)) = rx.try_recv() {
                slots[index] = Some(result);
                received += 1;
            }
            if !worked && received < n {
                // Queue empty: the outstanding tasks are running on pool
                // threads; block until one reports.
                match rx.recv() {
                    Ok((index, result)) => {
                        slots[index] = Some(result);
                        received += 1;
                    }
                    Err(_) => unreachable!("a task sender was dropped without sending"),
                }
            }
        }

        slots
            .into_iter()
            .map(|slot| match slot.expect("batch slot unfilled") {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }

    /// Apply `f` to fixed-size chunks of `items` in parallel and return
    /// the per-chunk results in **chunk order**. Chunk boundaries come
    /// from [`chunk_ranges`], so they depend only on `items.len()` and
    /// `chunk` — reducing the returned vector left-to-right therefore
    /// yields bit-identical floats at any worker count.
    pub fn map_chunks<'data, T, R, F>(&self, items: &'data [T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data [T]) -> R + Sync,
    {
        let f = &f;
        let tasks: Vec<_> = chunk_ranges(items.len(), chunk)
            .into_iter()
            .map(|range| {
                let slice = &items[range];
                move || f(slice)
            })
            .collect();
        self.run(tasks)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.shared.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                queue = shared.ready.wait(queue).unwrap();
            }
        };
        // Task panics are captured inside the job (see `run`), so the
        // worker itself never unwinds.
        job();
    }
}

/// Split `0..len` into contiguous ranges of `chunk` elements (the last
/// range may be shorter). Boundaries are a pure function of `len` and
/// `chunk` — the foundation of the fixed-chunking determinism rule.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Default chunk size for parallelizing over `len` items: aims for enough
/// chunks to load-balance 8 workers with task overpartitioning, while
/// keeping chunks coarse enough that queue traffic stays negligible.
/// Depends only on `len` (never on the worker count), as the determinism
/// rule requires.
pub fn default_chunk(len: usize) -> usize {
    len.div_ceil(64).max(256)
}

/// The host's available hardware parallelism (1 when undetectable).
/// Default worker counts clamp to this so a 2-core container doesn't
/// spawn an 8-thread pool that only adds contention; explicit worker
/// settings are never clamped — determinism contracts key on the
/// requested count, and oversubscription is a legitimate test setup.
pub fn detected_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

static POOLS: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();

/// The process-wide pool for a given worker count, built on first use and
/// reused for every subsequent request — callers at the same parallelism
/// level share one set of threads instead of respawning per operator.
pub fn shared_pool(workers: usize) -> Arc<ThreadPool> {
    let workers = workers.max(1);
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut pools = pools.lock().unwrap();
    Arc::clone(
        pools
            .entry(workers)
            .or_insert_with(|| Arc::new(ThreadPool::new(workers))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_preserves_task_order() {
        let pool = ThreadPool::new(4);
        let tasks: Vec<_> = (0..100u64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                    i * i
                }
            })
            .collect();
        let results = pool.run(tasks);
        assert_eq!(results, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_borrows_caller_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..10_000).collect();
        let chunks: Vec<&[u64]> = data.chunks(1000).collect();
        let sums = pool.run(
            chunks
                .iter()
                .map(|slice| move || slice.iter().sum::<u64>())
                .collect(),
        );
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn serial_pool_never_touches_the_queue() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 1);
        let out = pool.run(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
        assert!(pool.shared.queue.lock().unwrap().is_empty());
        assert!(pool.handles.is_empty());
    }

    #[test]
    fn map_chunks_matches_serial_fold_bitexact() {
        // Floating-point: parallel ordered reduction must equal the
        // serial left-to-right fold bit for bit.
        let data: Vec<f64> = (0..50_000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let serial: f64 = data.iter().sum();
        for workers in [1, 2, 4, 8] {
            let pool = ThreadPool::new(workers);
            let partial = pool.map_chunks(&data, 1013, |chunk| chunk.iter().sum::<f64>());
            let total: f64 = partial.into_iter().sum();
            // Identical chunking + ordered merge => identical bits.
            let reference: f64 = chunk_ranges(data.len(), 1013)
                .into_iter()
                .map(|r| data[r].iter().sum::<f64>())
                .sum();
            assert_eq!(total.to_bits(), reference.to_bits(), "workers={workers}");
            let _ = serial; // serial differs in grouping; reference is the contract
        }
    }

    #[test]
    fn map_chunks_is_worker_count_invariant() {
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sqrt()).collect();
        let chunk = default_chunk(data.len());
        let baseline: Vec<f64> = ThreadPool::new(1)
            .map_chunks(&data, chunk, |c| c.iter().sum::<f64>());
        for workers in [2, 3, 8] {
            let pool = ThreadPool::new(workers);
            let out = pool.map_chunks(&data, chunk, |c| c.iter().sum::<f64>());
            let same = baseline
                .iter()
                .zip(&out)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "workers={workers} diverged");
        }
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(4));
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                move || {
                    let inner = pool.run((0..4).map(|j| move || i * 10 + j).collect::<Vec<_>>());
                    inner.into_iter().sum::<i32>()
                }
            })
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out.len(), 8);
        for (i, total) in out.into_iter().enumerate() {
            assert_eq!(total, (0..4).map(|j| i as i32 * 10 + j).sum::<i32>());
        }
    }

    #[test]
    fn panicking_task_propagates_after_batch_completes() {
        let pool = ThreadPool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let completed = Arc::clone(&completed);
            pool.run(
                (0..8)
                    .map(|i| {
                        let completed = Arc::clone(&completed);
                        move || {
                            if i == 3 {
                                panic!("boom");
                            }
                            completed.fetch_add(1, Ordering::SeqCst);
                            i
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(completed.load(Ordering::SeqCst), 7, "batch must finish");
    }

    #[test]
    fn shared_pool_is_cached_per_worker_count() {
        let a = shared_pool(3);
        let b = shared_pool(3);
        assert!(Arc::ptr_eq(&a, &b));
        let c = shared_pool(5);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.workers(), 5);
        assert_eq!(shared_pool(0).workers(), 1);
    }

    #[test]
    fn chunk_ranges_tile_the_input() {
        assert_eq!(chunk_ranges(0, 10), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(10, 3), vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(chunk_ranges(9, 3), vec![0..3, 3..6, 6..9]);
        assert_eq!(chunk_ranges(5, 100), vec![0..5]);
        // chunk=0 is clamped, not a panic.
        assert_eq!(chunk_ranges(2, 0), vec![0..1, 1..2]);
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = ThreadPool::new(4);
        for round in 0..50usize {
            let out = pool.run((0..16).map(|i| move || i + round).collect::<Vec<_>>());
            assert_eq!(out, (0..16).map(|i| i + round).collect::<Vec<_>>());
        }
    }
}
