//! Seed-driven chaos: latency, stalls, and panics at named seams.
//!
//! Where [`crate::FaultPlan`] injects *I/O failures* into persistence
//! writes, a [`ChaosPlan`] injects *misbehaviour in time and control
//! flow* into the online request path — a shard task that answers late
//! ([`ChaosFault::Delay`]), one that never answers within any budget
//! ([`ChaosFault::Stall`]), or one that dies mid-request
//! ([`ChaosFault::Panic`]). The same determinism contract applies:
//! whether chaos fires at a given `(site, attempt)` is a pure function
//! of `(seed, site, attempt)` plus explicit triggers, never of wall
//! time or interleaving, so every chaos run replays from its seed.
//!
//! ## Sites
//!
//! The online path consults three seam families (ROBUSTNESS.md):
//!
//! * `search:shard:<i>` — one shard's union task in the scatter-gather
//!   fan-out; `attempt` 0 is the primary task, 1 its hedged duplicate,
//! * `serve:worker` — inside a serve worker's request handler (under
//!   `catch_unwind`, so a panic here answers 500),
//! * `serve:conn` — a serve worker's connection loop *outside* the
//!   unwind guard (a panic here kills the thread and exercises
//!   supervision/resurrection).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::{fnv64, splitmix64};
use std::sync::atomic::{AtomicU32, Ordering::SeqCst};
use std::sync::Mutex;

/// One injected misbehaviour at a chaos seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The task is charged `us` extra ticks of latency before its work
    /// counts — on a wall clock this is a real sleep, on a virtual
    /// clock a pure budget charge.
    Delay {
        /// Injected latency in clock ticks (microseconds).
        us: u64,
    },
    /// The task never answers within any finite budget: it waits until
    /// cancelled/deadline and abandons. Models a wedged shard.
    Stall,
    /// The task panics. What happens next is the seam's contract:
    /// contained to a 500 at `serve:worker`, thread death + resurrection
    /// at `serve:conn`, a recorded shard miss at `search:shard:*`.
    Panic,
}

/// Decides, per `(site, attempt)`, whether chaos is injected.
///
/// Same determinism contract as [`crate::FaultInjector`]: decisions must
/// be pure in `(site, attempt)` and injector state, independent of call
/// order — the chaos matrix replays runs and compares response bodies
/// bit-for-bit.
pub trait ChaosInjector: Send + Sync {
    /// The chaos to inject at `site` on `attempt` (0-based), if any.
    fn chaos_at(&self, site: &str, attempt: u32) -> Option<ChaosFault>;
}

/// The production injector: never injects anything; every hook inlines
/// to `None` so the hardened request path costs nothing by default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChaos;

impl ChaosInjector for NoChaos {
    #[inline(always)]
    fn chaos_at(&self, _site: &str, _attempt: u32) -> Option<ChaosFault> {
        None
    }
}

/// Per-consultation chaos probabilities for the randomized layer of a
/// [`ChaosPlan`], evaluated in the order `delay`, `stall`, `panic`
/// against independent seeded draws.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosRates {
    /// Probability of an injected delay.
    pub delay: f64,
    /// Injected delays are uniform in `[1, delay_max_us]` ticks.
    pub delay_max_us: u64,
    /// Probability of a stall.
    pub stall: f64,
    /// Probability of a panic.
    pub panic: f64,
}

/// A deterministic, seed-driven chaos schedule, mirroring
/// [`crate::FaultPlan`]:
///
/// 1. **Explicit triggers** (`trigger`, `trigger_limited`, `stall_at`,
///    `panic_at`) — fire a given chaos at an exact `(site, attempt)`;
///    sites ending in `*` match by prefix. `trigger_limited` caps how
///    many times a trigger fires in total, which is how a bench scripts
///    "shard 2 is sick for its first N requests, then recovers" to
///    exercise a breaker's trip → half-open → close arc.
/// 2. **Seeded rates** (`with_rates`) — every `(site, attempt)` draws
///    from `splitmix64(seed ⊕ fnv64(site) ⊕ attempt)`, stateless and
///    order-independent.
#[derive(Debug, Default)]
pub struct ChaosPlan {
    seed: u64,
    triggers: Vec<Trigger>,
    rates: ChaosRates,
    /// Sites consulted so far (site, attempt, injected) — lets tests
    /// assert which seams a request actually crossed.
    consulted: Mutex<Vec<(String, u32, bool)>>,
}

#[derive(Debug)]
struct Trigger {
    site: String,
    attempt: Option<u32>,
    fault: ChaosFault,
    /// Remaining firings; `u32::MAX` means unlimited.
    remaining: AtomicU32,
}

impl ChaosPlan {
    /// An empty plan (no chaos) with the given seed for the rate layer.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Add an explicit chaos at `(site, attempt)`. `site` may end in `*`
    /// for prefix matching.
    pub fn trigger(self, site: &str, attempt: u32, fault: ChaosFault) -> ChaosPlan {
        self.push(site, Some(attempt), fault, u32::MAX)
    }

    /// Like [`ChaosPlan::trigger`] but fires at **every** attempt of the
    /// site, at most `limit` times in total across all consultations.
    /// The count-down is the one piece of plan state that is not pure in
    /// `(site, attempt)`; it exists so benches and breaker tests can
    /// model a shard that is sick for a while and then heals.
    pub fn trigger_limited(self, site: &str, fault: ChaosFault, limit: u32) -> ChaosPlan {
        self.push(site, None, fault, limit)
    }

    /// Sugar: stall `site`'s primary attempt.
    pub fn stall_at(self, site: &str) -> ChaosPlan {
        self.trigger(site, 0, ChaosFault::Stall)
    }

    /// Sugar: panic `site`'s primary attempt.
    pub fn panic_at(self, site: &str) -> ChaosPlan {
        self.trigger(site, 0, ChaosFault::Panic)
    }

    fn push(
        mut self,
        site: &str,
        attempt: Option<u32>,
        fault: ChaosFault,
        limit: u32,
    ) -> ChaosPlan {
        self.triggers.push(Trigger {
            site: site.to_string(),
            attempt,
            fault,
            remaining: AtomicU32::new(limit),
        });
        self
    }

    /// Enable the seeded random layer with the given rates.
    pub fn with_rates(mut self, rates: ChaosRates) -> ChaosPlan {
        self.rates = rates;
        self
    }

    /// Every `(site, attempt, fired)` consultation so far, in order.
    pub fn consulted(&self) -> Vec<(String, u32, bool)> {
        self.consulted.lock().map(|g| g.clone()).unwrap_or_default()
    }

    fn decide(&self, site: &str, attempt: u32) -> Option<ChaosFault> {
        for t in &self.triggers {
            if let Some(at) = t.attempt {
                if at != attempt {
                    continue;
                }
            }
            let hit = match t.site.strip_suffix('*') {
                Some(prefix) => site.starts_with(prefix),
                None => t.site == site,
            };
            if !hit {
                continue;
            }
            // Claim one firing; a spent limited trigger falls through.
            let claimed = t
                .remaining
                .fetch_update(SeqCst, SeqCst, |n| match n {
                    0 => None,
                    u32::MAX => Some(u32::MAX),
                    n => Some(n - 1),
                })
                .is_ok();
            if claimed {
                return Some(t.fault);
            }
        }
        let rates = &self.rates;
        if rates.delay == 0.0 && rates.stall == 0.0 && rates.panic == 0.0 {
            return None;
        }
        let base = self.seed ^ fnv64(site.as_bytes()) ^ (attempt as u64).wrapping_mul(0x9e37);
        let unit =
            |salt: u64| -> f64 { (splitmix64(base ^ salt) >> 11) as f64 / (1u64 << 53) as f64 };
        if unit(11) < rates.delay {
            let span = rates.delay_max_us.max(1);
            return Some(ChaosFault::Delay {
                us: splitmix64(base ^ 12) % span + 1,
            });
        }
        if unit(13) < rates.stall {
            return Some(ChaosFault::Stall);
        }
        if unit(15) < rates.panic {
            return Some(ChaosFault::Panic);
        }
        None
    }
}

impl ChaosInjector for ChaosPlan {
    fn chaos_at(&self, site: &str, attempt: u32) -> Option<ChaosFault> {
        let fault = self.decide(site, attempt);
        if let Ok(mut log) = self.consulted.lock() {
            log.push((site.to_string(), attempt, fault.is_some()));
        }
        fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_chaos_is_silent() {
        assert_eq!(NoChaos.chaos_at("search:shard:0", 0), None);
        assert_eq!(NoChaos.chaos_at("serve:worker", 3), None);
    }

    #[test]
    fn triggers_match_exactly_and_by_prefix() {
        let plan = ChaosPlan::new(1)
            .stall_at("search:shard:2")
            .trigger("serve:*", 1, ChaosFault::Panic);
        assert_eq!(plan.chaos_at("search:shard:2", 0), Some(ChaosFault::Stall));
        assert_eq!(plan.chaos_at("search:shard:2", 1), None, "hedge is clean");
        assert_eq!(plan.chaos_at("search:shard:1", 0), None);
        assert_eq!(plan.chaos_at("serve:worker", 1), Some(ChaosFault::Panic));
        assert_eq!(plan.chaos_at("serve:worker", 0), None);
    }

    #[test]
    fn limited_triggers_fire_exactly_limit_times_then_heal() {
        let plan = ChaosPlan::new(0).trigger_limited(
            "search:shard:1",
            ChaosFault::Delay { us: 500 },
            3,
        );
        let mut fired = 0;
        for attempt in 0..8u32 {
            if plan.chaos_at("search:shard:1", attempt).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3, "limited trigger must fire exactly `limit` times");
        assert_eq!(plan.chaos_at("search:shard:1", 99), None, "healed");
    }

    #[test]
    fn limited_trigger_fires_at_any_attempt() {
        let plan = ChaosPlan::new(0).trigger_limited("s", ChaosFault::Stall, 2);
        assert_eq!(plan.chaos_at("s", 7), Some(ChaosFault::Stall));
        assert_eq!(plan.chaos_at("s", 0), Some(ChaosFault::Stall));
        assert_eq!(plan.chaos_at("s", 1), None);
    }

    #[test]
    fn seeded_rates_are_deterministic_and_order_independent() {
        let rates = ChaosRates {
            delay: 0.3,
            delay_max_us: 10_000,
            stall: 0.1,
            panic: 0.1,
        };
        let sites = ["search:shard:0", "search:shard:1", "serve:worker"];
        let consult = |plan: &ChaosPlan, reversed: bool| -> Vec<Option<ChaosFault>> {
            let mut queries: Vec<(&str, u32)> = sites
                .iter()
                .flat_map(|&s| (0..6).map(move |at| (s, at)))
                .collect();
            if reversed {
                queries.reverse();
            }
            let mut out: Vec<_> = queries
                .into_iter()
                .map(|(s, at)| plan.chaos_at(s, at))
                .collect();
            if reversed {
                out.reverse();
            }
            out
        };
        let a = ChaosPlan::new(42).with_rates(rates);
        let b = ChaosPlan::new(42).with_rates(rates);
        let forward = consult(&a, false);
        assert_eq!(forward, consult(&b, true));
        assert!(forward.iter().any(|f| f.is_some()), "rates must fire somewhere");
        assert!(
            forward
                .iter()
                .all(|f| !matches!(f, Some(ChaosFault::Delay { us: 0 }))),
            "injected delays are non-zero"
        );
        let c = ChaosPlan::new(43).with_rates(rates);
        assert_ne!(forward, consult(&c, false));
    }

    #[test]
    fn consulted_log_records_seams_in_order() {
        let plan = ChaosPlan::new(0).stall_at("search:shard:1");
        let _ = plan.chaos_at("search:shard:0", 0);
        let _ = plan.chaos_at("search:shard:1", 0);
        assert_eq!(
            plan.consulted(),
            vec![
                ("search:shard:0".into(), 0, false),
                ("search:shard:1".into(), 0, true)
            ]
        );
    }
}
