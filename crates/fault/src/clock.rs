//! Injectable time: the tick source behind every deadline, hedge delay
//! and breaker cool-down in the request-lifecycle hardening layer.
//!
//! Production code runs on [`WallClock`] (monotonic microseconds since
//! process start, waits are real sleeps). Tests run on [`VirtualClock`],
//! whose `now` only moves when a test advances it and whose waits return
//! *instantly* — injected latency is **charged to the waiting task's
//! budget, never slept** — so the chaos matrix is clock-free: a stalled
//! shard exhausts its budget in nanoseconds of real time, deterministic
//! at any thread interleaving, and a suite sweeping hundreds of
//! stall × deadline × hedge combinations finishes without a single
//! `sleep`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic microsecond tick source plus a cancellable wait.
///
/// Implementations must be monotonic (ticks never decrease) and
/// `wait_us` must return the number of ticks the wait consumed **on this
/// clock** — a real clock sleeps and reports real elapsed time, a
/// virtual clock reports the requested ticks without sleeping, leaving
/// it to the caller to charge them against a [`crate::Budget`].
pub trait TickSource: Send + Sync + std::fmt::Debug {
    /// Monotonic ticks (microseconds) now.
    fn now_us(&self) -> u64;

    /// Wait up to `us` ticks, returning early as soon as `release()`
    /// turns true (checked at bounded intervals). Returns the ticks this
    /// wait consumed on this clock.
    fn wait_us(&self, us: u64, release: &(dyn Fn() -> bool + Sync)) -> u64;
}

/// Real time: microseconds since an epoch instant, real sleeps.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A fresh wall clock (epoch = now).
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }

    /// The process-wide shared wall clock (built on first use).
    pub fn shared() -> Arc<WallClock> {
        static SHARED: OnceLock<Arc<WallClock>> = OnceLock::new();
        Arc::clone(SHARED.get_or_init(|| Arc::new(WallClock::new())))
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

/// How often a real wait re-checks its release condition.
const WAIT_SLICE: Duration = Duration::from_millis(1);

impl TickSource for WallClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn wait_us(&self, us: u64, release: &(dyn Fn() -> bool + Sync)) -> u64 {
        let started = self.now_us();
        let deadline = started.saturating_add(us);
        while self.now_us() < deadline && !release() {
            let remaining = deadline - self.now_us();
            std::thread::sleep(WAIT_SLICE.min(Duration::from_micros(remaining)));
        }
        self.now_us().saturating_sub(started)
    }
}

/// Simulated time for deterministic tests: `now` moves only via
/// [`VirtualClock::advance_us`], and waits return the requested ticks
/// immediately **without advancing the shared clock** — virtual latency
/// is a per-task charge, not a global side effect, so concurrent tasks
/// never race on simulated time and a chaos run's outcome is a pure
/// function of its plan.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at tick 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advance simulated time by `us` ticks (test-driven; e.g. to expire
    /// a breaker's open window).
    pub fn advance_us(&self, us: u64) {
        self.now.fetch_add(us, SeqCst);
    }
}

impl TickSource for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now.load(SeqCst)
    }

    fn wait_us(&self, us: u64, release: &(dyn Fn() -> bool + Sync)) -> u64 {
        if release() {
            return 0;
        }
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn wall_clock_is_monotonic_and_waits() {
        let clock = WallClock::new();
        let a = clock.now_us();
        let waited = clock.wait_us(2_000, &|| false);
        let b = clock.now_us();
        assert!(b >= a + waited.min(2_000) || waited >= 1_000);
        assert!(waited >= 1_000, "a 2ms wait must really wait, got {waited}µs");
    }

    #[test]
    fn wall_clock_wait_releases_early() {
        let clock = WallClock::new();
        let released = AtomicBool::new(true);
        let waited = clock.wait_us(1_000_000, &|| released.load(SeqCst));
        assert!(waited < 100_000, "released wait must not run its course");
    }

    #[test]
    fn virtual_clock_never_sleeps_and_never_self_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_us(), 0);
        let started = Instant::now();
        let charged = clock.wait_us(10_000_000, &|| false);
        assert_eq!(charged, 10_000_000, "virtual waits charge in full");
        assert_eq!(clock.now_us(), 0, "waits must not move shared time");
        assert!(started.elapsed() < Duration::from_secs(1));
        clock.advance_us(500);
        assert_eq!(clock.now_us(), 500);
        assert_eq!(clock.wait_us(99, &|| true), 0, "released waits charge nothing");
    }

    #[test]
    fn shared_wall_clock_is_a_singleton() {
        assert!(Arc::ptr_eq(&WallClock::shared(), &WallClock::shared()));
    }
}
