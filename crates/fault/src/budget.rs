//! Request budgets: the deadline every admitted request carries through
//! the online path (ROBUSTNESS.md guarantee 9).
//!
//! A [`Budget`] is an absolute limit in ticks of an injectable
//! [`TickSource`] plus a shared cancellation flag. Work units (shard
//! tasks, response writers) check it at chunk boundaries and abandon
//! work past the deadline; injected *virtual* latency is charged through
//! the `charged` argument of [`Budget::expired_with`], so on a
//! [`crate::VirtualClock`] a stalled task deterministically exhausts its
//! budget without any thread ever sleeping.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::clock::{TickSource, WallClock};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

/// A per-request deadline on an injectable clock, plus a cancellation
/// token shared by every task working on the request.
#[derive(Debug, Clone)]
pub struct Budget {
    clock: Arc<dyn TickSource>,
    start_us: u64,
    limit_us: u64,
    cancel: Arc<AtomicBool>,
}

impl Budget {
    /// A budget of `limit` real time on the shared wall clock.
    pub fn wall(limit: Duration) -> Budget {
        Budget::with_clock(
            WallClock::shared(),
            u64::try_from(limit.as_micros()).unwrap_or(u64::MAX),
        )
    }

    /// A budget of `limit_us` ticks on the given clock, starting now.
    pub fn with_clock(clock: Arc<dyn TickSource>, limit_us: u64) -> Budget {
        let start_us = clock.now_us();
        Budget {
            clock,
            start_us,
            limit_us,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The clock this budget ticks on.
    pub fn clock(&self) -> &Arc<dyn TickSource> {
        &self.clock
    }

    /// The total limit in ticks.
    pub fn limit_us(&self) -> u64 {
        self.limit_us
    }

    /// Ticks consumed on the clock since the budget started (excludes
    /// any per-task virtual charge).
    pub fn elapsed_us(&self) -> u64 {
        self.clock.now_us().saturating_sub(self.start_us)
    }

    /// Cancel the request: every task checking this budget abandons at
    /// its next chunk boundary.
    pub fn cancel(&self) {
        self.cancel.store(true, SeqCst);
    }

    /// Whether the request was cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(SeqCst)
    }

    /// Whether the deadline has passed (or the request was cancelled).
    pub fn expired(&self) -> bool {
        self.expired_with(0)
    }

    /// [`Budget::expired`] with `charged` extra ticks of task-local
    /// virtual latency counted against the limit — the seam that makes
    /// injected delays deterministic on a virtual clock.
    pub fn expired_with(&self, charged: u64) -> bool {
        self.cancelled() || self.elapsed_us().saturating_add(charged) >= self.limit_us
    }

    /// Ticks left before the deadline, after `charged` extra virtual
    /// ticks (0 when expired or cancelled).
    pub fn remaining_us_with(&self, charged: u64) -> u64 {
        if self.cancelled() {
            return 0;
        }
        self.limit_us
            .saturating_sub(self.elapsed_us().saturating_add(charged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn virtual_budget_expires_only_by_charge_or_advance() {
        let clock = Arc::new(VirtualClock::new());
        let budget = Budget::with_clock(clock.clone(), 1_000);
        assert!(!budget.expired());
        assert_eq!(budget.remaining_us_with(0), 1_000);
        assert!(!budget.expired_with(999));
        assert!(budget.expired_with(1_000), "charge counts against the limit");
        clock.advance_us(1_000);
        assert!(budget.expired(), "advanced clock expires the budget");
        assert_eq!(budget.remaining_us_with(0), 0);
    }

    #[test]
    fn cancellation_expires_immediately() {
        let budget = Budget::with_clock(Arc::new(VirtualClock::new()), u64::MAX);
        assert!(!budget.expired());
        budget.cancel();
        assert!(budget.cancelled());
        assert!(budget.expired());
        assert_eq!(budget.remaining_us_with(0), 0);
    }

    #[test]
    fn clones_share_the_cancellation_token() {
        let budget = Budget::with_clock(Arc::new(VirtualClock::new()), 100);
        let other = budget.clone();
        other.cancel();
        assert!(budget.cancelled());
    }

    #[test]
    fn wall_budget_tracks_real_time() {
        let budget = Budget::wall(Duration::from_millis(50));
        assert!(!budget.expired());
        assert!(budget.remaining_us_with(0) > 0);
    }
}
