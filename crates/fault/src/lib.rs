//! # esharp-fault
//!
//! Deterministic fault injection for the e# persistence and checkpoint
//! paths.
//!
//! The paper's offline stage is a weekly job over 65 VMs and 998 GB of
//! logs (§6, Table 9); at that scale partial failure is the normal case,
//! not the exception. This crate provides the testing substrate the
//! crash-safety layer (see `ROBUSTNESS.md`) is validated against:
//!
//! * a [`FaultInjector`] trait threaded through every persistence and
//!   checkpoint write in the pipeline,
//! * [`NoFaults`], the zero-cost production injector (every hook inlines
//!   to `None`, so default builds pay nothing),
//! * [`FaultPlan`], a **seed-driven deterministic** plan mirroring the
//!   `esharp-par` determinism contract: whether a fault fires at a given
//!   `(site, attempt)` is a pure function of `(seed, site, attempt)` —
//!   never of wall-clock time, thread interleaving or call order — so
//!   every injected failure is replayable from its seed alone,
//! * [`RetryPolicy`], a bounded deterministic retry loop for faults
//!   marked *transient*.
//!
//! ## Sites
//!
//! Injection points are named by string **sites**. The pipeline uses
//! three families (documented in `ROBUSTNESS.md`):
//!
//! * `write:<file>` — one atomic persistence operation (e.g.
//!   `write:graph.bin`),
//! * `stage:<name>` — an offline stage boundary, consulted after the
//!   stage's checkpoint is persisted (e.g. `stage:clustering`),
//! * `iter:<k>` — a clustering iteration boundary inside the parallel
//!   backend (e.g. `iter:4`).
//!
//! Plans match sites exactly, or by prefix when the trigger ends in `*`.
//!
//! ## Request-lifecycle hardening
//!
//! Beyond persistence faults, this crate carries the tail-tolerance
//! substrate for the online path (DESIGN.md §11):
//!
//! * [`clock`] — [`TickSource`], the injectable time behind deadlines,
//!   hedge delays and breaker windows ([`WallClock`] in production,
//!   [`VirtualClock`] in tests: clock-free chaos runs),
//! * [`budget`] — [`Budget`], the per-request deadline + cancellation
//!   token threaded through the scatter-gather fan-out,
//! * [`chaos`] — [`ChaosPlan`], seed-driven latency/stall/panic
//!   injection at named seams (`search:shard:<i>`, `serve:worker`,
//!   `serve:conn`),
//! * [`breaker`] — [`ShardBreakers`], per-shard circuit breakers with a
//!   health epoch the serve result cache keys on.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod budget;
pub mod chaos;
pub mod clock;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, ShardBreakers};
pub use budget::Budget;
pub use chaos::{ChaosFault, ChaosInjector, ChaosPlan, ChaosRates, NoChaos};
pub use clock::{TickSource, VirtualClock, WallClock};

use std::io;
use std::sync::Mutex;

/// SplitMix64 — the same stateless mixing function the deterministic
/// generators elsewhere in the workspace build on. Pure, so a fault
/// decision derived from it is replayable from its inputs.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte slice — used to fold site names (and by the
/// checkpoint layer, configs and inputs) into the fault-decision hash.
#[inline]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One injected fault, applied to a single persistence operation or
/// boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an I/O error. `transient: true` marks the
    /// fault as retryable (surfaced as [`io::ErrorKind::Interrupted`]);
    /// the same site's next attempt is consulted independently, so a
    /// bounded retry can clear it.
    IoError {
        /// Whether a retry may succeed.
        transient: bool,
    },
    /// A torn (short) write: only `numerator/denominator` of the payload
    /// reaches the temporary file before the simulated crash. The
    /// destination path must never be clobbered — that is exactly the
    /// property the atomic-write helper is tested for.
    TornWrite {
        /// Fraction numerator.
        numerator: u32,
        /// Fraction denominator (0 is treated as 1).
        denominator: u32,
    },
    /// Silent single-bit corruption: bit `bit % 8` of byte
    /// `offset % payload_len` is flipped before the write. The write
    /// itself *succeeds* — detection is the checksum layer's job.
    BitFlip {
        /// Byte offset (reduced modulo the payload length).
        offset: u64,
        /// Bit index within the byte (reduced modulo 8).
        bit: u8,
    },
    /// The process "dies" here: the operation returns an error without
    /// touching anything, modelling a stage-boundary or iteration kill.
    Kill,
}

/// Decides, per `(site, attempt)`, whether a fault is injected.
///
/// Implementations must be deterministic: the same `(site, attempt)` must
/// always yield the same answer for the same injector state, independent
/// of call order (the crash-consistency matrix replays runs and compares
/// artifacts bit-for-bit).
pub trait FaultInjector: Send + Sync {
    /// The fault to inject at `site` on `attempt` (0-based), if any.
    fn fault_at(&self, site: &str, attempt: u32) -> Option<Fault>;
}

/// The production injector: never injects anything. Every hook is an
/// inlined `None`, so threading it through the persistence paths
/// compiles to a no-op in default builds.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    #[inline(always)]
    fn fault_at(&self, _site: &str, _attempt: u32) -> Option<Fault> {
        None
    }
}

/// Per-operation fault probabilities for the randomized layer of a
/// [`FaultPlan`]. Rates are in `[0.0, 1.0]` and evaluated in the order
/// `io_error`, `torn_write`, `bit_flip` against independent seeded draws.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a write attempt fails with an I/O error.
    pub io_error: f64,
    /// Probability an injected I/O error is transient (retryable).
    pub transient: f64,
    /// Probability of a torn write.
    pub torn_write: f64,
    /// Probability of a silent bit flip.
    pub bit_flip: f64,
}

/// A deterministic, seed-driven fault schedule.
///
/// Two layers compose:
///
/// 1. **Explicit triggers** (`trigger`, `kill_at`) — fire a given fault at
///    an exact `(site, attempt)`; used by the kill/corruption matrix tests
///    to place one fault precisely.
/// 2. **Seeded rates** (`with_rates`) — every `(site, attempt)` draws from
///    `splitmix64(seed ⊕ fnv64(site) ⊕ attempt)`; used for randomized
///    soak-style tests. The draw is stateless, so decisions do not depend
///    on the order sites are consulted in.
///
/// Triggers are checked first; a site matches a trigger exactly, or by
/// prefix when the trigger's site ends in `*`.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    triggers: Vec<(String, u32, Fault)>,
    rates: FaultRates,
    /// Sites consulted so far (site, attempt, injected) — lets tests
    /// assert *where* a resumed run actually did work.
    consulted: Mutex<Vec<(String, u32, bool)>>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed for the rate layer.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add an explicit fault at `(site, attempt)`. `site` may end in `*`
    /// for prefix matching.
    pub fn trigger(mut self, site: &str, attempt: u32, fault: Fault) -> FaultPlan {
        self.triggers.push((site.to_string(), attempt, fault));
        self
    }

    /// Sugar: kill the process the first time `site` is reached.
    pub fn kill_at(self, site: &str) -> FaultPlan {
        self.trigger(site, 0, Fault::Kill)
    }

    /// Enable the seeded random layer with the given rates.
    pub fn with_rates(mut self, rates: FaultRates) -> FaultPlan {
        self.rates = rates;
        self
    }

    /// Every `(site, attempt, fired)` consultation so far, in order. For
    /// test assertions ("the resumed run restarted at iteration 4, not
    /// 0"); the record itself does not influence decisions.
    pub fn consulted(&self) -> Vec<(String, u32, bool)> {
        self.consulted.lock().map(|g| g.clone()).unwrap_or_default()
    }

    fn decide(&self, site: &str, attempt: u32) -> Option<Fault> {
        for (pat, at, fault) in &self.triggers {
            if *at != attempt {
                continue;
            }
            let hit = match pat.strip_suffix('*') {
                Some(prefix) => site.starts_with(prefix),
                None => pat == site,
            };
            if hit {
                return Some(*fault);
            }
        }
        let rates = &self.rates;
        if rates.io_error == 0.0 && rates.torn_write == 0.0 && rates.bit_flip == 0.0 {
            return None;
        }
        // Independent unit draws, all pure functions of (seed, site, attempt).
        let base = self.seed ^ fnv64(site.as_bytes()) ^ (attempt as u64).wrapping_mul(0x9e37);
        let unit = |salt: u64| -> f64 {
            (splitmix64(base ^ salt) >> 11) as f64 / (1u64 << 53) as f64
        };
        if unit(1) < rates.io_error {
            return Some(Fault::IoError {
                transient: unit(2) < rates.transient,
            });
        }
        if unit(3) < rates.torn_write {
            return Some(Fault::TornWrite {
                numerator: (splitmix64(base ^ 4) % 97) as u32,
                denominator: 97,
            });
        }
        if unit(5) < rates.bit_flip {
            return Some(Fault::BitFlip {
                offset: splitmix64(base ^ 6),
                bit: (splitmix64(base ^ 7) % 8) as u8,
            });
        }
        None
    }
}

impl FaultInjector for FaultPlan {
    fn fault_at(&self, site: &str, attempt: u32) -> Option<Fault> {
        let fault = self.decide(site, attempt);
        if let Ok(mut log) = self.consulted.lock() {
            log.push((site.to_string(), attempt, fault.is_some()));
        }
        fault
    }
}

/// The error kind carrying "this fault is transient, retry me" across the
/// I/O boundary.
pub const TRANSIENT_KIND: io::ErrorKind = io::ErrorKind::Interrupted;

/// Convert a fault into the `io::Error` it surfaces as (for the
/// [`Fault::IoError`] and [`Fault::Kill`] variants).
pub fn fault_error(fault: Fault, site: &str) -> io::Error {
    match fault {
        Fault::IoError { transient: true } => io::Error::new(
            TRANSIENT_KIND,
            format!("injected transient i/o error at {site}"),
        ),
        Fault::IoError { transient: false } => io::Error::other(format!(
            "injected i/o error at {site}"
        )),
        Fault::TornWrite { .. } => io::Error::other(format!(
            "injected torn write (simulated crash) at {site}"
        )),
        Fault::Kill => io::Error::other(format!("injected kill at {site}")),
        Fault::BitFlip { .. } => io::Error::other(format!(
            "injected bit flip at {site} (should not surface as an error)"
        )),
    }
}

/// Bounded deterministic retry: an operation is re-attempted only while
/// it fails with [`TRANSIENT_KIND`], at most `max_attempts` times in
/// total. No backoff, no clocks — attempt numbers are the only state, so
/// a retried run is replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (initial try included). `0` is treated as `1`.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1 }
    }

    /// Run `op` (which receives the 0-based attempt number) under this
    /// policy. Non-transient errors and exhausted retries propagate.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> io::Result<T>) -> io::Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == TRANSIENT_KIND && attempt + 1 < attempts => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| io::Error::other("retry policy ran zero attempts")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_silent() {
        assert_eq!(NoFaults.fault_at("write:anything", 0), None);
        assert_eq!(NoFaults.fault_at("stage:graph", 7), None);
    }

    #[test]
    fn triggers_match_exactly_and_by_prefix() {
        let plan = FaultPlan::new(1)
            .kill_at("stage:graph")
            .trigger("write:*", 1, Fault::IoError { transient: true });
        assert_eq!(plan.fault_at("stage:graph", 0), Some(Fault::Kill));
        assert_eq!(plan.fault_at("stage:graph", 1), None);
        assert_eq!(plan.fault_at("stage:domains", 0), None);
        assert_eq!(
            plan.fault_at("write:graph.bin", 1),
            Some(Fault::IoError { transient: true })
        );
        assert_eq!(plan.fault_at("write:graph.bin", 0), None);
    }

    #[test]
    fn seeded_rates_are_deterministic_and_order_independent() {
        let rates = FaultRates {
            io_error: 0.3,
            transient: 0.5,
            torn_write: 0.2,
            bit_flip: 0.2,
        };
        let a = FaultPlan::new(42).with_rates(rates);
        let b = FaultPlan::new(42).with_rates(rates);
        let sites = ["write:graph.bin", "write:domains.bin", "stage:clustering"];
        let consult_all = |plan: &FaultPlan, reversed: bool| -> Vec<Option<Fault>> {
            let mut queries: Vec<(&str, u32)> = sites
                .iter()
                .flat_map(|&s| (0..4).map(move |at| (s, at)))
                .collect();
            if reversed {
                queries.reverse();
            }
            let mut out: Vec<_> = queries
                .into_iter()
                .map(|(s, at)| plan.fault_at(s, at))
                .collect();
            if reversed {
                out.reverse();
            }
            out
        };
        // Consult in opposite orders: decisions must agree pairwise.
        let forward = consult_all(&a, false);
        let backward = consult_all(&b, true);
        assert_eq!(forward, backward);
        // And a different seed disagrees somewhere (overwhelmingly likely).
        let c = FaultPlan::new(43).with_rates(rates);
        assert_ne!(forward, consult_all(&c, false));
    }

    #[test]
    fn retry_clears_transient_faults_within_budget() {
        let plan = FaultPlan::new(7)
            .trigger("write:x", 0, Fault::IoError { transient: true })
            .trigger("write:x", 1, Fault::IoError { transient: true });
        let policy = RetryPolicy { max_attempts: 3 };
        let result = policy.run(|attempt| match plan.fault_at("write:x", attempt) {
            Some(f) => Err(fault_error(f, "write:x")),
            None => Ok(attempt),
        });
        assert_eq!(result.unwrap(), 2);
    }

    #[test]
    fn retry_gives_up_after_budget_and_on_permanent_errors() {
        let policy = RetryPolicy { max_attempts: 2 };
        let exhausted = policy.run(|_| -> io::Result<()> {
            Err(fault_error(Fault::IoError { transient: true }, "s"))
        });
        assert_eq!(exhausted.unwrap_err().kind(), TRANSIENT_KIND);

        let mut calls = 0;
        let permanent = policy.run(|_| -> io::Result<()> {
            calls += 1;
            Err(fault_error(Fault::IoError { transient: false }, "s"))
        });
        assert!(permanent.is_err());
        assert_eq!(calls, 1, "permanent errors must not be retried");
    }

    #[test]
    fn consulted_log_records_sites_in_order() {
        let plan = FaultPlan::new(0).kill_at("iter:2");
        let _ = plan.fault_at("iter:1", 0);
        let _ = plan.fault_at("iter:2", 0);
        assert_eq!(
            plan.consulted(),
            vec![("iter:1".into(), 0, false), ("iter:2".into(), 0, true)]
        );
    }
}
