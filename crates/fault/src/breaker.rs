//! Per-shard circuit breakers for the scatter-gather fan-out.
//!
//! A [`CircuitBreaker`] tracks consecutive failures (deadline misses,
//! stalls, panics) for one shard. After `threshold` consecutive
//! failures it **opens**: the fan-out skips the shard outright (an
//! immediate, honestly-marked partial answer beats burning the whole
//! budget on a shard that has missed its last N deadlines). After
//! `open_us` ticks of the injectable clock it becomes **half-open**: one
//! probe request is let through; success closes the breaker, failure
//! re-opens it for another window.
//!
//! [`ShardBreakers`] is the per-corpus collection. Every state
//! transition bumps a shared **health epoch**; the serve result cache
//! keys on it, so a cached body can never be served across a breaker
//! state change — the cache-coherence guarantee is structural, not a
//! TTL.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::clock::TickSource;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Breaker tuning: how many consecutive failures open it, and how long
/// it stays open before probing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker. `0` disables
    /// breaking entirely (the breaker never opens).
    pub threshold: u32,
    /// Ticks the breaker stays open before allowing a half-open probe.
    pub open_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            open_us: 5_000_000,
        }
    }
}

/// A breaker's externally visible state (surfaced on `/metrics` and
/// `/healthz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Sick: requests are skipped until the open window expires.
    Open,
    /// Probing: one request is let through to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// The lowercase name used in JSON surfaces.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    consecutive_failures: u32,
    state: BreakerState,
    opened_at_us: u64,
    /// Whether the half-open probe slot is taken.
    probing: bool,
}

/// One shard's breaker. Thread-safe; time comes from the injectable
/// clock passed at each decision point so tests drive it virtually.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

/// What a breaker decision or record changed, so callers can account
/// trips/recoveries and bump the health epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// No state change.
    None,
    /// Closed/half-open → open.
    Tripped,
    /// Open → half-open (probe admitted).
    Probing,
    /// Half-open → closed.
    Recovered,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                consecutive_failures: 0,
                state: BreakerState::Closed,
                opened_at_us: 0,
                probing: false,
            }),
        }
    }

    /// Whether a request may go to this shard now. Open breakers whose
    /// window has expired transition to half-open and admit exactly one
    /// probe; concurrent callers during the probe are refused.
    pub fn allow(&self, clock: &dyn TickSource) -> (bool, BreakerEvent) {
        let Ok(mut inner) = self.inner.lock() else {
            return (true, BreakerEvent::None);
        };
        match inner.state {
            BreakerState::Closed => (true, BreakerEvent::None),
            BreakerState::Open => {
                if clock.now_us().saturating_sub(inner.opened_at_us) >= self.config.open_us {
                    inner.state = BreakerState::HalfOpen;
                    inner.probing = true;
                    (true, BreakerEvent::Probing)
                } else {
                    (false, BreakerEvent::None)
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    (false, BreakerEvent::None)
                } else {
                    inner.probing = true;
                    (true, BreakerEvent::None)
                }
            }
        }
    }

    /// Record a request outcome for this shard.
    pub fn record(&self, ok: bool, clock: &dyn TickSource) -> BreakerEvent {
        let Ok(mut inner) = self.inner.lock() else {
            return BreakerEvent::None;
        };
        if ok {
            inner.consecutive_failures = 0;
            inner.probing = false;
            if inner.state != BreakerState::Closed {
                inner.state = BreakerState::Closed;
                return BreakerEvent::Recovered;
            }
            return BreakerEvent::None;
        }
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        inner.probing = false;
        let threshold = self.config.threshold;
        let should_trip = match inner.state {
            BreakerState::Closed => threshold > 0 && inner.consecutive_failures >= threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        };
        if should_trip {
            inner.state = BreakerState::Open;
            inner.opened_at_us = clock.now_us();
            return BreakerEvent::Tripped;
        }
        BreakerEvent::None
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner
            .lock()
            .map(|i| i.state)
            .unwrap_or(BreakerState::Closed)
    }
}

/// The per-corpus breaker set: one [`CircuitBreaker`] per shard, plus
/// the shared health epoch and trip/recovery counters the serve layer
/// surfaces.
#[derive(Debug)]
pub struct ShardBreakers {
    config: BreakerConfig,
    breakers: Mutex<Vec<Arc<CircuitBreaker>>>,
    /// Bumped on every state transition anywhere in the set. Part of
    /// the serve result-cache key, so a cache hit can never cross a
    /// breaker state change.
    epoch: AtomicU64,
    trips: AtomicU64,
    recoveries: AtomicU64,
}

impl ShardBreakers {
    /// An empty set (breakers are created lazily per shard index).
    pub fn new(config: BreakerConfig) -> ShardBreakers {
        ShardBreakers {
            config,
            breakers: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    fn breaker(&self, shard: usize) -> Arc<CircuitBreaker> {
        let Ok(mut breakers) = self.breakers.lock() else {
            return Arc::new(CircuitBreaker::new(self.config));
        };
        while breakers.len() <= shard {
            breakers.push(Arc::new(CircuitBreaker::new(self.config)));
        }
        Arc::clone(&breakers[shard])
    }

    fn account(&self, event: BreakerEvent) {
        match event {
            BreakerEvent::None => {}
            BreakerEvent::Tripped => {
                self.trips.fetch_add(1, SeqCst);
                self.epoch.fetch_add(1, SeqCst);
            }
            BreakerEvent::Probing => {
                self.epoch.fetch_add(1, SeqCst);
            }
            BreakerEvent::Recovered => {
                self.recoveries.fetch_add(1, SeqCst);
                self.epoch.fetch_add(1, SeqCst);
            }
        }
    }

    /// Whether shard `shard` may be queried now.
    pub fn allow(&self, shard: usize, clock: &dyn TickSource) -> bool {
        let (allowed, event) = self.breaker(shard).allow(clock);
        self.account(event);
        allowed
    }

    /// Record shard `shard`'s request outcome.
    pub fn record(&self, shard: usize, ok: bool, clock: &dyn TickSource) {
        let event = self.breaker(shard).record(ok, clock);
        self.account(event);
    }

    /// Current state of every shard's breaker (index = shard).
    pub fn states(&self) -> Vec<BreakerState> {
        self.breakers
            .lock()
            .map(|bs| bs.iter().map(|b| b.state()).collect())
            .unwrap_or_default()
    }

    /// The health epoch: bumps on every breaker state transition.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Total closed/half-open → open transitions.
    pub fn trips(&self) -> u64 {
        self.trips.load(SeqCst)
    }

    /// Total half-open → closed transitions.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn config() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            open_us: 1_000,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(config());
        assert_eq!(b.record(false, &clock), BreakerEvent::None);
        assert_eq!(b.record(false, &clock), BreakerEvent::None);
        assert_eq!(b.record(false, &clock), BreakerEvent::Tripped);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(&clock).0, "open breakers refuse traffic");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(config());
        for _ in 0..2 {
            b.record(false, &clock);
        }
        b.record(true, &clock);
        for _ in 0..2 {
            assert_eq!(b.record(false, &clock), BreakerEvent::None);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(config());
        for _ in 0..3 {
            b.record(false, &clock);
        }
        clock.advance_us(1_000);
        let (allowed, event) = b.allow(&clock);
        assert!(allowed);
        assert_eq!(event, BreakerEvent::Probing);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(&clock).0, "only one probe at a time");
        assert_eq!(b.record(true, &clock), BreakerEvent::Recovered);
        assert_eq!(b.state(), BreakerState::Closed);

        // Re-trip, probe again, fail the probe: straight back to open.
        for _ in 0..3 {
            b.record(false, &clock);
        }
        clock.advance_us(1_000);
        assert!(b.allow(&clock).0);
        assert_eq!(b.record(false, &clock), BreakerEvent::Tripped);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn zero_threshold_disables_breaking() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(BreakerConfig {
            threshold: 0,
            open_us: 1,
        });
        for _ in 0..100 {
            b.record(false, &clock);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(&clock).0);
    }

    #[test]
    fn shard_set_bumps_epoch_on_every_transition() {
        let clock = VirtualClock::new();
        let set = ShardBreakers::new(config());
        assert_eq!(set.epoch(), 0);
        assert!(set.allow(1, &clock), "unknown shards start closed");
        for _ in 0..3 {
            set.record(1, false, &clock);
        }
        assert_eq!(set.trips(), 1);
        let after_trip = set.epoch();
        assert!(after_trip > 0, "trip must bump the health epoch");
        assert!(!set.allow(1, &clock));
        assert!(set.allow(0, &clock), "other shards unaffected");

        clock.advance_us(1_000);
        assert!(set.allow(1, &clock), "half-open probe admitted");
        assert!(set.epoch() > after_trip, "probe bumps the epoch");
        set.record(1, true, &clock);
        assert_eq!(set.recoveries(), 1);
        assert_eq!(
            set.states(),
            vec![BreakerState::Closed, BreakerState::Closed]
        );
    }
}
