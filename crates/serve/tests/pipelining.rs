//! Pipelining torture test: a three-request pipeline is split at
//! **every byte boundary** across two writes — the incremental parser
//! must produce the exact same response stream no matter where the
//! kernel happens to chop the bytes — with chaos stalls injected at the
//! `serve:conn` seam to shake scheduling. Malformed bytes arriving
//! behind a valid pipelined request must still answer the valid request,
//! then `400`, then close cleanly.

use esharp_core::{DomainCollection, Esharp, EsharpConfig, SharedEsharp};
use esharp_fault::{ChaosFault, ChaosPlan, NoFaults};
use esharp_ingest::LiveCorpus;
use esharp_microblog::{generate_corpus, CorpusConfig, TokenId};
use esharp_querylog::{World, WorldConfig};
use esharp_serve::{ServeConfig, ServeHooks, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn boot(plan: ChaosPlan) -> (Server, String) {
    let world = World::generate(&WorldConfig::tiny(21));
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
    let term = corpus.token_text(0 as TokenId).to_string();
    let query = esharp_serve::http::percent_encode(&term);
    let esharp = Esharp::new(
        DomainCollection::from_groups(vec![vec![term]]),
        EsharpConfig::tiny(),
    );
    let hooks = ServeHooks {
        chaos: Arc::new(plan),
        ..ServeHooks::default()
    };
    let server = Server::start_live_with_hooks(
        "127.0.0.1:0",
        ServeConfig::default(),
        Arc::new(LiveCorpus::new(corpus)),
        Arc::new(SharedEsharp::new(esharp)),
        Arc::new(NoFaults),
        hooks,
    )
    .expect("bind");
    (server, query)
}

/// Write the whole payload (optionally split at `split`), read to EOF.
fn exchange(addr: std::net::SocketAddr, payload: &[u8], split: Option<usize>) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    match split {
        Some(at) => {
            stream.write_all(&payload[..at]).expect("send first half");
            // Give the event loop a chance to observe the torn prefix.
            std::thread::sleep(Duration::from_millis(1));
            stream.write_all(&payload[at..]).expect("send second half");
        }
        None => stream.write_all(payload).expect("send"),
    }
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("read to EOF");
    out
}

#[test]
fn pipeline_split_at_every_byte_boundary_is_invariant() {
    // Stall the first few jobs at the conn seam: the split sweep below
    // must be insensitive to worker-side scheduling jitter too.
    let (server, query) = boot(ChaosPlan::new(5).trigger_limited(
        "serve:conn",
        ChaosFault::Stall,
        5,
    ));
    let addr = server.local_addr();

    let payload = format!(
        "GET /search?q={query} HTTP/1.1\r\nHost: t\r\n\r\n\
         GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
         GET /search?q={query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .into_bytes();

    // Warm the cache so every later search hits (deterministic header),
    // then take the unsplit exchange as the reference byte stream.
    let _ = exchange(addr, &payload, None);
    let reference = exchange(addr, &payload, None);
    assert_eq!(
        reference
            .windows(4)
            .filter(|w| w == b"HTTP")
            .count(),
        3,
        "reference must contain exactly three responses: {:?}",
        String::from_utf8_lossy(&reference)
    );
    assert!(
        String::from_utf8_lossy(&reference).contains("x-esharp-cache: hit"),
        "searches must be warm before the sweep"
    );

    for at in 1..payload.len() {
        let got = exchange(addr, &payload, Some(at));
        assert_eq!(
            got,
            reference,
            "split at byte {at} changed the response stream"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_bytes_behind_a_pipelined_request_answer_400_then_close() {
    let (server, _) = boot(ChaosPlan::new(5));
    let addr = server.local_addr();

    // A valid request with garbage pipelined behind it: the valid one is
    // answered, the garbage gets a 400, then the connection closes (EOF
    // here ends the read).
    let out = exchange(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nTOTAL GARBAGE\r\n\r\n",
        None,
    );
    let text = String::from_utf8_lossy(&out);
    let statuses: Vec<&str> = text
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|rest| rest.split(' ').next().unwrap_or(""))
        .collect();
    assert_eq!(statuses, ["200", "400"], "{text}");
    assert!(text.contains("\"error\":\"malformed request\""), "{text}");
    // The poisoned response itself declares the close.
    assert!(
        text.to_lowercase().rfind("connection: close").is_some(),
        "{text}"
    );

    // Garbage alone: immediate 400 and close.
    let out = exchange(addr, b"NONSENSE\r\n\r\n", None);
    let text = String::from_utf8_lossy(&out);
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");

    // The server is still healthy afterwards.
    let out = exchange(
        addr,
        b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        None,
    );
    assert!(String::from_utf8_lossy(&out).starts_with("HTTP/1.1 200"));
    server.shutdown();
}
