//! Property-based proof of the batch planner's bit-identity contract:
//! for random query batches × shard counts × worker counts,
//! [`Esharp::search_batch`] must produce, per query, exactly the
//! experts AND exactly the cache-visible rendered body that issuing the
//! queries one at a time through [`Esharp::search`] produces. The batch
//! path shares posting-list traversals across queries (a per-batch
//! term→postings memo) — sharing must never change an answer.

use esharp_core::{DomainCollection, Esharp, EsharpConfig};
use esharp_microblog::{generate_corpus, Corpus, CorpusConfig, TokenId};
use esharp_querylog::{World, WorldConfig};
use esharp_serve::server::render_search_body;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

const SHARD_CHOICES: [usize; 3] = [1, 2, 4];

/// Corpus + domain collection + query pool, cached per shard count
/// (corpus generation dominates; the cases only vary sharding).
fn fixture(shards: usize) -> Arc<(Corpus, DomainCollection, Vec<String>)> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<(Corpus, DomainCollection, Vec<String>)>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("fixture lock");
    Arc::clone(cache.entry(shards).or_insert_with(|| {
        let world = World::generate(&WorldConfig::tiny(21));
        let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
        corpus.reshard(shards);
        // Domain groups built from real corpus tokens so expansion fans
        // out, with overlap across groups' queries: shared terms are
        // exactly what the batch memo deduplicates.
        let tokens: Vec<String> = (0..corpus.num_tokens().min(12))
            .map(|id| corpus.token_text(id as TokenId).to_string())
            .collect();
        let mid = tokens.len() / 2;
        let domains = DomainCollection::from_groups(vec![
            tokens[..mid].to_vec(),
            tokens[mid..].to_vec(),
        ]);
        // Query pool: every domain token (expansion-heavy), plus terms
        // that miss the collection (lone-term expansion) and the index.
        let mut pool = tokens;
        pool.push("zzz-not-in-the-collection".to_string());
        pool.push("UPPER case Query".to_string());
        pool.push(String::new());
        Arc::new((corpus, domains, pool))
    }))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn batch_is_bit_identical_to_sequential_singles(
        shard_choice in 0..SHARD_CHOICES.len(),
        workers in 1..=4usize,
        picks in proptest::collection::vec(0..15usize, 1..12),
    ) {
        let fixture = fixture(SHARD_CHOICES[shard_choice]);
        let (corpus, domains, pool) = &*fixture;
        let mut config = EsharpConfig::tiny();
        config.search_workers = workers;
        let esharp = Esharp::new(domains.clone(), config);

        let queries: Vec<&str> = picks
            .iter()
            .map(|&i| pool[i % pool.len()].as_str())
            .collect();

        let batch = esharp.search_batch(corpus, &queries);
        prop_assert_eq!(batch.len(), queries.len());
        for (i, (query, batched)) in queries.iter().zip(&batch).enumerate() {
            let single = esharp.search(corpus, query);
            prop_assert_eq!(
                &single.experts,
                &batched.experts,
                "experts diverged for query {} ({:?})",
                i,
                query
            );
            prop_assert_eq!(&single.expansion, &batched.expansion);
            prop_assert_eq!(single.matched_tweets, batched.matched_tweets);
            // The cache-visible body — what a client would actually see —
            // must be byte-identical, epochs held fixed.
            let single_body = render_search_body(corpus, query, 7, 3, &single);
            let batched_body = render_search_body(corpus, query, 7, 3, batched);
            prop_assert_eq!(
                single_body,
                batched_body,
                "rendered bodies diverged for query {} ({:?})",
                i,
                query
            );
        }
    }
}
