//! Property-based test of the result cache's correctness contract, over
//! random interleavings of searches and reloads (good and corrupt):
//!
//! * a cache hit is **byte-identical** to a cold search against the
//!   collection that was live when the entry was cached — which, because
//!   the key carries the epoch and every reload attempt advances it, is
//!   exactly the collection owning the snapshot's epoch;
//! * after any reload, the first request for each query **misses** (the
//!   epoch changed, so the old entry is unreachable) and then refills.

use esharp_core::{DomainCollection, Esharp, EsharpConfig, SharedEsharp};
use esharp_microblog::{Corpus, Tweet, User};
use esharp_serve::server::search_and_render;
use esharp_serve::ResultCache;
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

const QUERIES: [&str; 4] = ["49ers", "niners", "draft", "pasta"];

fn corpus() -> Corpus {
    let user = |id, handle: &str| User {
        id,
        handle: handle.to_string(),
        display_name: handle.to_uppercase(),
        description: String::new(),
        followers: 10,
        verified: false,
        expert_domains: vec![],
        spam: false,
    };
    let users = vec![user(0, "alice"), user(1, "bob"), user(2, "carol")];
    let tweets = vec![
        Tweet::parse(0, 0, "49ers game tonight", |_| None),
        Tweet::parse(1, 1, "49ers niners draft talk", |_| None),
        Tweet::parse(2, 1, "niners forever", |_| None),
        Tweet::parse(3, 2, "pasta dinner and 49ers talk", |_| None),
    ];
    Corpus::new(users, tweets)
}

/// Domain files written once and reloaded many times per case: two
/// distinct good collections and one corrupt blob.
fn fixture_paths() -> &'static (PathBuf, PathBuf, PathBuf) {
    static PATHS: OnceLock<(PathBuf, PathBuf, PathBuf)> = OnceLock::new();
    PATHS.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("esharp_serve_proptest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tempdir");
        let a = dir.join("domains_a.bin");
        let b = dir.join("domains_b.bin");
        let corrupt = dir.join("domains_corrupt.bin");
        collection_a().save(&a).expect("save a");
        DomainCollection::from_groups(vec![
            vec!["49ers".into(), "draft".into()],
            vec!["pasta".into(), "dinner".into()],
        ])
        .save(&b)
        .expect("save b");
        std::fs::write(&corrupt, b"ESRT definitely not a collection").expect("save corrupt");
        (a, b, corrupt)
    })
}

fn collection_a() -> DomainCollection {
    DomainCollection::from_groups(vec![vec!["49ers".into(), "niners".into()]])
}

/// One step of a serving schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    Search(usize),
    ReloadA,
    ReloadB,
    ReloadCorrupt,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0usize..QUERIES.len()).prop_map(Op::Search),
            1 => Just(Op::ReloadA),
            1 => Just(Op::ReloadB),
            1 => Just(Op::ReloadCorrupt),
        ],
        1..60,
    )
}

proptest! {
    #[test]
    fn hits_are_cold_identical_and_reloads_invalidate(ops in arb_ops()) {
        let (path_a, path_b, path_corrupt) = fixture_paths();
        let corpus = corpus();
        let shared = SharedEsharp::new(Esharp::new(collection_a(), EsharpConfig::tiny()));
        let cache = ResultCache::new(64);
        let mut unseen_since_reload: HashSet<&str> = QUERIES.iter().copied().collect();

        for op in ops {
            match op {
                Op::Search(q) => {
                    let query = QUERIES[q];
                    let (esharp, epoch) = shared.snapshot();
                    let key = (query.to_string(), epoch, 0, 0);
                    // The ground truth: a cold search against the state
                    // owning this epoch (the current snapshot, by
                    // construction of the epoch).
                    let cold = search_and_render(&corpus, &esharp, query, epoch, 0);
                    match cache.get(&key) {
                        Some(hit) => {
                            prop_assert!(
                                !unseen_since_reload.contains(query),
                                "{query} hit before missing post-reload"
                            );
                            prop_assert_eq!(
                                hit.as_slice(), cold.as_slice(),
                                "cache hit diverged from cold search"
                            );
                        }
                        None => {
                            cache.insert(key.clone(), Arc::new(cold.clone()));
                            // Refill: immediately servable, byte-identical.
                            let refilled = cache.get(&key).expect("just inserted");
                            prop_assert_eq!(refilled.as_slice(), cold.as_slice());
                        }
                    }
                    unseen_since_reload.remove(query);
                }
                Op::ReloadA | Op::ReloadB | Op::ReloadCorrupt => {
                    let before = shared.epoch();
                    let result = match op {
                        Op::ReloadA => shared.reload(path_a),
                        Op::ReloadB => shared.reload(path_b),
                        _ => shared.reload(path_corrupt),
                    };
                    prop_assert_eq!(shared.epoch(), before + 1, "every attempt bumps the epoch");
                    match op {
                        Op::ReloadCorrupt => {
                            prop_assert!(result.is_err(), "corrupt reload must fail");
                            let (state, _) = shared.snapshot();
                            prop_assert!(state.degradation().is_some());
                        }
                        _ => {
                            prop_assert!(result.is_ok());
                            let (state, _) = shared.snapshot();
                            prop_assert!(state.degradation().is_none());
                        }
                    }
                    // The epoch moved: every query must miss once before
                    // it can hit again.
                    unseen_since_reload = QUERIES.iter().copied().collect();
                }
            }
        }
    }
}
