//! Property test for the tail-tolerance cache contract (ISSUE 8, S3):
//! random interleavings of bounded searches (some stalled by seeded
//! chaos, some hedged), ingest batches, domain reloads, and virtual
//! clock advances — run against the same `ResultCache` + `ShardBreakers`
//! wiring `handle_search` uses. Two guarantees over every interleaving:
//!
//! 1. **Every cache hit is byte-identical to a cold, unbounded search at
//!    the current epochs.** The key is `(query, domains epoch, corpus
//!    epoch, breaker health epoch)` and partial bodies are never
//!    inserted, so a hit can only exist for a complete answer computed
//!    against exactly the state being served right now — stalls,
//!    deadline misses, and hedges may change *whether* a body is cached,
//!    never *which bytes* a hit returns.
//! 2. **A hit never crosses a breaker state change.** The health epoch
//!    bumps on every breaker transition (trip, probe, recovery), so a
//!    hit implies zero transitions between insert and lookup — pinned
//!    here by recording the trip/recovery counters at insert time and
//!    asserting them unchanged at hit time.

use esharp_core::{DomainCollection, Esharp, EsharpConfig};
use esharp_fault::{Budget, BreakerConfig, ChaosPlan, ShardBreakers, VirtualClock};
use esharp_ingest::{IngestOp, LiveCorpus};
use esharp_microblog::{generate_corpus, BoundedSearch, CorpusConfig, TokenId};
use esharp_querylog::{World, WorldConfig};
use esharp_serve::cache::CacheKey;
use esharp_serve::{render_search_body, search_and_render, ResultCache};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const SHARDS: usize = 4;

/// A live sharded corpus plus an e# whose expansion spans every shard,
/// and the per-shard query vocabulary — the chaos-matrix testbed behind
/// a `LiveCorpus` so ingest interleaves for real.
fn testbed() -> (Arc<LiveCorpus>, Esharp, Vec<String>) {
    let world = World::generate(&WorldConfig::tiny(21));
    let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
    corpus.reshard(SHARDS);
    let mut per_shard: Vec<Option<String>> = vec![None; SHARDS];
    for id in 0..corpus.num_tokens() {
        let token = corpus.token_text(id as TokenId).to_string();
        let shard = corpus.term_home_shard(&token);
        if per_shard[shard].is_none() {
            per_shard[shard] = Some(token);
        }
    }
    let terms: Vec<String> = per_shard
        .into_iter()
        .map(|t| t.expect("synthetic corpus must populate every shard"))
        .collect();
    let mut config = EsharpConfig::tiny();
    config.search_workers = SHARDS;
    let esharp = Esharp::new(DomainCollection::from_groups(vec![terms.clone()]), config);
    (Arc::new(LiveCorpus::new(corpus)), esharp, terms)
}

fn steps() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..=99, 0u64..1 << 20), 1..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// See the module docs: hits are byte-identical to cold unbounded
    /// searches at the current epochs, and never cross a breaker
    /// transition.
    #[test]
    fn cache_hits_are_exact_and_never_cross_breaker_transitions(
        script in steps()
    ) {
        let (live, esharp, terms) = testbed();
        let cache = ResultCache::new(64);
        let clock = Arc::new(VirtualClock::new());
        let breakers = ShardBreakers::new(BreakerConfig {
            threshold: 2,
            open_us: 50_000,
        });
        let mut domains_epoch = 0u64;
        let mut users = 0usize;
        // Breaker arc counters at each key's insert time (guarantee 2).
        let mut at_insert: HashMap<CacheKey, (u64, u64)> = HashMap::new();

        for (action, n) in script {
            match action {
                // Bounded search, exactly as handle_search does it: some
                // runs stall a shard at the primary attempt, some hedge.
                0..=59 => {
                    let q = &terms[(n as usize) % terms.len()];
                    let stalled = (action < 25).then(|| (n as usize) % SHARDS);
                    let hedge = action % 2 == 0;

                    let mut plan = ChaosPlan::new(n ^ 0x5eed);
                    if let Some(shard) = stalled {
                        plan = plan.stall_at(&format!("search:shard:{shard}"));
                    }
                    let budget = Budget::with_clock(
                        clock.clone() as Arc<dyn esharp_fault::TickSource>,
                        10_000,
                    );
                    let mut ctx = BoundedSearch::new(&budget)
                        .with_chaos(&plan)
                        .with_breakers(&breakers);
                    if hedge {
                        ctx = ctx.hedged(1_000);
                    }

                    let guard = live.read();
                    let key: CacheKey =
                        (q.clone(), domains_epoch, guard.epoch(), breakers.epoch());
                    if let Some(hit) = cache.get(&key) {
                        // Guarantee 1: byte-identical to a cold unbounded
                        // search against the state live right now.
                        let cold = search_and_render(
                            guard.corpus(), &esharp, q, domains_epoch, guard.epoch(),
                        );
                        prop_assert_eq!(&*hit, &cold, "hit diverged from cold search");
                        prop_assert!(
                            !String::from_utf8_lossy(&hit).contains("\"partial\":true"),
                            "a partial body was served from cache"
                        );
                        // Guarantee 2: zero breaker transitions since
                        // insert — the health epoch in the key makes any
                        // transition a structural miss.
                        prop_assert_eq!(
                            at_insert.get(&key).copied(),
                            Some((breakers.trips(), breakers.recoveries())),
                            "cache hit crossed a breaker state change"
                        );
                    } else {
                        let outcome = esharp.search_bounded(guard.corpus(), q, &ctx);
                        if outcome.partial.is_none() {
                            let body = render_search_body(
                                guard.corpus(), q, domains_epoch, guard.epoch(), &outcome,
                            );
                            at_insert.insert(
                                key.clone(),
                                (breakers.trips(), breakers.recoveries()),
                            );
                            cache.insert(key, Arc::new(body));
                        }
                    }
                }
                // Ingest (corpus epoch bump): old keys structurally miss.
                60..=74 => {
                    let handle = format!("chaos_u{users}");
                    users += 1;
                    let text = format!("{} chaos report", terms[(n as usize) % terms.len()]);
                    live.apply_batch(&[
                        IngestOp::AddUser {
                            handle: handle.clone(),
                            display_name: format!("U {handle}"),
                            description: String::new(),
                            followers: 10 + n % 100,
                            verified: n % 2 == 0,
                        },
                        IngestOp::Append { author: handle, text },
                    ]).expect("ingest batch");
                }
                // Domain reload (domains epoch bump — every attempt
                // advances it, success or not, exactly like the server).
                75..=84 => {
                    domains_epoch += 1;
                }
                // Clock advance: open breakers age toward half-open, so
                // later searches probe and (with a healthy shard) recover.
                _ => {
                    clock.advance_us(20_000 + n % 60_000);
                }
            }
        }
    }
}
