//! End-to-end streaming-ingestion smoke test over real sockets: boot a
//! server on a persisted `LiveCorpus`, ingest through `POST /ingest`,
//! search before and after `POST /compact`, and verify bodies are
//! byte-identical per `(query, epoch, corpus_epoch)` and durable across
//! a restart. `scripts/tier1.sh` runs this test as its ingest gate.

use esharp_core::SharedEsharp;
use esharp_eval::{EvalScale, Testbed};
use esharp_fault::NoFaults;
use esharp_ingest::LiveCorpus;
use esharp_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn raw_request(addr: std::net::SocketAddr, head: &str, body: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut message = format!(
        "{head} HTTP/1.1\r\nHost: t\r\nConnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    message.extend_from_slice(body);
    stream.write_all(&message).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    raw_request(addr, &format!("GET {path}"), b"")
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    raw_request(addr, &format!("POST {path}"), body.as_bytes())
}

#[test]
fn ingest_compact_search_roundtrip_with_durability() {
    let dir = std::env::temp_dir().join("esharp_serve_ingest_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let corpus_path = dir.join("corpus.bin");
    let oplog_path = dir.join("oplog");

    let testbed = Testbed::build(EvalScale::Tiny, 77);
    let author = testbed.corpus.users()[0].handle.clone();
    let base_tweets = testbed.corpus.tweets().len();
    let live = Arc::new(
        LiveCorpus::create(testbed.corpus, &corpus_path, &oplog_path).expect("persist base"),
    );
    let shared = Arc::new(SharedEsharp::new(testbed.esharp));
    let server = Server::start_live(
        "127.0.0.1:0",
        ServeConfig::default(),
        Arc::clone(&live),
        Arc::clone(&shared),
        Arc::new(NoFaults),
    )
    .expect("bind");
    let addr = server.local_addr();

    // The planted topic is unknown pre-ingest.
    let (status, _, before) = get(addr, "/search?q=zebrafish");
    assert_eq!(status, 200, "{before}");
    assert!(before.contains("\"matched_tweets\":0"), "{before}");
    assert!(before.contains("\"corpus_epoch\":0"), "{before}");

    // Ingest a new user plus two tweets on the fresh topic; one of the
    // batch's appends is deleted in the same batch (delta + tombstone).
    let batch = format!(
        "user\tzoologist\tZoo\tstudies zebrafish\t120\t1\n\
         tweet\tzoologist\tzebrafish genetics update\n\
         tweet\t{author}\tzebrafish spotted downtown\n\
         tweet\tzoologist\tnoise to be deleted\n\
         delete\t{}\n",
        base_tweets + 2
    );
    let (status, _, ingested) = post(addr, "/ingest", &batch);
    assert_eq!(status, 200, "{ingested}");
    assert!(ingested.contains("\"ok\":true,\"applied\":5"), "{ingested}");
    assert!(ingested.contains("\"corpus_epoch\":1"), "{ingested}");

    // Visible to the very next query, served from base + delta.
    let (status, head, after) = get(addr, "/search?q=zebrafish");
    assert_eq!(status, 200);
    assert!(head.contains("x-esharp-cache: miss"), "epoch bump must re-miss");
    assert!(after.contains("\"matched_tweets\":2"), "{after}");
    assert!(after.contains("\"corpus_epoch\":1"), "{after}");
    // Byte-identical on the repeat, now from cache.
    let (_, head2, again) = get(addr, "/search?q=zebrafish");
    assert!(head2.contains("x-esharp-cache: hit"), "{head2}");
    assert_eq!(again, after, "cached body must be byte-identical");

    // Malformed and invalid batches: rejected whole, nothing applied.
    let (status, _, bad) = post(addr, "/ingest", "frobnicate\tx\n");
    assert_eq!(status, 400, "{bad}");
    let (status, _, bad) = post(addr, "/ingest", "tweet\tnobody-here\thello\n");
    assert_eq!(status, 400, "{bad}");
    let (status, _, bad) = post(addr, "/ingest", "");
    assert_eq!(status, 400, "{bad}");
    let (_, _, health) = get(addr, "/healthz");
    assert!(health.contains("\"corpus_epoch\":1"), "rejected batches must not bump: {health}");

    // Synchronous compaction: tombstone reclaimed, epoch bumps, search
    // results identical modulo the epoch fields.
    let (status, _, compacted) = post(addr, "/compact", "");
    assert_eq!(status, 200, "{compacted}");
    assert!(compacted.contains("\"ok\":true,\"compacted\":true"), "{compacted}");
    assert!(compacted.contains("\"corpus_epoch\":2"), "{compacted}");
    assert!(compacted.contains("\"tombstones_reclaimed\":1"), "{compacted}");
    let (_, head3, post_compact) = get(addr, "/search?q=zebrafish");
    assert!(head3.contains("x-esharp-cache: miss"), "{head3}");
    assert!(post_compact.contains("\"matched_tweets\":2"), "{post_compact}");
    assert_eq!(
        post_compact.replace("\"corpus_epoch\":2", "\"corpus_epoch\":1"),
        after,
        "compaction must not change result bytes beyond the epoch"
    );
    // Idempotent: nothing left to compact.
    let (status, _, noop) = post(addr, "/compact", "");
    assert_eq!(status, 200);
    assert!(noop.contains("\"compacted\":false"), "{noop}");

    // Metrics carry the ingest/compaction counters.
    let (_, _, metrics) = get(addr, "/metrics");
    for needle in [
        "\"ingest\":{\"requests\":4,\"ops\":5",
        "\"compaction\":{\"requests\":2,\"ok\":1,\"failed\":0",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in {metrics}");
    }

    // Restart durability: everything above survives reopen-from-disk.
    server.shutdown();
    drop(live);
    let reopened = Arc::new(LiveCorpus::open(&corpus_path, &oplog_path).expect("reopen"));
    assert_eq!(reopened.pending_ops(), 0, "compaction reset the oplog");
    let server = Server::start_live(
        "127.0.0.1:0",
        ServeConfig::default(),
        reopened,
        shared,
        Arc::new(NoFaults),
    )
    .expect("rebind");
    let (status, _, revived) = get(server.local_addr(), "/search?q=zebrafish");
    assert_eq!(status, 200);
    assert!(revived.contains("\"matched_tweets\":2"), "{revived}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn background_compactor_folds_the_delta_without_downtime() {
    let testbed = Testbed::build(EvalScale::Tiny, 79);
    let author = testbed.corpus.users()[0].handle.clone();
    let live = Arc::new(LiveCorpus::new(testbed.corpus));
    let server = Server::start_live(
        "127.0.0.1:0",
        ServeConfig {
            compact_threshold: 4,
            compact_interval: Duration::from_millis(10),
            ..ServeConfig::default()
        },
        Arc::clone(&live),
        Arc::new(SharedEsharp::new(testbed.esharp)),
        Arc::new(NoFaults),
    )
    .expect("bind");
    let addr = server.local_addr();

    for i in 0..6 {
        let (status, _, body) = post(
            addr,
            "/ingest",
            &format!("tweet\t{author}\tstreaming tweet number {i}\n"),
        );
        assert_eq!(status, 200, "{body}");
        // Serving keeps answering while the compactor runs.
        let (status, _, _) = get(addr, "/search?q=streaming");
        assert_eq!(status, 200);
    }
    // The compactor fires on its own once the backlog crosses the
    // threshold; wait for it, still serving.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while live.read().corpus().has_delta() && std::time::Instant::now() < deadline {
        let (status, _, _) = get(addr, "/search?q=streaming");
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!live.read().corpus().has_delta(), "compactor never fired");
    let (status, _, body) = get(addr, "/search?q=streaming");
    assert_eq!(status, 200);
    assert!(body.contains("\"matched_tweets\":6"), "{body}");
    server.shutdown();
}
