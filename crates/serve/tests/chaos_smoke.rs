//! Serve-layer chaos smoke: boot real servers with seeded chaos plans
//! at the `search:shard:*`, `serve:worker`, and `serve:conn` seams and
//! assert the tail-tolerance contract over actual sockets — partial
//! answers are marked and never cached, hedging recovers stragglers,
//! request caps answer `413`/`431` before reading the offending bytes,
//! a handler panic answers `500` without killing the worker, and a
//! worker death outside the guard is healed by the supervisor.
//! `scripts/tier1.sh` runs this as its chaos gate.

use esharp_core::{DomainCollection, Esharp, EsharpConfig, SharedEsharp};
use esharp_fault::{ChaosFault, ChaosPlan, NoFaults};
use esharp_ingest::LiveCorpus;
use esharp_microblog::{generate_corpus, Corpus, CorpusConfig, TokenId};
use esharp_querylog::{World, WorldConfig};
use esharp_serve::{ServeConfig, ServeHooks, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;

/// Silence chaos-injected panic backtraces (they are the *point* of
/// these tests, not noise worth printing), leave real panics loud.
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaos = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("chaos:"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("chaos:"));
            if !chaos {
                default(info);
            }
        }));
    });
}

/// A sharded corpus plus an e# whose expansion of the returned query
/// touches every shard — mirrors the core chaos-matrix testbed.
fn testbed() -> (Corpus, Esharp, String) {
    let world = World::generate(&WorldConfig::tiny(21));
    let mut corpus = generate_corpus(&world, &CorpusConfig::tiny(7));
    corpus.reshard(SHARDS);
    let mut per_shard: Vec<Option<String>> = vec![None; SHARDS];
    for id in 0..corpus.num_tokens() {
        let token = corpus.token_text(id as TokenId).to_string();
        let shard = corpus.term_home_shard(&token);
        if per_shard[shard].is_none() {
            per_shard[shard] = Some(token);
        }
    }
    let terms: Vec<String> = per_shard
        .into_iter()
        .map(|t| t.expect("every shard populated"))
        .collect();
    let query = esharp_serve::http::percent_encode(&terms[0]);
    let mut config = EsharpConfig::tiny();
    config.search_workers = SHARDS;
    let esharp = Esharp::new(DomainCollection::from_groups(vec![terms]), config);
    (corpus, esharp, query)
}

fn boot(config: ServeConfig, plan: ChaosPlan) -> (Server, String) {
    quiet_chaos_panics();
    let (corpus, esharp, query) = testbed();
    let hooks = ServeHooks {
        chaos: Arc::new(plan),
        ..ServeHooks::default()
    };
    let server = Server::start_live_with_hooks(
        "127.0.0.1:0",
        config,
        Arc::new(LiveCorpus::new(corpus)),
        Arc::new(SharedEsharp::new(esharp)),
        Arc::new(NoFaults),
        hooks,
    )
    .expect("bind");
    (server, query)
}

/// One-shot raw HTTP exchange; `None` if the server closed without a
/// response (a dead-worker connection). Callers embed
/// `Connection: close` in the payload so the read-to-EOF terminates
/// under the keep-alive front end.
fn raw(addr: std::net::SocketAddr, payload: &str) -> Option<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(payload.as_bytes()).expect("send");
    let mut out = String::new();
    if stream.read_to_string(&mut out).is_err() || out.is_empty() {
        return None;
    }
    let (head, body) = out.split_once("\r\n\r\n")?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    Some((status, head.to_string(), body.to_string()))
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    raw(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
    .expect("response")
}

#[test]
fn stalled_shard_marks_partial_and_never_caches() {
    let (server, query) = boot(
        ServeConfig {
            deadline: Duration::from_millis(15),
            hedge: false,
            ..ServeConfig::default()
        },
        ChaosPlan::new(1).stall_at("search:shard:1"),
    );
    let addr = server.local_addr();

    let (status, head, body) = get(addr, &format!("/search?q={query}"));
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("x-esharp-cache: miss"), "{head}");
    assert!(
        body.contains("\"degradation\":{\"partial\":true,\"shards_missing\":[1],\"shards_skipped\":[]}"),
        "{body}"
    );

    // A partial body must not have been cached: the same query misses
    // again (and stalls again — the plan pins the primary attempt).
    let (_, head, body2) = get(addr, &format!("/search?q={query}"));
    assert!(head.contains("x-esharp-cache: miss"), "partial was cached: {head}");
    assert_eq!(body, body2, "same seed, same partial bytes");

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("\"partial_responses\":2"), "{metrics}");
    server.shutdown();
}

#[test]
fn hedging_recovers_a_straggler_end_to_end() {
    let (server, query) = boot(
        ServeConfig {
            deadline: Duration::from_millis(500),
            hedge: true,
            hedge_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        },
        ChaosPlan::new(1).stall_at("search:shard:2"),
    );
    let addr = server.local_addr();

    let (status, _, body) = get(addr, &format!("/search?q={query}"));
    assert_eq!(status, 200, "{body}");
    assert!(
        body.contains("\"degradation\":null"),
        "hedge should deliver a complete answer: {body}"
    );
    // Complete answers are cacheable, stall or not.
    let (_, head, _) = get(addr, &format!("/search?q={query}"));
    assert!(head.contains("x-esharp-cache: hit"), "{head}");

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("\"hedges\":1"), "{metrics}");
    assert!(metrics.contains("\"hedge_wins\":1"), "{metrics}");
    assert!(metrics.contains("\"partial_responses\":0"), "{metrics}");
    server.shutdown();
}

#[test]
fn deadline_header_is_honored_and_clamped() {
    let (server, query) = boot(
        ServeConfig {
            // Generous default; the header tightens it per request.
            deadline: Duration::from_secs(5),
            deadline_max: Duration::from_millis(50),
            hedge: false,
            ..ServeConfig::default()
        },
        ChaosPlan::new(1).stall_at("search:shard:0"),
    );
    let addr = server.local_addr();

    // A huge header value is clamped to deadline_max: the stalled shard
    // would otherwise pin this request for ~17 minutes.
    let started = std::time::Instant::now();
    let (status, _, body) = raw(
        addr,
        &format!(
            "GET /search?q={query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Esharp-Deadline-Ms: 999999\r\n\r\n"
        ),
    )
    .expect("response");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"partial\":true"), "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "clamp failed: took {:?}",
        started.elapsed()
    );

    // Unparsable and zero values are client errors.
    for bad in ["abc", "0", "-5"] {
        let (status, _, body) = raw(
            addr,
            &format!(
                "GET /search?q={query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Esharp-Deadline-Ms: {bad}\r\n\r\n"
            ),
        )
        .expect("response");
        assert_eq!(status, 400, "{bad}: {body}");
    }
    server.shutdown();
}

#[test]
fn oversized_bodies_and_heads_are_rejected_before_reading() {
    let (server, _) = boot(
        ServeConfig {
            max_body_bytes: 256,
            ..ServeConfig::default()
        },
        ChaosPlan::new(1),
    );
    let addr = server.local_addr();

    // Declared oversized body: 413 from the declaration alone (the body
    // bytes are never sent, so an unbounded read would hang here).
    let (status, _, body) = raw(
        addr,
        "POST /ingest HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: 100000\r\n\r\n",
    )
    .expect("response");
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"cap\":256"), "{body}");

    // Unbounded header section: 431.
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\nX-Pad: {}\r\n\r\n",
        "a".repeat(32 * 1024)
    );
    let (status, _, body) = raw(addr, &huge).expect("response");
    assert_eq!(status, 431, "{body}");

    // In-cap requests still work.
    let (status, _, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn handler_panic_answers_500_and_the_worker_survives() {
    let (server, query) = boot(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        ChaosPlan::new(1).trigger_limited("serve:worker", ChaosFault::Panic, 1),
    );
    let addr = server.local_addr();

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"contained\":true"), "{body}");

    // The pool survived: every endpoint keeps answering.
    for _ in 0..4 {
        let (status, _, _) = get(addr, &format!("/search?q={query}"));
        assert_eq!(status, 200);
    }
    let (_, _, metrics) = get(addr, "/metrics");
    assert!(metrics.contains("\"worker_panics\":1"), "{metrics}");
    assert!(metrics.contains("\"workers_resurrected\":0"), "{metrics}");
    server.shutdown();
}

#[test]
fn dead_worker_is_resurrected_by_the_supervisor() {
    let (server, query) = boot(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        // Outside the request guard: this panic kills the thread.
        ChaosPlan::new(1).trigger_limited("serve:conn", ChaosFault::Panic, 1),
    );
    let addr = server.local_addr();

    // The poisoned connection dies without a response.
    let answer = raw(addr, "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(answer.is_none(), "a dead worker cannot answer: {answer:?}");

    // The supervisor notices within its poll interval and respawns; the
    // pool returns to full width and keeps serving.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, metrics) = get(addr, "/metrics");
        if metrics.contains("\"workers_resurrected\":1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "supervisor never resurrected the worker: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for _ in 0..4 {
        let (status, _, _) = get(addr, &format!("/search?q={query}"));
        assert_eq!(status, 200);
    }
    server.shutdown();
}
