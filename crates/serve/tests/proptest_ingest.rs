//! Property test interleaving search, ingest, and compaction publishes
//! against the same `LiveCorpus` + `ResultCache` pair the server wires
//! together. Two guarantees are pinned over random interleavings:
//!
//! 1. **A cache hit is never served across an epoch bump.** The cache key
//!    carries the corpus epoch, so after every ingest batch and every
//!    compaction publish a lookup structurally misses; any hit that does
//!    occur must be byte-identical to a cold search against the corpus
//!    snapshot live *right now*.
//! 2. **Post-compaction results ≡ cold rebuild.** After each compaction,
//!    rendering every query against the served corpus equals rendering it
//!    against a `Corpus::new` built from scratch over the live content.

use esharp_core::{DomainCollection, Esharp, EsharpConfig};
use esharp_ingest::{IngestOp, LiveCorpus};
use esharp_microblog::{Corpus, Tweet, User};
use esharp_serve::cache::CacheKey;
use esharp_serve::{search_and_render, ResultCache};
use proptest::prelude::*;
use std::sync::Arc;

const QUERIES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn user(id: u32, handle: &str) -> User {
    User {
        id,
        handle: handle.to_string(),
        display_name: format!("U {handle}"),
        description: format!("about {handle}"),
        followers: 10 + u64::from(id) * 7,
        verified: id % 2 == 0,
        expert_domains: vec![],
        spam: false,
    }
}

/// Mirror of the live corpus content: user handles in id order, tweet
/// slots in id order (`None` = tombstoned). Compaction densely renumbers.
struct Model {
    users: Vec<String>,
    slots: Vec<Option<(u32, String)>>,
}

impl Model {
    fn seed() -> (Model, Corpus) {
        let model = Model {
            users: vec!["alice".into(), "bob".into()],
            slots: vec![
                Some((0, "alpha beta news".into())),
                Some((1, "gamma delta chat".into())),
            ],
        };
        let base = model.rebuild();
        (model, base)
    }

    fn rebuild(&self) -> Corpus {
        let users = self
            .users
            .iter()
            .enumerate()
            .map(|(id, handle)| user(id as u32, handle))
            .collect();
        let tweets = self
            .slots
            .iter()
            .flatten()
            .enumerate()
            .map(|(id, (author, text))| Tweet::parse(id as u32, *author, text, |_| None))
            .collect();
        Corpus::new(users, tweets)
    }

    fn compact(&mut self) {
        self.slots.retain(Option::is_some);
    }
}

fn esharp() -> Esharp {
    Esharp::new(
        DomainCollection::from_groups(vec![
            vec!["alpha".into(), "beta".into()],
            vec!["gamma".into(), "delta".into()],
        ]),
        EsharpConfig::tiny(),
    )
}

fn steps() -> impl Strategy<Value = Vec<(u8, usize, String)>> {
    prop::collection::vec((0u8..=99, 0usize..1024, "[a-z ]{1,16}"), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random search/ingest/compact interleavings: every cache hit is
    /// byte-identical to a cold search at the current epochs, and every
    /// compaction leaves the served corpus rendering exactly like a
    /// from-scratch rebuild.
    #[test]
    fn cache_hits_never_cross_epoch_bumps_and_compaction_matches_rebuild(
        script in steps()
    ) {
        let (mut model, base) = Model::seed();
        let live = Arc::new(LiveCorpus::new(base));
        let cache = ResultCache::new(64);
        let esharp = esharp();
        let domains_epoch = 0u64;

        for (action, n, text) in script {
            match action {
                // Search, exactly as handle_search does it: snapshot,
                // 4-tuple key (health epoch constant here: no breakers
                // in this interleaving), hit-or-compute-and-insert.
                0..=39 => {
                    let q = QUERIES[n % QUERIES.len()];
                    let guard = live.read();
                    let key: CacheKey = (q.to_string(), domains_epoch, guard.epoch(), 0);
                    let cold = search_and_render(
                        guard.corpus(), &esharp, q, domains_epoch, guard.epoch(),
                    );
                    if let Some(hit) = cache.get(&key) {
                        // The invariant: a hit can only exist for the
                        // *current* corpus epoch, so its bytes must match
                        // a cold search against the current snapshot.
                        prop_assert_eq!(
                            &*hit, &cold,
                            "cache hit served stale bytes across an epoch bump"
                        );
                    } else {
                        cache.insert(key, Arc::new(cold));
                    }
                }
                // Ingest one op (epoch bump on success).
                40..=54 => {
                    let handle = format!("u{}", model.users.len());
                    let op = IngestOp::AddUser {
                        handle: handle.clone(),
                        display_name: format!("U {handle}"),
                        description: format!("about {handle}"),
                        followers: 10 + model.users.len() as u64 * 7,
                        verified: model.users.len() % 2 == 0,
                    };
                    live.apply_batch(&[op]).expect("add user");
                    model.users.push(handle);
                }
                55..=79 => {
                    let author = n % model.users.len();
                    let text = format!("{} {text}", QUERIES[n % QUERIES.len()]);
                    let op = IngestOp::Append {
                        author: model.users[author].clone(),
                        text: text.clone(),
                    };
                    live.apply_batch(&[op]).expect("append");
                    model.slots.push(Some((author as u32, text)));
                }
                80..=89 => {
                    let victims: Vec<usize> = model
                        .slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.is_some().then_some(i))
                        .collect();
                    if victims.is_empty() {
                        continue;
                    }
                    let victim = victims[n % victims.len()];
                    let op = IngestOp::Delete { id: victim as u32 };
                    live.apply_batch(&[op]).expect("delete");
                    model.slots[victim] = None;
                }
                // Compaction publish (epoch bump when a delta existed).
                _ => {
                    live.compact().expect("compact");
                    model.compact();
                    let rebuilt = model.rebuild();
                    let guard = live.read();
                    prop_assert!(!guard.corpus().has_delta());
                    for q in QUERIES {
                        let served = search_and_render(
                            guard.corpus(), &esharp, q, domains_epoch, guard.epoch(),
                        );
                        let cold = search_and_render(
                            &rebuilt, &esharp, q, domains_epoch, guard.epoch(),
                        );
                        prop_assert_eq!(
                            served, cold,
                            "post-compaction serving diverged from a cold rebuild on {:?}", q
                        );
                    }
                }
            }
        }

        // Terminal compaction: the whole interleaving folds down to
        // exactly the corpus a weekly full rebuild would have produced.
        live.compact().expect("final compact");
        model.compact();
        let rebuilt = model.rebuild();
        let guard = live.read();
        for q in QUERIES {
            let served = search_and_render(guard.corpus(), &esharp, q, 9, 9);
            let cold = search_and_render(&rebuilt, &esharp, q, 9, 9);
            prop_assert_eq!(served, cold);
        }
    }
}
