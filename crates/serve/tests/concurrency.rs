//! Satellite stress test: concurrent readers hammering `search` while a
//! writer keeps swapping the domains file between a good copy and a
//! corrupt one (single-bit corruption injected through `esharp-fault`).
//!
//! The invariants under test:
//!
//! * **No torn collection** — every search runs against a consistent
//!   snapshot; for any `(query, epoch)` pair, every rendered body is
//!   byte-identical, no matter which side of a reload it raced.
//! * **No stale-epoch service** — a snapshot's epoch always identifies
//!   the exact state searched, including its degradation, so a body
//!   carrying `"epoch":n` never mixes epochs.
//! * **No panics** — readers, writer, and HTTP workers all join cleanly.

use esharp_core::{SharedEsharp, RELOAD_SITE};
use esharp_eval::{EvalScale, Testbed};
use esharp_fault::{Fault, FaultPlan, NoFaults, RetryPolicy};
use esharp_serve::server::search_and_render;
use esharp_serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const READERS: usize = 6;
const SEARCHES_PER_READER: usize = 120;
const RELOADS: u32 = 40;

fn save_good(testbed: &Testbed, path: &Path) {
    testbed.esharp.domains().save(path).expect("save domains");
}

/// Write a corrupt copy: the save *succeeds* but one bit of the payload
/// is flipped in flight, so only the checksum layer can catch it.
fn save_corrupt(testbed: &Testbed, path: &Path, seed: u64) {
    let plan = FaultPlan::new(seed).trigger(
        "write:domains",
        0,
        Fault::BitFlip {
            offset: 97 + seed,
            bit: (seed % 8) as u8,
        },
    );
    testbed
        .esharp
        .domains()
        .save_with(path, &plan, "write:domains", &RetryPolicy::none())
        .expect("bit-flipped save still completes");
}

#[test]
fn readers_never_observe_torn_or_mixed_epoch_state() {
    let dir = std::env::temp_dir().join("esharp_serve_concurrency_lib");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("domains.bin");

    let testbed = Arc::new(Testbed::build(EvalScale::Tiny, 91));
    save_good(&testbed, &path);
    let shared = Arc::new(SharedEsharp::new(testbed.esharp.clone()));
    let queries: Vec<String> = testbed
        .world
        .domains
        .iter()
        .take(8)
        .map(|d| testbed.world.terms[d.terms[0] as usize].text.clone())
        .collect();

    // Every body ever rendered, keyed by (query, epoch). Concurrent
    // renders of the same key must agree byte for byte.
    let observed: Arc<Mutex<HashMap<(String, u64), Vec<u8>>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let shared = Arc::clone(&shared);
            let testbed = Arc::clone(&testbed);
            let queries = queries.clone();
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                for i in 0..SEARCHES_PER_READER {
                    let query = &queries[(r + i) % queries.len()];
                    let (esharp, epoch) = shared.snapshot();
                    let body = search_and_render(&testbed.corpus, &esharp, query, epoch, 0);
                    let mut seen = observed.lock().unwrap();
                    if let Some(prior) = seen.get(&(query.clone(), epoch)) {
                        assert_eq!(
                            prior, &body,
                            "torn state: two renders of ({query}, epoch {epoch}) differ"
                        );
                    } else {
                        seen.insert((query.clone(), epoch), body);
                    }
                }
            })
        })
        .collect();

    let writer = {
        let shared = Arc::clone(&shared);
        let testbed = Arc::clone(&testbed);
        let path = path.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut failures = 0u32;
            for attempt in 0..RELOADS {
                if stop.load(SeqCst) {
                    break;
                }
                // Every third cycle serves a corrupt file; every fifth, a
                // fault injected at the reload site itself.
                if attempt % 3 == 2 {
                    save_corrupt(&testbed, &path, u64::from(attempt));
                } else {
                    save_good(&testbed, &path);
                }
                let plan = FaultPlan::new(17).trigger(
                    RELOAD_SITE,
                    attempt,
                    Fault::IoError { transient: false },
                );
                let injector: &dyn esharp_fault::FaultInjector =
                    if attempt % 5 == 0 { &plan } else { &NoFaults };
                if shared.reload_with(&path, injector, attempt).is_err() {
                    failures += 1;
                }
            }
            failures
        })
    };

    for reader in readers {
        reader.join().expect("reader must not panic");
    }
    stop.store(true, SeqCst);
    let failures = writer.join().expect("writer must not panic");
    assert!(failures > 0, "the schedule must exercise failed reloads");

    // The final epoch reflects every completed reload attempt, success
    // and failure alike.
    let (final_state, final_epoch) = shared.snapshot();
    assert!(final_epoch > 0);
    assert!(
        !final_state.domains().domains().is_empty(),
        "last known-good collection must survive corrupt reloads"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn http_searches_race_reloads_without_panics_or_mixed_bodies() {
    let dir = std::env::temp_dir().join("esharp_serve_concurrency_http");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("domains.bin");

    let testbed = Testbed::build(EvalScale::Tiny, 92);
    save_good(&testbed, &path);
    let query_raw = testbed.world.terms[testbed.world.domains[0].terms[0] as usize]
        .text
        .clone();
    let query = esharp_serve::http::percent_encode(&query_raw);

    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers: 4,
            queue_depth: 256,
            domains_path: Some(path.clone()),
            ..ServeConfig::default()
        },
        Arc::new(testbed.corpus.clone()),
        Arc::new(SharedEsharp::new(testbed.esharp.clone())),
    )
    .expect("bind");
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let query = query.clone();
            std::thread::spawn(move || {
                let mut bodies: HashMap<u64, Vec<u8>> = HashMap::new();
                for _ in 0..60 {
                    let mut s = TcpStream::connect(addr).expect("connect");
                    s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                    s.write_all(
                        format!("GET /search?q={query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
                    )
                    .expect("send");
                    let mut raw = Vec::new();
                    s.read_to_end(&mut raw).expect("read");
                    let text = String::from_utf8(raw).expect("utf8 response");
                    let (head, body) = text.split_once("\r\n\r\n").expect("head");
                    assert!(head.starts_with("HTTP/1.1 200"), "client {c}: {head}");
                    // Parse the epoch this body claims, and require every
                    // body claiming it to be byte-identical.
                    let epoch: u64 = body
                        .split_once("\"epoch\":")
                        .and_then(|(_, rest)| {
                            rest.split(|ch: char| !ch.is_ascii_digit()).next()?.parse().ok()
                        })
                        .expect("epoch field");
                    let bytes = body.as_bytes().to_vec();
                    if let Some(prior) = bodies.get(&epoch) {
                        assert_eq!(prior, &bytes, "mixed-epoch body at epoch {epoch}");
                    } else {
                        bodies.insert(epoch, bytes);
                    }
                }
            })
        })
        .collect();

    let reloader = {
        let path = path.clone();
        let testbed_domains = testbed.esharp.domains().clone();
        std::thread::spawn(move || {
            for i in 0..20u64 {
                if i % 3 == 2 {
                    let plan = FaultPlan::new(i).trigger(
                        "write:domains",
                        0,
                        Fault::BitFlip { offset: 41 + i, bit: (i % 8) as u8 },
                    );
                    testbed_domains
                        .save_with(&path, &plan, "write:domains", &RetryPolicy::none())
                        .expect("corrupt save completes");
                } else {
                    testbed_domains.save(&path).expect("good save");
                }
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                s.write_all(b"POST /reload HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("send");
                let mut raw = Vec::new();
                s.read_to_end(&mut raw).expect("read");
                let text = String::from_utf8_lossy(&raw);
                assert!(
                    text.starts_with("HTTP/1.1 200") || text.starts_with("HTTP/1.1 500"),
                    "{text}"
                );
            }
        })
    };

    for client in clients {
        client.join().expect("client must not panic");
    }
    reloader.join().expect("reloader must not panic");

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
