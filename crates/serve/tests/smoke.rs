//! End-to-end smoke test over real sockets: boot a server on an
//! ephemeral port, exercise every endpoint, and shut down cleanly.
//! `scripts/tier1.sh` runs exactly this test as its serve gate.

use esharp_core::SharedEsharp;
use esharp_eval::{EvalScale, Testbed};
use esharp_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A one-shot HTTP client (the server closes every connection).
fn request(addr: std::net::SocketAddr, line: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(format!("{line} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, &format!("GET {path}"))
}

struct Fixture {
    server: Server,
    addr: std::net::SocketAddr,
    domains_path: PathBuf,
    dir: PathBuf,
    query: String,
}

fn boot(name: &str, config: ServeConfig) -> Fixture {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let domains_path = dir.join("domains.bin");

    let testbed = Testbed::build(EvalScale::Tiny, 77);
    testbed
        .esharp
        .domains()
        .save(&domains_path)
        .expect("persist domains");
    // A canonical domain term: guaranteed to be in the collection, so the
    // search exercises expansion.
    let domain = &testbed.world.domains[0];
    let query =
        esharp_serve::http::percent_encode(&testbed.world.terms[domain.terms[0] as usize].text);

    let config = ServeConfig {
        domains_path: Some(domains_path.clone()),
        ..config
    };
    let server = Server::start(
        "127.0.0.1:0",
        config,
        Arc::new(testbed.corpus),
        Arc::new(SharedEsharp::new(testbed.esharp)),
    )
    .expect("bind");
    let addr = server.local_addr();
    Fixture {
        server,
        addr,
        domains_path,
        dir,
        query,
    }
}

impl Fixture {
    fn finish(self) {
        self.server.shutdown();
        let _ = std::fs::remove_dir_all(self.dir);
    }
}

#[test]
fn endpoints_roundtrip_and_shutdown_cleanly() {
    let f = boot("esharp_serve_smoke", ServeConfig::default());

    // Cold search: well-formed JSON shape, cache miss.
    let (status, head, body) = get(f.addr, &format!("/search?q={}", f.query));
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("x-esharp-cache: miss"), "{head}");
    assert!(body.starts_with("{\"query\":"), "{body}");
    for needle in ["\"epoch\":0", "\"expansion\":[", "\"experts\":[", "\"degradation\":null"] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }
    assert_eq!(body.matches('{').count(), body.matches('}').count());

    // Warm search: byte-identical body, cache hit.
    let (status, head, warm) = get(f.addr, &format!("/search?q={}", f.query));
    assert_eq!(status, 200);
    assert!(head.contains("x-esharp-cache: hit"), "{head}");
    assert_eq!(warm, body, "cached body must be byte-identical");

    // Health: ok, epoch 0.
    let (status, _, health) = get(f.addr, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // Metrics: counters reflect the traffic above.
    let (status, _, metrics) = get(f.addr, "/metrics");
    assert_eq!(status, 200);
    for needle in ["\"search\":2", "\"hits\":1", "\"misses\":1", "\"shed_total\":0"] {
        assert!(metrics.contains(needle), "missing {needle} in {metrics}");
    }

    // Reload from the known-good file: epoch bumps, next search re-misses
    // exactly once, then re-hits.
    let (status, _, reload) = request(f.addr, "POST /reload");
    assert_eq!(status, 200, "{reload}");
    assert!(reload.contains("\"ok\":true"), "{reload}");
    assert!(reload.contains("\"epoch\":1"), "{reload}");
    let (_, head, post_reload) = get(f.addr, &format!("/search?q={}", f.query));
    assert!(head.contains("x-esharp-cache: miss"), "{head}");
    assert!(post_reload.contains("\"epoch\":1"), "{post_reload}");
    let (_, head, _) = get(f.addr, &format!("/search?q={}", f.query));
    assert!(head.contains("x-esharp-cache: hit"), "{head}");

    // Client errors.
    let (status, _, _) = get(f.addr, "/search");
    assert_eq!(status, 400, "missing q");
    let (status, _, _) = get(f.addr, "/nope");
    assert_eq!(status, 404);
    let (status, _, _) = request(f.addr, "POST /search?q=x");
    assert_eq!(status, 405);
    let (status, _, _) = get(f.addr, "/reload");
    assert_eq!(status, 405, "reload is POST-only");

    f.finish();
}

#[test]
fn corrupt_reload_keeps_serving_degraded() {
    let f = boot("esharp_serve_smoke_corrupt", ServeConfig::default());

    // Clobber the domains file with garbage; the checksummed loader must
    // reject it and the server must keep the last known-good collection.
    std::fs::write(&f.domains_path, b"ESRT not a real collection").expect("corrupt");
    let (status, _, reload) = request(f.addr, "POST /reload");
    assert_eq!(status, 500, "{reload}");
    assert!(reload.contains("\"ok\":false"), "{reload}");
    assert!(
        reload.contains("\"degradation\":{\"kind\":\"stale_domains\""),
        "{reload}"
    );

    // Health flips to degraded; searches still answer, carrying the
    // degradation and the bumped epoch.
    let (status, _, health) = get(f.addr, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"epoch\":1"), "{health}");
    let (status, _, body) = get(f.addr, &format!("/search?q={}", f.query));
    assert_eq!(status, 200);
    assert!(body.contains("\"degradation\":{\"kind\":\"stale_domains\""), "{body}");
    assert!(body.contains("\"epoch\":1"), "{body}");

    f.finish();
}

#[test]
fn full_queue_sheds_with_503() {
    // One worker, a one-deep queue: park the worker and the queue slot on
    // idle connections, and every further arrival must be shed.
    let f = boot(
        "esharp_serve_smoke_shed",
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
    );

    // Idle connections occupy the worker (blocked reading) and then the
    // queue. Admission is asynchronous, so keep connecting until the
    // server starts answering 503 — bounded by the connection budget.
    let mut parked = Vec::new();
    let mut shed_seen = false;
    for _ in 0..50 {
        let mut c = TcpStream::connect(f.addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_millis(500))).expect("timeout");
        // A shed connection gets an immediate 503; an admitted one stays
        // silent (the worker is waiting for a request we never send).
        let mut buf = [0u8; 512];
        match c.read(&mut buf) {
            Ok(n) if n > 0 => {
                let text = String::from_utf8_lossy(&buf[..n]).into_owned();
                assert!(text.starts_with("HTTP/1.1 503"), "{text}");
                assert!(text.contains("\"shed\":true"), "{text}");
                shed_seen = true;
                break;
            }
            _ => parked.push(c),
        }
    }
    assert!(shed_seen, "queue never saturated");

    // Release the parked connections; the server recovers and serves.
    // Draining the queued stale connections is asynchronous, so a
    // request racing the drain can still be shed — retry briefly.
    drop(parked);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let (status, _, metrics) = get(f.addr, "/metrics");
        if status == 200 {
            break metrics;
        }
        assert_eq!(status, 503, "{metrics}");
        assert!(
            std::time::Instant::now() < deadline,
            "server never recovered after the queue drained: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(!metrics.contains("\"shed_total\":0"), "{metrics}");

    f.finish();
}
