//! End-to-end smoke test over real sockets: boot a server on an
//! ephemeral port, exercise every endpoint, and shut down cleanly.
//! Includes the keep-alive / pipelined / batch smoke the event-driven
//! front end added. `scripts/tier1.sh` runs exactly this test as its
//! serve gate.

use esharp_core::SharedEsharp;
use esharp_eval::{EvalScale, Testbed};
use esharp_fault::{ChaosFault, ChaosPlan, NoFaults};
use esharp_ingest::LiveCorpus;
use esharp_serve::{ServeConfig, ServeHooks, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A one-shot HTTP client: sends `Connection: close` so the read-to-EOF
/// below terminates even though the server now speaks keep-alive.
fn request(addr: std::net::SocketAddr, line: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(format!("{line} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String, String) {
    request(addr, &format!("GET {path}"))
}

/// Read exactly one HTTP response off a keep-alive connection: head up
/// to the blank line, then `Content-Length` body bytes. `carry` holds
/// over-read bytes between calls — pipelined responses arrive
/// coalesced, so one read can span response boundaries.
fn read_one_response_from(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (u16, String, String) {
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "connection closed mid-response: {:?}", String::from_utf8_lossy(carry));
        carry.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            if name.eq_ignore_ascii_case("content-length") {
                value.trim().parse().ok()
            } else {
                None
            }
        })
        .expect("content-length header");
    let body_end = head_end + 4 + content_length;
    while carry.len() < body_end {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        carry.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&carry[head_end + 4..body_end]).into_owned();
    carry.drain(..body_end);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head, body)
}

/// [`read_one_response_from`] without carry, for strict one-at-a-time
/// request/response exchanges.
fn read_one_response(stream: &mut TcpStream) -> (u16, String, String) {
    let mut carry = Vec::new();
    let out = read_one_response_from(stream, &mut carry);
    assert!(carry.is_empty(), "unexpected trailing bytes: {:?}", String::from_utf8_lossy(&carry));
    out
}

struct Fixture {
    server: Server,
    addr: std::net::SocketAddr,
    domains_path: PathBuf,
    dir: PathBuf,
    query: String,
}

fn boot(name: &str, config: ServeConfig) -> Fixture {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    let domains_path = dir.join("domains.bin");

    let testbed = Testbed::build(EvalScale::Tiny, 77);
    testbed
        .esharp
        .domains()
        .save(&domains_path)
        .expect("persist domains");
    // A canonical domain term: guaranteed to be in the collection, so the
    // search exercises expansion.
    let domain = &testbed.world.domains[0];
    let query =
        esharp_serve::http::percent_encode(&testbed.world.terms[domain.terms[0] as usize].text);

    let config = ServeConfig {
        domains_path: Some(domains_path.clone()),
        ..config
    };
    let server = Server::start(
        "127.0.0.1:0",
        config,
        Arc::new(testbed.corpus),
        Arc::new(SharedEsharp::new(testbed.esharp)),
    )
    .expect("bind");
    let addr = server.local_addr();
    Fixture {
        server,
        addr,
        domains_path,
        dir,
        query,
    }
}

impl Fixture {
    fn finish(self) {
        self.server.shutdown();
        let _ = std::fs::remove_dir_all(self.dir);
    }
}

#[test]
fn endpoints_roundtrip_and_shutdown_cleanly() {
    let f = boot("esharp_serve_smoke", ServeConfig::default());

    // Cold search: well-formed JSON shape, cache miss.
    let (status, head, body) = get(f.addr, &format!("/search?q={}", f.query));
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("x-esharp-cache: miss"), "{head}");
    assert!(body.starts_with("{\"query\":"), "{body}");
    for needle in ["\"epoch\":0", "\"expansion\":[", "\"experts\":[", "\"degradation\":null"] {
        assert!(body.contains(needle), "missing {needle} in {body}");
    }
    assert_eq!(body.matches('{').count(), body.matches('}').count());

    // Warm search: byte-identical body, cache hit.
    let (status, head, warm) = get(f.addr, &format!("/search?q={}", f.query));
    assert_eq!(status, 200);
    assert!(head.contains("x-esharp-cache: hit"), "{head}");
    assert_eq!(warm, body, "cached body must be byte-identical");

    // Health: ok, epoch 0.
    let (status, _, health) = get(f.addr, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // Metrics: counters reflect the traffic above.
    let (status, _, metrics) = get(f.addr, "/metrics");
    assert_eq!(status, 200);
    for needle in ["\"search\":2", "\"hits\":1", "\"misses\":1", "\"shed_total\":0"] {
        assert!(metrics.contains(needle), "missing {needle} in {metrics}");
    }

    // Reload from the known-good file: epoch bumps, next search re-misses
    // exactly once, then re-hits.
    let (status, _, reload) = request(f.addr, "POST /reload");
    assert_eq!(status, 200, "{reload}");
    assert!(reload.contains("\"ok\":true"), "{reload}");
    assert!(reload.contains("\"epoch\":1"), "{reload}");
    let (_, head, post_reload) = get(f.addr, &format!("/search?q={}", f.query));
    assert!(head.contains("x-esharp-cache: miss"), "{head}");
    assert!(post_reload.contains("\"epoch\":1"), "{post_reload}");
    let (_, head, _) = get(f.addr, &format!("/search?q={}", f.query));
    assert!(head.contains("x-esharp-cache: hit"), "{head}");

    // Client errors.
    let (status, _, _) = get(f.addr, "/search");
    assert_eq!(status, 400, "missing q");
    let (status, _, _) = get(f.addr, "/nope");
    assert_eq!(status, 404);
    let (status, _, _) = request(f.addr, "POST /search?q=x");
    assert_eq!(status, 405);
    let (status, _, _) = get(f.addr, "/reload");
    assert_eq!(status, 405, "reload is POST-only");

    f.finish();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let f = boot("esharp_serve_smoke_keepalive", ServeConfig::default());

    // Reference bodies over one-shot connections.
    let (_, _, search_ref) = get(f.addr, &format!("/search?q={}", f.query));
    let (_, _, health_ref) = get(f.addr, "/healthz");

    let mut stream = TcpStream::connect(f.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    // Sequential requests over one connection: identical bodies, no
    // reconnect. The search is now warm, so the cache header flips.
    for round in 0..3 {
        stream
            .write_all(
                format!("GET /search?q={} HTTP/1.1\r\nHost: t\r\n\r\n", f.query).as_bytes(),
            )
            .expect("send");
        let (status, head, body) = read_one_response(&mut stream);
        assert_eq!(status, 200, "round {round}: {body}");
        assert!(head.contains("x-esharp-cache: hit"), "round {round}: {head}");
        assert_eq!(body, search_ref, "round {round}: keep-alive body drifted");
    }
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let (status, _, health) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(health, health_ref);

    // Pipelined burst: all requests written before any response is read;
    // responses come back in order, byte-identical to the singles.
    let mut burst = Vec::new();
    for _ in 0..4 {
        burst.extend_from_slice(
            format!("GET /search?q={} HTTP/1.1\r\nHost: t\r\n\r\n", f.query).as_bytes(),
        );
    }
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    stream.write_all(&burst).expect("send burst");
    let mut carry = Vec::new();
    for i in 0..4 {
        let (status, _, body) = read_one_response_from(&mut stream, &mut carry);
        assert_eq!(status, 200, "pipelined {i}");
        assert_eq!(body, search_ref, "pipelined {i}: body drifted");
    }
    let (status, head, _) = read_one_response_from(&mut stream, &mut carry);
    assert_eq!(status, 200);
    assert!(
        head.to_lowercase().contains("connection: close"),
        "final response must acknowledge the close: {head}"
    );
    // The server honors Connection: close — EOF follows.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("eof");
    assert!(carry.is_empty() && rest.is_empty(), "bytes after the final response");

    // The metrics saw keep-alive reuse and pipelining.
    let (_, _, metrics) = get(f.addr, "/metrics");
    assert!(!metrics.contains("\"keepalive_reuses\":0"), "{metrics}");
    assert!(!metrics.contains("\"pipelined_requests\":0"), "{metrics}");

    f.finish();
}

#[test]
fn batch_search_matches_sequential_singles() {
    let f = boot("esharp_serve_smoke_batch", ServeConfig::default());

    // Three distinct queries: the canonical domain term twice (dedup on
    // the wire is the client's problem — the batch answers per line) and
    // a miss-y free-text term.
    let raw_query = {
        // percent_encode round-trips the plain term; the batch body is
        // raw text, not percent-encoded.
        esharp_serve::http::percent_decode(&f.query).expect("decode")
    };
    let queries = [raw_query.as_str(), "zzzunknownterm", raw_query.as_str()];

    // Reference: sequential one-shot singles, cold cache.
    let mut singles = Vec::new();
    for q in &queries {
        let (status, _, body) = get(
            f.addr,
            &format!("/search?q={}", esharp_serve::http::percent_encode(q)),
        );
        assert_eq!(status, 200, "{body}");
        singles.push(body);
    }

    let body_text = queries.join("\n");
    let (status, _, batch) = request_with_body(f.addr, "POST /search/batch", &body_text);
    assert_eq!(status, 200, "{batch}");
    assert!(batch.starts_with("{\"batch\":3,"), "{batch}");
    // The results array is exactly the three single bodies, in order.
    let expected = format!(
        "{{\"batch\":3,\"epoch\":0,\"corpus_epoch\":0,\"results\":[{},{},{}]}}",
        singles[0], singles[1], singles[2]
    );
    assert_eq!(batch, expected, "batch must be bit-identical to singles");

    // Degenerate batches are client errors.
    let (status, _, _) = request_with_body(f.addr, "POST /search/batch", "\n\n  \n");
    assert_eq!(status, 400, "empty batch");
    let too_many = vec!["q"; 10_000].join("\n");
    let (status, _, over) = request_with_body(f.addr, "POST /search/batch", &too_many);
    assert_eq!(status, 400, "{over}");
    assert!(over.contains("\"batch too large\""), "{over}");

    let (_, _, metrics) = get(f.addr, "/metrics");
    // All three POSTs count as batch requests (the degenerate ones were
    // rejected before contributing queries).
    assert!(metrics.contains("\"batch_requests\":3"), "{metrics}");
    assert!(metrics.contains("\"batch_queries\":3"), "{metrics}");

    f.finish();
}

/// One-shot POST with a body.
fn request_with_body(addr: std::net::SocketAddr, line: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(
            format!(
                "{line} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, head.to_string(), body.to_string())
}

#[test]
fn corrupt_reload_keeps_serving_degraded() {
    let f = boot("esharp_serve_smoke_corrupt", ServeConfig::default());

    // Clobber the domains file with garbage; the checksummed loader must
    // reject it and the server must keep the last known-good collection.
    std::fs::write(&f.domains_path, b"ESRT not a real collection").expect("corrupt");
    let (status, _, reload) = request(f.addr, "POST /reload");
    assert_eq!(status, 500, "{reload}");
    assert!(reload.contains("\"ok\":false"), "{reload}");
    assert!(
        reload.contains("\"degradation\":{\"kind\":\"stale_domains\""),
        "{reload}"
    );

    // Health flips to degraded; searches still answer, carrying the
    // degradation and the bumped epoch.
    let (status, _, health) = get(f.addr, "/healthz");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"epoch\":1"), "{health}");
    let (status, _, body) = get(f.addr, &format!("/search?q={}", f.query));
    assert_eq!(status, 200);
    assert!(body.contains("\"degradation\":{\"kind\":\"stale_domains\""), "{body}");
    assert!(body.contains("\"epoch\":1"), "{body}");

    f.finish();
}

#[test]
fn full_queue_sheds_with_503_and_the_connection_survives() {
    // One worker, a one-deep queue, and chaos delays parking the worker
    // on its first few jobs: arrivals past worker+queue are shed at
    // dispatch. Under keep-alive the shed `503` must NOT kill the
    // connection — the same socket gets a `Retry-After`, waits, retries,
    // and is served.
    let testbed = Testbed::build(EvalScale::Tiny, 77);
    let hooks = ServeHooks {
        chaos: Arc::new(ChaosPlan::new(3).trigger_limited(
            "serve:conn",
            ChaosFault::Delay { us: 400_000 },
            4,
        )),
        ..ServeHooks::default()
    };
    let server = Server::start_live_with_hooks(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        },
        Arc::new(LiveCorpus::new(testbed.corpus)),
        Arc::new(SharedEsharp::new(testbed.esharp)),
        Arc::new(NoFaults),
        hooks,
    )
    .expect("bind");
    let addr = server.local_addr();

    // Flood: while the worker is parked (400ms per job) and the queue
    // holds one, the rest of these concurrent arrivals must be shed.
    let mut conns: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
            c.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
            c
        })
        .collect();

    let mut shed_conn = None;
    let mut shed_seen = 0;
    for mut c in conns.drain(..) {
        let (status, head, body) = read_one_response(&mut c);
        match status {
            200 => {}
            503 => {
                assert!(body.contains("\"shed\":true"), "{body}");
                assert!(
                    head.to_lowercase().contains("retry-after: 1"),
                    "shed without Retry-After: {head}"
                );
                assert!(
                    !head.to_lowercase().contains("connection: close"),
                    "shed must keep the connection: {head}"
                );
                shed_seen += 1;
                if shed_conn.is_none() {
                    shed_conn = Some(c);
                }
            }
            other => panic!("unexpected status {other}: {head}\n{body}"),
        }
    }
    assert!(shed_seen >= 1, "queue never saturated");
    let mut c = shed_conn.expect("at least one shed connection kept");

    // The shed connection retries on the SAME socket until admitted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        c.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("resend");
        let (status, _, body) = read_one_response(&mut c);
        if status == 200 {
            assert!(body.contains("\"status\":"), "{body}");
            break;
        }
        assert_eq!(status, 503, "{body}");
        assert!(
            std::time::Instant::now() < deadline,
            "shed connection was never admitted: {body}"
        );
    }

    let (_, _, metrics) = get(addr, "/metrics");
    assert!(!metrics.contains("\"shed_total\":0"), "{metrics}");

    server.shutdown();
}
