//! The serving core: event loop → bounded admission queue → worker
//! pool → pure endpoint handlers.
//!
//! Since PR 10 the front end is a nonblocking readiness event loop
//! ([`crate::event_loop`]): one acceptor/dispatcher thread owns every
//! socket and drives per-connection state machines with HTTP/1.1
//! keep-alive and pipelining. Workers never touch sockets — they pop
//! parsed requests ([`Job`]s) from the bounded queue, run the handler,
//! and hand the rendered [`Response`] back through a completion vector
//! plus a self-pipe wakeup. The queue's bound is still the *admission
//! control*: when it is full the loop answers `503 Retry-After` inline
//! — but on a keep-alive connection the shed costs one request, not the
//! connection.
//!
//! The PR 8 tail-tolerance contract carries over verbatim: per-request
//! deadline budgets, partial-result degradation, hedged shard re-issue,
//! per-shard breakers keyed into the cache, supervised workers, and the
//! two chaos seams — `serve:worker` (guarded: a panic answers `500`
//! `contained:true`) and `serve:conn` (unguarded: a panic kills the
//! worker thread; the supervisor aborts the orphaned connection without
//! a response and respawns the thread).

use crate::cache::{CacheKey, ResultCache};
use crate::http::{self, Limits, Request};
use crate::json;
use crate::metrics::{BreakerStats, Metrics};
use crate::poller::Wakeup;
use esharp_core::{Degradation, Esharp, SearchOutcome, SharedEsharp};
use esharp_fault::{
    BreakerConfig, Budget, ChaosFault, ChaosInjector, FaultInjector, NoChaos, NoFaults,
    ShardBreakers, TickSource, WallClock,
};
use esharp_ingest::{Compactor, CompactorConfig, IngestOp, LiveCorpus};
use esharp_microblog::{BoundedSearch, Corpus};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs (`esharp serve` flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling admitted requests.
    pub workers: usize,
    /// Total result-cache bodies (0 disables caching).
    pub cache_capacity: usize,
    /// Admission-queue bound; requests beyond it are shed with `503`.
    pub queue_depth: usize,
    /// The domains file `POST /reload` re-reads (the weekly refresh
    /// hand-off); `None` makes reload a `400`.
    pub domains_path: Option<PathBuf>,
    /// Background-compaction trigger: compact once this many ingested
    /// ops are pending. `0` disables the background thread (`POST
    /// /compact` still works).
    pub compact_threshold: usize,
    /// Background-compaction poll interval.
    pub compact_interval: Duration,
    /// Default per-search deadline; shard work past it is abandoned and
    /// the answer marked partial (the paper's <1 s detection budget,
    /// enforced rather than hoped for). Overridable per request with the
    /// `X-Esharp-Deadline-Ms` header.
    pub deadline: Duration,
    /// Upper clamp on the per-request deadline header.
    pub deadline_max: Duration,
    /// Re-issue straggling shards as hedged duplicates once
    /// `hedge_delay` of a search's budget has elapsed.
    pub hedge: bool,
    /// How long to wait before hedging stragglers (ideally the steady
    /// per-shard p99; `esharp bench --serve` measures it).
    pub hedge_delay: Duration,
    /// Max accepted `Content-Length` on `POST` bodies; larger uploads
    /// are refused with `413` before the body is read.
    pub max_body_bytes: usize,
    /// Consecutive shard failures (deadline misses / panics) that trip
    /// that shard's circuit breaker. `0` disables breakers.
    pub breaker_threshold: u32,
    /// How long a tripped breaker stays open before probing.
    pub breaker_open: Duration,
    /// Reap keep-alive connections idle longer than this (also the
    /// patience extended to clients that stop draining responses).
    pub keep_alive_timeout: Duration,
    /// Max requests parsed ahead on one connection; beyond it the
    /// connection stops being read and TCP backpressure takes over.
    pub max_pipeline_depth: usize,
    /// Max queries accepted in one `POST /search/batch` body.
    pub batch_max_queries: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Clamped to the host so small containers don't oversubscribe
            // (explicit settings are honored as given).
            workers: 4.min(esharp_par::detected_workers()),
            cache_capacity: 1024,
            queue_depth: 64,
            domains_path: None,
            compact_threshold: 0,
            compact_interval: Duration::from_millis(250),
            deadline: Duration::from_secs(1),
            deadline_max: Duration::from_secs(10),
            hedge: false,
            hedge_delay: Duration::from_millis(20),
            max_body_bytes: http::DEFAULT_MAX_BODY,
            breaker_threshold: 3,
            breaker_open: Duration::from_secs(5),
            keep_alive_timeout: Duration::from_secs(5),
            max_pipeline_depth: 32,
            batch_max_queries: 256,
        }
    }
}

/// Test seams for the serving stack: the tick source budgets and waits
/// run on, and the chaos injector consulted at the `serve:worker` /
/// `serve:conn` seams. Production servers use the defaults (wall clock,
/// no chaos); the chaos harness swaps both.
#[derive(Clone)]
pub struct ServeHooks {
    /// Clock behind request budgets and injected waits.
    pub clock: Arc<dyn TickSource>,
    /// Chaos injector for the serve-layer seams.
    pub chaos: Arc<dyn ChaosInjector>,
}

impl Default for ServeHooks {
    fn default() -> Self {
        ServeHooks {
            clock: WallClock::shared(),
            chaos: Arc::new(NoChaos),
        }
    }
}

/// One admitted request, on its way from the event loop to a worker.
#[derive(Debug)]
pub(crate) struct Job {
    /// The connection the response routes back to.
    pub(crate) token: u64,
    pub(crate) request: Request,
    /// Monotonic job counter — the `attempt` axis of the serve-layer
    /// chaos sites.
    pub(crate) attempt: u32,
}

/// A handler's answer, rendered to wire bytes by the event loop (which
/// alone decides the final `connection:` header).
#[derive(Debug)]
pub(crate) struct Response {
    pub(crate) status: u16,
    pub(crate) headers: Vec<(&'static str, &'static str)>,
    pub(crate) body: Vec<u8>,
    /// Force-close the connection after this response regardless of
    /// what the request asked for (contained panics).
    pub(crate) close: bool,
}

impl Response {
    fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            close: false,
        }
    }

    fn with_header(mut self, name: &'static str, value: &'static str) -> Response {
        self.headers.push((name, value));
        self
    }
}

/// A worker's result for one [`Job`]. `response: None` aborts the
/// connection without an answer — the supervisor files these for jobs
/// orphaned by a worker death at the unguarded seam.
#[derive(Debug)]
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) response: Option<Response>,
}

/// The admission queue: a bounded, condvar-signalled channel of parsed
/// requests.
#[derive(Debug)]
pub(crate) struct Queue {
    inner: Mutex<VecDeque<Job>>,
    ready: Condvar,
    depth: usize,
    shutdown: AtomicBool,
}

impl Queue {
    fn new(depth: usize) -> Queue {
        Queue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Admit the job. Returns `false` — dropping the job — when the
    /// queue is full; the caller sheds the request it was built from.
    pub(crate) fn try_push(&self, job: Job) -> bool {
        let mut queue = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.depth {
            return false;
        }
        queue.push_back(job);
        drop(queue);
        self.ready.notify_one();
        true
    }

    /// Next admitted job; `None` once shut down and drained.
    fn pop(&self) -> Option<Job> {
        let mut queue = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(SeqCst) {
                return None;
            }
            queue = self.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.shutdown.store(true, SeqCst);
        self.ready.notify_all();
    }
}

/// Shared handler state (one per server, `Arc`ed to every thread).
pub(crate) struct State {
    live: Arc<LiveCorpus>,
    shared: Arc<SharedEsharp>,
    cache: ResultCache,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) config: ServeConfig,
    injector: Arc<dyn FaultInjector>,
    /// Monotonic reload-attempt counter, the `attempt` axis of the
    /// `reload:domains` fault site.
    reload_attempts: AtomicU32,
    /// Clock behind request budgets and chaos waits.
    clock: Arc<dyn TickSource>,
    /// Chaos injector for `serve:worker` / `serve:conn`.
    chaos: Arc<dyn ChaosInjector>,
    /// Per-shard circuit breakers for the search scatter-gather.
    breakers: ShardBreakers,
    /// Request size caps (from `config.max_body_bytes`).
    pub(crate) limits: Limits,
    /// Monotonic job counter, the `attempt` axis of the serve-layer
    /// chaos sites (one per dispatched request).
    pub(crate) job_attempts: AtomicU32,
}

/// A running e# server. Dropping without [`Server::shutdown`] leaves the
/// threads detached; call `shutdown` for a clean join.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    queue: Arc<Queue>,
    stop: Arc<AtomicBool>,
    wakeup: Arc<Wakeup>,
    loop_handle: Option<JoinHandle<()>>,
    /// Worker slots, shared with the supervisor so it can swap in
    /// replacements for dead threads.
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor_stop: Arc<AtomicBool>,
    supervisor_handle: Option<JoinHandle<()>>,
    compactor: Option<Compactor>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the event loop plus `config.workers` worker threads.
    pub fn start(
        addr: &str,
        config: ServeConfig,
        corpus: Arc<Corpus>,
        shared: Arc<SharedEsharp>,
    ) -> io::Result<Server> {
        Server::start_with_injector(addr, config, corpus, shared, Arc::new(NoFaults))
    }

    /// [`Server::start`] with a fault injector on the reload path
    /// (consulted at site `reload:domains`; production servers pass
    /// [`NoFaults`] via `start`).
    pub fn start_with_injector(
        addr: &str,
        config: ServeConfig,
        corpus: Arc<Corpus>,
        shared: Arc<SharedEsharp>,
        injector: Arc<dyn FaultInjector>,
    ) -> io::Result<Server> {
        // A plain snapshot corpus serves through an in-memory LiveCorpus
        // (ingest works, nothing is persisted). Unwrap the Arc when this
        // caller holds the only reference — the common case — and clone
        // otherwise.
        let corpus =
            Arc::try_unwrap(corpus).unwrap_or_else(|shared_corpus| (*shared_corpus).clone());
        Server::start_live(
            addr,
            config,
            Arc::new(LiveCorpus::new(corpus)),
            shared,
            injector,
        )
    }

    /// Start serving a [`LiveCorpus`] — the full streaming setup: `POST
    /// /ingest` absorbs ops (durably, when the live corpus has
    /// persistence), and a background [`Compactor`] folds the delta when
    /// `config.compact_threshold > 0`.
    pub fn start_live(
        addr: &str,
        config: ServeConfig,
        live: Arc<LiveCorpus>,
        shared: Arc<SharedEsharp>,
        injector: Arc<dyn FaultInjector>,
    ) -> io::Result<Server> {
        Server::start_live_with_hooks(addr, config, live, shared, injector, ServeHooks::default())
    }

    /// [`Server::start_live`] with explicit [`ServeHooks`] — the chaos
    /// harness's entry point (virtual clock + seeded chaos plan).
    pub fn start_live_with_hooks(
        addr: &str,
        config: ServeConfig,
        live: Arc<LiveCorpus>,
        shared: Arc<SharedEsharp>,
        injector: Arc<dyn FaultInjector>,
        hooks: ServeHooks,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(Queue::new(config.queue_depth));
        let cache = ResultCache::new(config.cache_capacity);
        let workers = config.workers.max(1);
        let compactor = (config.compact_threshold > 0).then(|| {
            Compactor::start(
                Arc::clone(&live),
                CompactorConfig {
                    threshold_ops: config.compact_threshold,
                    interval: config.compact_interval,
                },
            )
        });
        let breakers = ShardBreakers::new(BreakerConfig {
            threshold: config.breaker_threshold,
            open_us: config.breaker_open.as_micros().min(u64::MAX as u128) as u64,
        });
        let limits = Limits {
            max_head: http::DEFAULT_MAX_HEAD,
            max_body: config.max_body_bytes,
        };
        let state = Arc::new(State {
            live,
            shared,
            cache,
            metrics: Arc::new(Metrics::default()),
            config,
            injector,
            reload_attempts: AtomicU32::new(0),
            clock: hooks.clock,
            chaos: hooks.chaos,
            breakers,
            limits,
            job_attempts: AtomicU32::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let wakeup = Arc::new(Wakeup::new()?);
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        // Per-worker in-flight token slots (`token + 1`; 0 = none): the
        // supervisor reads a dead worker's slot to abort the connection
        // whose job died with the thread.
        let inflight: Arc<Vec<AtomicU64>> =
            Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());

        let worker_slots = (0..workers)
            .map(|i| spawn_worker(i, &queue, &state, &completions, &wakeup, &inflight).map(Some))
            .collect::<io::Result<Vec<_>>>()?;
        let workers_shared = Arc::new(Mutex::new(worker_slots));

        // The supervisor resurrects workers that die *outside* the
        // request guard (a panic past `catch_unwind`, e.g. at the
        // `serve:conn` seam): the pool keeps its full width no matter
        // what a request does to a thread — and the connection whose job
        // died gets aborted (closed without a response) instead of
        // waiting forever on a completion that will never come.
        let supervisor_stop = Arc::new(AtomicBool::new(false));
        let supervisor_handle = {
            let workers_shared = Arc::clone(&workers_shared);
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let completions = Arc::clone(&completions);
            let wakeup = Arc::clone(&wakeup);
            let inflight = Arc::clone(&inflight);
            let supervisor_stop = Arc::clone(&supervisor_stop);
            std::thread::Builder::new()
                .name("esharp-serve-supervisor".to_string())
                .spawn(move || {
                    while !supervisor_stop.load(SeqCst) {
                        std::thread::sleep(Duration::from_millis(20));
                        let mut slots = workers_shared.lock().unwrap_or_else(|e| e.into_inner());
                        for (i, slot) in slots.iter_mut().enumerate() {
                            let dead = slot.as_ref().is_some_and(|h| h.is_finished());
                            if !dead || supervisor_stop.load(SeqCst) {
                                continue;
                            }
                            if let Some(handle) = slot.take() {
                                let _ = handle.join();
                            }
                            let orphan = inflight[i].swap(0, SeqCst);
                            if orphan != 0 {
                                completions
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .push(Completion {
                                        token: orphan - 1,
                                        response: None,
                                    });
                                wakeup.notify();
                            }
                            if let Ok(fresh) =
                                spawn_worker(i, &queue, &state, &completions, &wakeup, &inflight)
                            {
                                state.metrics.workers_resurrected.fetch_add(1, SeqCst);
                                *slot = Some(fresh);
                            }
                        }
                    }
                })?
        };

        let loop_handle = {
            let ctx = crate::event_loop::LoopContext {
                listener,
                state: Arc::clone(&state),
                queue: Arc::clone(&queue),
                completions,
                wakeup: Arc::clone(&wakeup),
                stop: Arc::clone(&stop),
            };
            std::thread::Builder::new()
                .name("esharp-serve-loop".to_string())
                .spawn(move || crate::event_loop::run(ctx))?
        };

        Ok(Server {
            addr: local,
            state,
            queue,
            stop,
            wakeup,
            loop_handle: Some(loop_handle),
            workers: workers_shared,
            supervisor_stop,
            supervisor_handle: Some(supervisor_handle),
            compactor,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics (shared with the `/metrics` endpoint).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.state.metrics)
    }

    /// A snapshot of the per-shard circuit breakers (also on `/metrics`
    /// and `/healthz`).
    pub fn breaker_stats(&self) -> BreakerStats {
        BreakerStats::of(&self.state.breakers)
    }

    /// Stop accepting, drain admitted requests, join every thread.
    pub fn shutdown(mut self) {
        if let Some(mut compactor) = self.compactor.take() {
            compactor.stop();
        }
        // Stop the supervisor first: workers exiting their loop at
        // queue-close must read as clean shutdown, not as deaths to
        // resurrect.
        self.supervisor_stop.store(true, SeqCst);
        if let Some(handle) = self.supervisor_handle.take() {
            let _ = handle.join();
        }
        self.stop.store(true, SeqCst);
        self.wakeup.notify();
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
        self.queue.close();
        let mut slots = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for slot in slots.iter_mut() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Spawn one worker thread. The body has two layers of containment: the
/// chaos seam `serve:conn` sits *outside* the request guard (a panic
/// there kills the thread — the supervisor's job), while the handler
/// runs under `catch_unwind` so a panic inside it answers `500`, bumps
/// `worker_panics`, and the worker takes the next job (ROBUSTNESS.md
/// §10).
fn spawn_worker(
    index: usize,
    queue: &Arc<Queue>,
    state: &Arc<State>,
    completions: &Arc<Mutex<Vec<Completion>>>,
    wakeup: &Arc<Wakeup>,
    inflight: &Arc<Vec<AtomicU64>>,
) -> io::Result<JoinHandle<()>> {
    let queue = Arc::clone(queue);
    let state = Arc::clone(state);
    let completions = Arc::clone(completions);
    let wakeup = Arc::clone(wakeup);
    let inflight = Arc::clone(inflight);
    std::thread::Builder::new()
        .name(format!("esharp-serve-{index}"))
        .spawn(move || {
            while let Some(job) = queue.pop() {
                inflight[index].store(job.token + 1, SeqCst);
                // Unguarded seam: a Panic here escapes the thread.
                if let Some(fault) = state.chaos.chaos_at("serve:conn", job.attempt) {
                    match fault {
                        ChaosFault::Delay { us } => {
                            state.clock.wait_us(us, &|| false);
                        }
                        // A conn-level stall is bounded by the loop's
                        // keep-alive story, not a budget; model it as a
                        // fixed coarse delay.
                        ChaosFault::Stall => {
                            state.clock.wait_us(10_000, &|| false);
                        }
                        ChaosFault::Panic => panic!("chaos: serve:conn panic"),
                    }
                }
                let started = Instant::now();
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| handle_job(&state, &job.request, job.attempt)));
                let response = match outcome {
                    Ok(response) => response,
                    Err(_) => {
                        state.metrics.worker_panics.fetch_add(1, SeqCst);
                        Response {
                            status: 500,
                            headers: Vec::new(),
                            body: b"{\"error\":\"internal panic\",\"contained\":true}".to_vec(),
                            close: true,
                        }
                    }
                };
                state.metrics.total.record(started.elapsed());
                inflight[index].store(0, SeqCst);
                completions
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Completion {
                        token: job.token,
                        response: Some(response),
                    });
                wakeup.notify();
            }
        })
}

/// Execute one request: the guarded `serve:worker` chaos seam, then the
/// route table. Runs under the worker's `catch_unwind`.
fn handle_job(state: &State, request: &Request, attempt: u32) -> Response {
    if let Some(fault) = state.chaos.chaos_at("serve:worker", attempt) {
        match fault {
            ChaosFault::Delay { us } => {
                state.clock.wait_us(us, &|| false);
            }
            ChaosFault::Stall => {
                // Bounded by the request deadline, then the handler
                // proceeds (late, likely partial — never hung).
                let us = state.config.deadline.as_micros().min(u64::MAX as u128) as u64;
                state.clock.wait_us(us, &|| false);
            }
            ChaosFault::Panic => panic!("chaos: serve:worker panic"),
        }
    }
    route(state, request)
}

fn route(state: &State, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/search") => handle_search(state, request),
        ("POST", "/search/batch") => handle_search_batch(state, request),
        ("GET", "/healthz") => handle_healthz(state),
        ("GET", "/metrics") => handle_metrics(state),
        ("POST", "/reload") => handle_reload(state),
        ("POST", "/ingest") => handle_ingest(state, request),
        ("POST", "/compact") => handle_compact(state),
        (
            _,
            "/search" | "/search/batch" | "/healthz" | "/metrics" | "/reload" | "/ingest"
            | "/compact",
        ) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            Response::json(405, &b"{\"error\":\"method not allowed\"}"[..])
        }
        _ => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            Response::json(404, &b"{\"error\":\"not found\"}"[..])
        }
    }
}

/// The per-request deadline: the `X-Esharp-Deadline-Ms` header when
/// present (clamped to `[1 ms, deadline_max]`), the configured default
/// otherwise. `Err` on an unparsable header.
fn request_deadline(state: &State, request: &Request) -> Result<Duration, ()> {
    match request.header("x-esharp-deadline-ms") {
        None => Ok(state.config.deadline),
        Some(raw) => {
            let ms: u64 = raw.trim().parse().map_err(|_| ())?;
            if ms == 0 {
                return Err(());
            }
            Ok(Duration::from_millis(ms).min(state.config.deadline_max))
        }
    }
}

fn handle_search(state: &State, request: &Request) -> Response {
    let normalized = match request.param("q").map(|q| q.trim().to_lowercase()) {
        Some(q) if !q.is_empty() => q,
        _ => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            return Response::json(400, &b"{\"error\":\"missing query parameter q\"}"[..]);
        }
    };
    let Ok(deadline) = request_deadline(state, request) else {
        state.metrics.client_errors.fetch_add(1, SeqCst);
        return Response::json(
            400,
            &b"{\"error\":\"invalid x-esharp-deadline-ms header\"}"[..],
        );
    };
    state.metrics.search_requests.fetch_add(1, SeqCst);
    // The snapshots pin (collection, domains epoch) and (corpus, corpus
    // epoch) as consistent pairs for the whole request; a reload,
    // ingest, or compaction landing now affects the *next* request. The
    // corpus read guard is held across the search — reads are concurrent
    // with each other, and an ingest waits microseconds, a compaction
    // publish waits one search. The breakers' health epoch is the 4th
    // key component: a trip or recovery landing now changes the key, so
    // a cached body can never cross a breaker state change.
    let (esharp, epoch) = state.shared.snapshot();
    let guard = state.live.read();
    let key: CacheKey = (normalized, epoch, guard.epoch(), state.breakers.epoch());
    if let Some(body) = state.cache.get(&key) {
        state.metrics.cache_hits.fetch_add(1, SeqCst);
        return Response::json(200, (*body).clone()).with_header("x-esharp-cache", "hit");
    }
    state.metrics.cache_misses.fetch_add(1, SeqCst);
    let limit_us = deadline.as_micros().min(u64::MAX as u128) as u64;
    let budget = Budget::with_clock(Arc::clone(&state.clock), limit_us);
    let mut ctx = BoundedSearch::new(&budget)
        .with_chaos(state.chaos.as_ref())
        .with_breakers(&state.breakers);
    if state.config.hedge {
        let delay_us = state.config.hedge_delay.as_micros().min(u64::MAX as u128) as u64;
        ctx = ctx.hedged(delay_us);
    }
    let outcome = esharp.search_bounded(guard.corpus(), &key.0, &ctx);
    record_search_phases(state, &outcome);
    state.metrics.hedges.fetch_add(outcome.hedges as u64, SeqCst);
    state
        .metrics
        .hedge_wins
        .fetch_add(outcome.hedge_wins as u64, SeqCst);
    state
        .metrics
        .shard_panics
        .fetch_add(outcome.shard_panics as u64, SeqCst);
    let body = Arc::new(render_search_body(
        guard.corpus(),
        &key.0,
        epoch,
        key.2,
        &outcome,
    ));
    // Only complete answers are cacheable: a partial body reflects this
    // request's luck with the deadline, not the corpus, and must not be
    // replayed to the next caller.
    if outcome.partial.is_none() {
        state.cache.insert(key, Arc::clone(&body));
    } else {
        state.metrics.partial_responses.fetch_add(1, SeqCst);
    }
    Response::json(200, (*body).clone()).with_header("x-esharp-cache", "miss")
}

fn record_search_phases(state: &State, outcome: &SearchOutcome) {
    state.metrics.expansion.record(outcome.expansion_time);
    state.metrics.detection.record(outcome.detection_time);
    state.metrics.match_phase.record(outcome.match_time);
    state.metrics.rank_phase.record(outcome.rank_time);
}

/// `POST /search/batch`: the body is newline-separated queries; the
/// response is `{"batch":N,"epoch":E,"corpus_epoch":C,"results":[…]}`
/// where each element of `results` is byte-identical to the
/// `GET /search` body for that query against the same snapshot.
///
/// Cached queries are answered from the result cache; the uncached rest
/// go through the batch planner
/// ([`Esharp::search_batch`](esharp_core::Esharp::search_batch)), which
/// performs each distinct posting-list traversal once for the whole
/// batch. Batch execution is *unbounded* (no deadline, hedging, or
/// breaker routing): a batch is a throughput endpoint, its answers are
/// complete by construction, and complete answers are exactly what the
/// cache may hold — so batch-computed bodies are cached under the same
/// epoch-keyed contract as singles.
fn handle_search_batch(state: &State, request: &Request) -> Response {
    state.metrics.batch_requests.fetch_add(1, SeqCst);
    let Ok(text) = std::str::from_utf8(&request.body) else {
        state.metrics.client_errors.fetch_add(1, SeqCst);
        return Response::json(400, &b"{\"error\":\"body is not UTF-8\"}"[..]);
    };
    let queries: Vec<String> = text
        .lines()
        .map(|line| line.trim().to_lowercase())
        .filter(|line| !line.is_empty())
        .collect();
    if queries.is_empty() {
        state.metrics.client_errors.fetch_add(1, SeqCst);
        return Response::json(400, &b"{\"error\":\"empty batch\"}"[..]);
    }
    if queries.len() > state.config.batch_max_queries {
        state.metrics.client_errors.fetch_add(1, SeqCst);
        let body = format!(
            "{{\"error\":\"batch too large\",\"queries\":{},\"max\":{}}}",
            queries.len(),
            state.config.batch_max_queries
        );
        return Response::json(400, body.into_bytes());
    }
    state
        .metrics
        .batch_queries
        .fetch_add(queries.len() as u64, SeqCst);
    let (esharp, epoch) = state.shared.snapshot();
    let guard = state.live.read();
    let corpus_epoch = guard.epoch();
    let health_epoch = state.breakers.epoch();
    let mut bodies: Vec<Option<Arc<Vec<u8>>>> = vec![None; queries.len()];
    let mut cold: Vec<usize> = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        let key: CacheKey = (query.clone(), epoch, corpus_epoch, health_epoch);
        if let Some(body) = state.cache.get(&key) {
            state.metrics.cache_hits.fetch_add(1, SeqCst);
            bodies[i] = Some(body);
        } else {
            state.metrics.cache_misses.fetch_add(1, SeqCst);
            cold.push(i);
        }
    }
    if !cold.is_empty() {
        let cold_queries: Vec<&str> = cold.iter().map(|&i| queries[i].as_str()).collect();
        let outcomes = esharp.search_batch(guard.corpus(), &cold_queries);
        for (&i, outcome) in cold.iter().zip(&outcomes) {
            record_search_phases(state, outcome);
            let body = Arc::new(render_search_body(
                guard.corpus(),
                &queries[i],
                epoch,
                corpus_epoch,
                outcome,
            ));
            state.cache.insert(
                (queries[i].clone(), epoch, corpus_epoch, health_epoch),
                Arc::clone(&body),
            );
            bodies[i] = Some(body);
        }
    }
    let payload: usize = bodies
        .iter()
        .map(|b| b.as_ref().map_or(0, |b| b.len() + 1))
        .sum();
    let mut out = Vec::with_capacity(64 + payload);
    out.extend_from_slice(b"{\"batch\":");
    out.extend_from_slice(queries.len().to_string().as_bytes());
    out.extend_from_slice(b",\"epoch\":");
    out.extend_from_slice(epoch.to_string().as_bytes());
    out.extend_from_slice(b",\"corpus_epoch\":");
    out.extend_from_slice(corpus_epoch.to_string().as_bytes());
    out.extend_from_slice(b",\"results\":[");
    for (i, body) in bodies.iter().enumerate() {
        if i > 0 {
            out.push(b',');
        }
        if let Some(body) = body {
            out.extend_from_slice(body);
        }
    }
    out.extend_from_slice(b"]}");
    Response::json(200, out)
}

/// `POST /ingest`: the body is a batch of op lines (see
/// [`IngestOp::parse_batch`]). All-or-nothing: parse or validation
/// failures are `400` with nothing applied; a WAL failure is `500`,
/// also with nothing applied.
fn handle_ingest(state: &State, request: &Request) -> Response {
    state.metrics.ingest_requests.fetch_add(1, SeqCst);
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            return Response::json(400, &b"{\"ok\":false,\"error\":\"body is not UTF-8\"}"[..]);
        }
    };
    let ops = match IngestOp::parse_batch(text) {
        Ok(ops) if !ops.is_empty() => ops,
        Ok(_) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            return Response::json(400, &b"{\"ok\":false,\"error\":\"empty batch\"}"[..]);
        }
        Err(error) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let mut body = String::with_capacity(96);
            body.push_str("{\"ok\":false,\"error\":");
            json::push_str(&mut body, &error);
            body.push('}');
            return Response::json(400, body.into_bytes());
        }
    };
    match state.live.apply_batch(&ops) {
        Ok(applied) => {
            state
                .metrics
                .ingest_ops
                .fetch_add(applied.len() as u64, SeqCst);
            let body = format!(
                "{{\"ok\":true,\"applied\":{},\"corpus_epoch\":{},\"pending_ops\":{}}}",
                applied.len(),
                state.live.epoch(),
                state.live.pending_ops(),
            );
            Response::json(200, body.into_bytes())
        }
        Err(error) => {
            let status = if error.kind() == io::ErrorKind::InvalidInput {
                state.metrics.client_errors.fetch_add(1, SeqCst);
                400
            } else {
                500
            };
            let mut body = String::with_capacity(96);
            body.push_str("{\"ok\":false,\"error\":");
            json::push_str(&mut body, &error.to_string());
            body.push('}');
            Response::json(status, body.into_bytes())
        }
    }
}

/// `POST /compact`: fold the delta segment synchronously (the manual
/// counterpart of the background compactor). Failure keeps the previous
/// base serving and answers `500`.
fn handle_compact(state: &State) -> Response {
    state.metrics.compact_requests.fetch_add(1, SeqCst);
    match state.live.compact() {
        Ok(Some(report)) => {
            state.metrics.compact_ok.fetch_add(1, SeqCst);
            state.metrics.compaction_pause.record(report.pause);
            let body = format!(
                "{{\"ok\":true,\"compacted\":true,\"corpus_epoch\":{},\"before_tweets\":{},\"tombstones_reclaimed\":{},\"after_tweets\":{},\"tail_ops_replayed\":{},\"bytes_written\":{},\"pause_us\":{},\"total_us\":{}}}",
                report.epoch,
                report.before_tweets,
                report.before_tombstones,
                report.after_tweets,
                report.tail_ops_replayed,
                report.bytes_written,
                report.pause.as_micros(),
                report.total.as_micros(),
            );
            Response::json(200, body.into_bytes())
        }
        Ok(None) => {
            let body = format!(
                "{{\"ok\":true,\"compacted\":false,\"corpus_epoch\":{}}}",
                state.live.epoch()
            );
            Response::json(200, body.into_bytes())
        }
        Err(error) => {
            state.metrics.compact_failed.fetch_add(1, SeqCst);
            let mut body = String::with_capacity(96);
            body.push_str("{\"ok\":false,\"error\":");
            json::push_str(&mut body, &error.to_string());
            body.push('}');
            Response::json(500, body.into_bytes())
        }
    }
}

fn handle_healthz(state: &State) -> Response {
    state.metrics.healthz_requests.fetch_add(1, SeqCst);
    let (esharp, epoch) = state.shared.snapshot();
    let corpus_epoch = state.live.epoch();
    let mut body = String::with_capacity(128);
    match esharp.degradation() {
        None => {
            body.push_str("{\"status\":\"ok\",\"epoch\":");
            body.push_str(&epoch.to_string());
        }
        Some(degradation) => {
            body.push_str("{\"status\":\"degraded\",\"epoch\":");
            body.push_str(&epoch.to_string());
            body.push_str(",\"degradation\":");
            render_degradation(&mut body, degradation);
        }
    }
    body.push_str(",\"corpus_epoch\":");
    body.push_str(&corpus_epoch.to_string());
    body.push_str(",\"breakers\":");
    BreakerStats::of(&state.breakers).render(&mut body);
    body.push('}');
    Response::json(200, body.into_bytes())
}

fn handle_metrics(state: &State) -> Response {
    state.metrics.metrics_requests.fetch_add(1, SeqCst);
    // Snapshot the shard layout under the read guard, then render
    // without it — rendering shouldn't extend the lock hold.
    let shards = {
        let guard = state.live.read();
        crate::metrics::ShardStats::of(guard.corpus())
    };
    let body = state.metrics.render(
        state.shared.epoch(),
        state.live.epoch(),
        state.cache.len(),
        state.cache.capacity(),
        &shards,
        &BreakerStats::of(&state.breakers),
    );
    Response::json(200, body.into_bytes())
}

fn handle_reload(state: &State) -> Response {
    state.metrics.reload_requests.fetch_add(1, SeqCst);
    let Some(path) = &state.config.domains_path else {
        state.metrics.client_errors.fetch_add(1, SeqCst);
        return Response::json(
            400,
            &b"{\"ok\":false,\"error\":\"no domains path configured\"}"[..],
        );
    };
    let attempt = state.reload_attempts.fetch_add(1, SeqCst);
    match state
        .shared
        .reload_with(path, state.injector.as_ref(), attempt)
    {
        Ok(epoch) => {
            state.metrics.reload_ok.fetch_add(1, SeqCst);
            let body = format!("{{\"ok\":true,\"epoch\":{epoch}}}");
            Response::json(200, body.into_bytes())
        }
        Err(error) => {
            state.metrics.reload_failed.fetch_add(1, SeqCst);
            let (esharp, epoch) = state.shared.snapshot();
            let mut body = String::with_capacity(256);
            body.push_str("{\"ok\":false,\"epoch\":");
            body.push_str(&epoch.to_string());
            body.push_str(",\"error\":");
            json::push_str(&mut body, &error.to_string());
            body.push_str(",\"degradation\":");
            match esharp.degradation() {
                Some(d) => render_degradation(&mut body, d),
                None => body.push_str("null"),
            }
            body.push('}');
            Response::json(500, body.into_bytes())
        }
    }
}

/// Render the deterministic `/search` response body: a pure function of
/// `(corpus, query, epochs, outcome-sans-timings)`, which is the
/// property the result cache's byte-identical-hit guarantee rests on.
/// Timings are deliberately excluded (they differ run to run); they feed
/// the `/metrics` histograms instead. Cache hit/miss travels in the
/// `x-esharp-cache` header, also off-body for the same reason.
pub fn render_search_body(
    corpus: &Corpus,
    query: &str,
    epoch: u64,
    corpus_epoch: u64,
    outcome: &SearchOutcome,
) -> Vec<u8> {
    let mut out = String::with_capacity(256 + outcome.experts.len() * 96);
    out.push_str("{\"query\":");
    json::push_str(&mut out, query);
    out.push_str(",\"epoch\":");
    out.push_str(&epoch.to_string());
    out.push_str(",\"corpus_epoch\":");
    out.push_str(&corpus_epoch.to_string());
    out.push_str(",\"expansion\":");
    json::push_str_array(&mut out, &outcome.expansion);
    out.push_str(",\"matched_tweets\":");
    out.push_str(&outcome.matched_tweets.to_string());
    out.push_str(",\"experts\":[");
    for (i, expert) in outcome.experts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"user\":");
        out.push_str(&expert.user.to_string());
        out.push_str(",\"handle\":");
        json::push_str(&mut out, &corpus.user(expert.user).handle);
        out.push_str(",\"score\":");
        json::push_f64(&mut out, expert.score);
        out.push_str(",\"features\":{\"ts\":");
        json::push_f64(&mut out, expert.features.ts);
        out.push_str(",\"mi\":");
        json::push_f64(&mut out, expert.features.mi);
        out.push_str(",\"ri\":");
        json::push_f64(&mut out, expert.features.ri);
        out.push_str("}}");
    }
    out.push_str("],\"degradation\":");
    match (&outcome.degradation, &outcome.partial) {
        (None, None) => out.push_str("null"),
        (Some(d), None) => render_degradation(&mut out, d),
        // A partial answer is a degradation too: the object carries
        // `partial: true` plus the exact absent-shard sets, merged with
        // the domain-degradation fields when both apply.
        (domains, Some(partial)) => {
            out.push('{');
            if let Some(d) = domains {
                let (kind, error) = degradation_fields(d);
                out.push_str("\"kind\":\"");
                out.push_str(kind);
                out.push_str("\",\"error\":");
                json::push_str(&mut out, error);
                out.push(',');
            }
            out.push_str("\"partial\":true,\"shards_missing\":[");
            push_usize_array(&mut out, &partial.shards_missing);
            out.push_str("],\"shards_skipped\":[");
            push_usize_array(&mut out, &partial.shards_skipped);
            out.push_str("]}");
        }
    }
    out.push('}');
    out.into_bytes()
}

fn push_usize_array(out: &mut String, values: &[usize]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
}

fn degradation_fields(degradation: &Degradation) -> (&'static str, &String) {
    match degradation {
        Degradation::StaleDomains { error } => ("stale_domains", error),
        Degradation::NoDomains { error } => ("no_domains", error),
    }
}

fn render_degradation(out: &mut String, degradation: &Degradation) {
    let (kind, error) = degradation_fields(degradation);
    out.push_str("{\"kind\":\"");
    out.push_str(kind);
    out.push_str("\",\"error\":");
    json::push_str(out, error);
    out.push('}');
}

/// Run a search against a pinned snapshot and render its body — the cold
/// path as one call, shared by the server and by tests asserting the
/// cache's byte-identical-hit property.
pub fn search_and_render(
    corpus: &Corpus,
    esharp: &Esharp,
    normalized_query: &str,
    epoch: u64,
    corpus_epoch: u64,
) -> Vec<u8> {
    let outcome = esharp.search(corpus, normalized_query);
    render_search_body(corpus, normalized_query, epoch, corpus_epoch, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_core::{DomainCollection, EsharpConfig};

    fn tiny_corpus() -> Corpus {
        use esharp_microblog::{Tweet, User};
        let user = |id, handle: &str| User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_uppercase(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        };
        let users = vec![user(0, "alice"), user(1, "bob\"q\"")];
        let tweets = vec![
            Tweet::parse(0, 0, "49ers game tonight", |_| None),
            Tweet::parse(1, 1, "49ers niners draft talk", |_| None),
            Tweet::parse(2, 1, "niners forever", |_| None),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn search_body_is_deterministic_and_shaped() {
        let corpus = tiny_corpus();
        let esharp = Esharp::new(
            DomainCollection::from_groups(vec![vec!["49ers".into(), "niners".into()]]),
            EsharpConfig::tiny(),
        );
        let a = search_and_render(&corpus, &esharp, "49ers", 3, 5);
        let b = search_and_render(&corpus, &esharp, "49ers", 3, 5);
        assert_eq!(a, b, "same snapshot, same bytes");
        let c = search_and_render(&corpus, &esharp, "49ers", 3, 6);
        assert_ne!(a, c, "corpus epoch is part of the body");
        let text = String::from_utf8(a).unwrap();
        assert!(
            text.starts_with("{\"query\":\"49ers\",\"epoch\":3,\"corpus_epoch\":5,"),
            "{text}"
        );
        assert!(text.contains("\"expansion\":[\"49ers\",\"niners\"]"), "{text}");
        assert!(text.contains("\"degradation\":null"), "{text}");
        // Handles with quotes stay valid JSON.
        assert!(!text.contains("bob\"q\""), "unescaped quote in {text}");
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn degradation_is_rendered_in_bodies() {
        let corpus = tiny_corpus();
        let mut esharp = Esharp::new(
            DomainCollection::from_groups(vec![vec!["49ers".into()]]),
            EsharpConfig::tiny(),
        );
        assert!(esharp.reload_domains("/nonexistent/domains.bin").is_err());
        let body = search_and_render(&corpus, &esharp, "49ers", 1, 0);
        let text = String::from_utf8(body).unwrap();
        assert!(
            text.contains("\"degradation\":{\"kind\":\"stale_domains\",\"error\":"),
            "{text}"
        );
    }
}
