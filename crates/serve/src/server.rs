//! The serving core: accept loop → bounded admission queue → worker
//! pool → endpoint handlers.
//!
//! Threading follows the `esharp-par` worker-loop idiom (mutex + condvar
//! queue, named threads, shutdown flag checked under the lock), adapted
//! from batch fan-out to streaming: the queue's elements are accepted
//! connections, its bound is the *admission control* — when the queue is
//! full the accept loop answers `503` inline and moves on, so overload
//! degrades into explicit shed responses instead of unbounded memory
//! growth and latency collapse for everyone (the paper's <1 s budget is
//! only defensible for requests the server actually admits).

use crate::cache::{CacheKey, ResultCache};
use crate::http::{self, Request};
use crate::json;
use crate::metrics::Metrics;
use esharp_core::{Degradation, Esharp, SearchOutcome, SharedEsharp};
use esharp_fault::{FaultInjector, NoFaults};
use esharp_ingest::{Compactor, CompactorConfig, IngestOp, LiveCorpus};
use esharp_microblog::Corpus;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving knobs (`esharp serve` flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling admitted requests.
    pub workers: usize,
    /// Total result-cache bodies (0 disables caching).
    pub cache_capacity: usize,
    /// Admission-queue bound; connections beyond it are shed with `503`.
    pub queue_depth: usize,
    /// The domains file `POST /reload` re-reads (the weekly refresh
    /// hand-off); `None` makes reload a `400`.
    pub domains_path: Option<PathBuf>,
    /// Background-compaction trigger: compact once this many ingested
    /// ops are pending. `0` disables the background thread (`POST
    /// /compact` still works).
    pub compact_threshold: usize,
    /// Background-compaction poll interval.
    pub compact_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            // Clamped to the host so small containers don't oversubscribe
            // (explicit settings are honored as given).
            workers: 4.min(esharp_par::detected_workers()),
            cache_capacity: 1024,
            queue_depth: 64,
            domains_path: None,
            compact_threshold: 0,
            compact_interval: Duration::from_millis(250),
        }
    }
}

/// The admission queue: a bounded, condvar-signalled channel of accepted
/// connections.
#[derive(Debug)]
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    depth: usize,
    shutdown: AtomicBool,
}

impl Queue {
    fn new(depth: usize) -> Queue {
        Queue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Admit the connection, or hand it back when the queue is full (the
    /// caller sheds it).
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.depth {
            return Err(stream);
        }
        queue.push_back(stream);
        drop(queue);
        self.ready.notify_one();
        Ok(())
    }

    /// Next admitted connection; `None` once shut down and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut queue = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if self.shutdown.load(SeqCst) {
                return None;
            }
            queue = self
                .ready
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.shutdown.store(true, SeqCst);
        self.ready.notify_all();
    }
}

/// Shared handler state (one per server, `Arc`ed to every thread).
struct State {
    live: Arc<LiveCorpus>,
    shared: Arc<SharedEsharp>,
    cache: ResultCache,
    metrics: Arc<Metrics>,
    config: ServeConfig,
    injector: Arc<dyn FaultInjector>,
    /// Monotonic reload-attempt counter, the `attempt` axis of the
    /// `reload:domains` fault site.
    reload_attempts: AtomicU32,
}

/// A running e# server. Dropping without [`Server::shutdown`] aborts the
/// threads detached; call `shutdown` for a clean join.
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    queue: Arc<Queue>,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    compactor: Option<Compactor>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept loop plus `config.workers` worker threads.
    pub fn start(
        addr: &str,
        config: ServeConfig,
        corpus: Arc<Corpus>,
        shared: Arc<SharedEsharp>,
    ) -> io::Result<Server> {
        Server::start_with_injector(addr, config, corpus, shared, Arc::new(NoFaults))
    }

    /// [`Server::start`] with a fault injector on the reload path
    /// (consulted at site `reload:domains`; production servers pass
    /// [`NoFaults`] via `start`).
    pub fn start_with_injector(
        addr: &str,
        config: ServeConfig,
        corpus: Arc<Corpus>,
        shared: Arc<SharedEsharp>,
        injector: Arc<dyn FaultInjector>,
    ) -> io::Result<Server> {
        // A plain snapshot corpus serves through an in-memory LiveCorpus
        // (ingest works, nothing is persisted). Unwrap the Arc when this
        // caller holds the only reference — the common case — and clone
        // otherwise.
        let corpus = Arc::try_unwrap(corpus).unwrap_or_else(|shared_corpus| (*shared_corpus).clone());
        Server::start_live(
            addr,
            config,
            Arc::new(LiveCorpus::new(corpus)),
            shared,
            injector,
        )
    }

    /// Start serving a [`LiveCorpus`] — the full streaming setup: `POST
    /// /ingest` absorbs ops (durably, when the live corpus has
    /// persistence), and a background [`Compactor`] folds the delta when
    /// `config.compact_threshold > 0`.
    pub fn start_live(
        addr: &str,
        config: ServeConfig,
        live: Arc<LiveCorpus>,
        shared: Arc<SharedEsharp>,
        injector: Arc<dyn FaultInjector>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let queue = Arc::new(Queue::new(config.queue_depth));
        let cache = ResultCache::new(config.cache_capacity);
        let workers = config.workers.max(1);
        let compactor = (config.compact_threshold > 0).then(|| {
            Compactor::start(
                Arc::clone(&live),
                CompactorConfig {
                    threshold_ops: config.compact_threshold,
                    interval: config.compact_interval,
                },
            )
        });
        let state = Arc::new(State {
            live,
            shared,
            cache,
            metrics: Arc::new(Metrics::default()),
            config,
            injector,
            reload_attempts: AtomicU32::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));

        let worker_handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("esharp-serve-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            handle_connection(&state, stream);
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let accept_handle = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("esharp-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &queue, &state, &stop))?
        };

        Ok(Server {
            addr: local,
            state,
            queue,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
            compactor,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics (shared with the `/metrics` endpoint).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Stop accepting, drain admitted connections, join every thread.
    pub fn shutdown(mut self) {
        if let Some(mut compactor) = self.compactor.take() {
            compactor.stop();
        }
        self.stop.store(true, SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        self.queue.close();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, queue: &Queue, state: &State, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Transient accept errors (EMFILE, aborts) — keep serving
                // unless we're stopping anyway.
                if stop.load(SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(SeqCst) {
            return;
        }
        if let Err(stream) = queue.try_push(stream) {
            shed(state, stream);
        }
    }
}

/// Answer `503` inline from the accept thread. All socket operations are
/// bounded by short timeouts so a slow client cannot stall admission.
fn shed(state: &State, mut stream: TcpStream) {
    use std::io::Read;
    state.metrics.shed_total.fetch_add(1, SeqCst);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = http::write_response(
        &mut stream,
        503,
        &[("retry-after", "1")],
        b"{\"error\":\"overloaded\",\"shed\":true}",
    );
    // The request was never read; closing now, with unread bytes in the
    // receive buffer, would emit an RST that races ahead of (and can
    // destroy) the 503 still in flight. Send a clean FIN instead and
    // drain until the client finishes — EOF, or the bounded timeout.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn handle_connection(state: &State, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return, // peer connected and left
        Err(_) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let _ = http::write_response(
                &mut stream,
                400,
                &[],
                b"{\"error\":\"malformed request\"}",
            );
            return;
        }
    };
    route(state, &mut stream, &request);
    state.metrics.total.record(started.elapsed());
}

fn route(state: &State, stream: &mut TcpStream, request: &Request) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/search") => handle_search(state, stream, request),
        ("GET", "/healthz") => handle_healthz(state, stream),
        ("GET", "/metrics") => handle_metrics(state, stream),
        ("POST", "/reload") => handle_reload(state, stream),
        ("POST", "/ingest") => handle_ingest(state, stream, request),
        ("POST", "/compact") => handle_compact(state, stream),
        (_, "/search" | "/healthz" | "/metrics" | "/reload" | "/ingest" | "/compact") => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let _ = http::write_response(stream, 405, &[], b"{\"error\":\"method not allowed\"}");
        }
        _ => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let _ = http::write_response(stream, 404, &[], b"{\"error\":\"not found\"}");
        }
    }
}

fn handle_search(state: &State, stream: &mut TcpStream, request: &Request) {
    let normalized = match request.param("q").map(|q| q.trim().to_lowercase()) {
        Some(q) if !q.is_empty() => q,
        _ => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let _ = http::write_response(
                stream,
                400,
                &[],
                b"{\"error\":\"missing query parameter q\"}",
            );
            return;
        }
    };
    state.metrics.search_requests.fetch_add(1, SeqCst);
    // The snapshots pin (collection, domains epoch) and (corpus, corpus
    // epoch) as consistent pairs for the whole request; a reload,
    // ingest, or compaction landing now affects the *next* request. The
    // corpus read guard is held across the search — reads are concurrent
    // with each other, and an ingest waits microseconds, a compaction
    // publish waits one search.
    let (esharp, epoch) = state.shared.snapshot();
    let guard = state.live.read();
    let key: CacheKey = (normalized, epoch, guard.epoch());
    if let Some(body) = state.cache.get(&key) {
        state.metrics.cache_hits.fetch_add(1, SeqCst);
        let _ = http::write_response(stream, 200, &[("x-esharp-cache", "hit")], &body);
        return;
    }
    state.metrics.cache_misses.fetch_add(1, SeqCst);
    let outcome = esharp.search(guard.corpus(), &key.0);
    state.metrics.expansion.record(outcome.expansion_time);
    state.metrics.detection.record(outcome.detection_time);
    state.metrics.match_phase.record(outcome.match_time);
    state.metrics.rank_phase.record(outcome.rank_time);
    let body = Arc::new(render_search_body(
        guard.corpus(),
        &key.0,
        epoch,
        key.2,
        &outcome,
    ));
    state.cache.insert(key, Arc::clone(&body));
    let _ = http::write_response(stream, 200, &[("x-esharp-cache", "miss")], &body);
}

/// `POST /ingest`: the body is a batch of op lines (see
/// [`IngestOp::parse_batch`]). All-or-nothing: parse or validation
/// failures are `400` with nothing applied; a WAL failure is `500`,
/// also with nothing applied.
fn handle_ingest(state: &State, stream: &mut TcpStream, request: &Request) {
    state.metrics.ingest_requests.fetch_add(1, SeqCst);
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let _ =
                http::write_response(stream, 400, &[], b"{\"ok\":false,\"error\":\"body is not UTF-8\"}");
            return;
        }
    };
    let ops = match IngestOp::parse_batch(text) {
        Ok(ops) if !ops.is_empty() => ops,
        Ok(_) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let _ =
                http::write_response(stream, 400, &[], b"{\"ok\":false,\"error\":\"empty batch\"}");
            return;
        }
        Err(error) => {
            state.metrics.client_errors.fetch_add(1, SeqCst);
            let mut body = String::with_capacity(96);
            body.push_str("{\"ok\":false,\"error\":");
            json::push_str(&mut body, &error);
            body.push('}');
            let _ = http::write_response(stream, 400, &[], body.as_bytes());
            return;
        }
    };
    match state.live.apply_batch(&ops) {
        Ok(applied) => {
            state.metrics.ingest_ops.fetch_add(applied.len() as u64, SeqCst);
            let body = format!(
                "{{\"ok\":true,\"applied\":{},\"corpus_epoch\":{},\"pending_ops\":{}}}",
                applied.len(),
                state.live.epoch(),
                state.live.pending_ops(),
            );
            let _ = http::write_response(stream, 200, &[], body.as_bytes());
        }
        Err(error) => {
            let status = if error.kind() == io::ErrorKind::InvalidInput {
                state.metrics.client_errors.fetch_add(1, SeqCst);
                400
            } else {
                500
            };
            let mut body = String::with_capacity(96);
            body.push_str("{\"ok\":false,\"error\":");
            json::push_str(&mut body, &error.to_string());
            body.push('}');
            let _ = http::write_response(stream, status, &[], body.as_bytes());
        }
    }
}

/// `POST /compact`: fold the delta segment synchronously (the manual
/// counterpart of the background compactor). Failure keeps the previous
/// base serving and answers `500`.
fn handle_compact(state: &State, stream: &mut TcpStream) {
    state.metrics.compact_requests.fetch_add(1, SeqCst);
    match state.live.compact() {
        Ok(Some(report)) => {
            state.metrics.compact_ok.fetch_add(1, SeqCst);
            state.metrics.compaction_pause.record(report.pause);
            let body = format!(
                "{{\"ok\":true,\"compacted\":true,\"corpus_epoch\":{},\"before_tweets\":{},\"tombstones_reclaimed\":{},\"after_tweets\":{},\"tail_ops_replayed\":{},\"bytes_written\":{},\"pause_us\":{},\"total_us\":{}}}",
                report.epoch,
                report.before_tweets,
                report.before_tombstones,
                report.after_tweets,
                report.tail_ops_replayed,
                report.bytes_written,
                report.pause.as_micros(),
                report.total.as_micros(),
            );
            let _ = http::write_response(stream, 200, &[], body.as_bytes());
        }
        Ok(None) => {
            let body = format!(
                "{{\"ok\":true,\"compacted\":false,\"corpus_epoch\":{}}}",
                state.live.epoch()
            );
            let _ = http::write_response(stream, 200, &[], body.as_bytes());
        }
        Err(error) => {
            state.metrics.compact_failed.fetch_add(1, SeqCst);
            let mut body = String::with_capacity(96);
            body.push_str("{\"ok\":false,\"error\":");
            json::push_str(&mut body, &error.to_string());
            body.push('}');
            let _ = http::write_response(stream, 500, &[], body.as_bytes());
        }
    }
}

fn handle_healthz(state: &State, stream: &mut TcpStream) {
    state.metrics.healthz_requests.fetch_add(1, SeqCst);
    let (esharp, epoch) = state.shared.snapshot();
    let corpus_epoch = state.live.epoch();
    let mut body = String::with_capacity(128);
    match esharp.degradation() {
        None => {
            body.push_str("{\"status\":\"ok\",\"epoch\":");
            body.push_str(&epoch.to_string());
        }
        Some(degradation) => {
            body.push_str("{\"status\":\"degraded\",\"epoch\":");
            body.push_str(&epoch.to_string());
            body.push_str(",\"degradation\":");
            render_degradation(&mut body, degradation);
        }
    }
    body.push_str(",\"corpus_epoch\":");
    body.push_str(&corpus_epoch.to_string());
    body.push('}');
    let _ = http::write_response(stream, 200, &[], body.as_bytes());
}

fn handle_metrics(state: &State, stream: &mut TcpStream) {
    state.metrics.metrics_requests.fetch_add(1, SeqCst);
    // Snapshot the shard layout under the read guard, then render
    // without it — rendering shouldn't extend the lock hold.
    let shards = {
        let guard = state.live.read();
        crate::metrics::ShardStats::of(guard.corpus())
    };
    let body = state.metrics.render(
        state.shared.epoch(),
        state.live.epoch(),
        state.cache.len(),
        state.cache.capacity(),
        &shards,
    );
    let _ = http::write_response(stream, 200, &[], body.as_bytes());
}

fn handle_reload(state: &State, stream: &mut TcpStream) {
    state.metrics.reload_requests.fetch_add(1, SeqCst);
    let Some(path) = &state.config.domains_path else {
        state.metrics.client_errors.fetch_add(1, SeqCst);
        let _ = http::write_response(
            stream,
            400,
            &[],
            b"{\"ok\":false,\"error\":\"no domains path configured\"}",
        );
        return;
    };
    let attempt = state.reload_attempts.fetch_add(1, SeqCst);
    match state
        .shared
        .reload_with(path, state.injector.as_ref(), attempt)
    {
        Ok(epoch) => {
            state.metrics.reload_ok.fetch_add(1, SeqCst);
            let body = format!("{{\"ok\":true,\"epoch\":{epoch}}}");
            let _ = http::write_response(stream, 200, &[], body.as_bytes());
        }
        Err(error) => {
            state.metrics.reload_failed.fetch_add(1, SeqCst);
            let (esharp, epoch) = state.shared.snapshot();
            let mut body = String::with_capacity(256);
            body.push_str("{\"ok\":false,\"epoch\":");
            body.push_str(&epoch.to_string());
            body.push_str(",\"error\":");
            json::push_str(&mut body, &error.to_string());
            body.push_str(",\"degradation\":");
            match esharp.degradation() {
                Some(d) => render_degradation(&mut body, d),
                None => body.push_str("null"),
            }
            body.push('}');
            let _ = http::write_response(stream, 500, &[], body.as_bytes());
        }
    }
}

/// Render the deterministic `/search` response body: a pure function of
/// `(corpus, query, epochs, outcome-sans-timings)`, which is the
/// property the result cache's byte-identical-hit guarantee rests on.
/// Timings are deliberately excluded (they differ run to run); they feed
/// the `/metrics` histograms instead. Cache hit/miss travels in the
/// `x-esharp-cache` header, also off-body for the same reason.
pub fn render_search_body(
    corpus: &Corpus,
    query: &str,
    epoch: u64,
    corpus_epoch: u64,
    outcome: &SearchOutcome,
) -> Vec<u8> {
    let mut out = String::with_capacity(256 + outcome.experts.len() * 96);
    out.push_str("{\"query\":");
    json::push_str(&mut out, query);
    out.push_str(",\"epoch\":");
    out.push_str(&epoch.to_string());
    out.push_str(",\"corpus_epoch\":");
    out.push_str(&corpus_epoch.to_string());
    out.push_str(",\"expansion\":");
    json::push_str_array(&mut out, &outcome.expansion);
    out.push_str(",\"matched_tweets\":");
    out.push_str(&outcome.matched_tweets.to_string());
    out.push_str(",\"experts\":[");
    for (i, expert) in outcome.experts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"user\":");
        out.push_str(&expert.user.to_string());
        out.push_str(",\"handle\":");
        json::push_str(&mut out, &corpus.user(expert.user).handle);
        out.push_str(",\"score\":");
        json::push_f64(&mut out, expert.score);
        out.push_str(",\"features\":{\"ts\":");
        json::push_f64(&mut out, expert.features.ts);
        out.push_str(",\"mi\":");
        json::push_f64(&mut out, expert.features.mi);
        out.push_str(",\"ri\":");
        json::push_f64(&mut out, expert.features.ri);
        out.push_str("}}");
    }
    out.push_str("],\"degradation\":");
    match &outcome.degradation {
        Some(d) => render_degradation(&mut out, d),
        None => out.push_str("null"),
    }
    out.push('}');
    out.into_bytes()
}

fn render_degradation(out: &mut String, degradation: &Degradation) {
    let (kind, error) = match degradation {
        Degradation::StaleDomains { error } => ("stale_domains", error),
        Degradation::NoDomains { error } => ("no_domains", error),
    };
    out.push_str("{\"kind\":\"");
    out.push_str(kind);
    out.push_str("\",\"error\":");
    json::push_str(out, error);
    out.push('}');
}

/// Run a search against a pinned snapshot and render its body — the cold
/// path as one call, shared by the server and by tests asserting the
/// cache's byte-identical-hit property.
pub fn search_and_render(
    corpus: &Corpus,
    esharp: &Esharp,
    normalized_query: &str,
    epoch: u64,
    corpus_epoch: u64,
) -> Vec<u8> {
    let outcome = esharp.search(corpus, normalized_query);
    render_search_body(corpus, normalized_query, epoch, corpus_epoch, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esharp_core::{DomainCollection, EsharpConfig};

    fn tiny_corpus() -> Corpus {
        use esharp_microblog::{Tweet, User};
        let user = |id, handle: &str| User {
            id,
            handle: handle.to_string(),
            display_name: handle.to_uppercase(),
            description: String::new(),
            followers: 10,
            verified: false,
            expert_domains: vec![],
            spam: false,
        };
        let users = vec![user(0, "alice"), user(1, "bob\"q\"")];
        let tweets = vec![
            Tweet::parse(0, 0, "49ers game tonight", |_| None),
            Tweet::parse(1, 1, "49ers niners draft talk", |_| None),
            Tweet::parse(2, 1, "niners forever", |_| None),
        ];
        Corpus::new(users, tweets)
    }

    #[test]
    fn search_body_is_deterministic_and_shaped() {
        let corpus = tiny_corpus();
        let esharp = Esharp::new(
            DomainCollection::from_groups(vec![vec!["49ers".into(), "niners".into()]]),
            EsharpConfig::tiny(),
        );
        let a = search_and_render(&corpus, &esharp, "49ers", 3, 5);
        let b = search_and_render(&corpus, &esharp, "49ers", 3, 5);
        assert_eq!(a, b, "same snapshot, same bytes");
        let c = search_and_render(&corpus, &esharp, "49ers", 3, 6);
        assert_ne!(a, c, "corpus epoch is part of the body");
        let text = String::from_utf8(a).unwrap();
        assert!(
            text.starts_with("{\"query\":\"49ers\",\"epoch\":3,\"corpus_epoch\":5,"),
            "{text}"
        );
        assert!(text.contains("\"expansion\":[\"49ers\",\"niners\"]"), "{text}");
        assert!(text.contains("\"degradation\":null"), "{text}");
        // Handles with quotes stay valid JSON.
        assert!(!text.contains("bob\"q\""), "unescaped quote in {text}");
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn degradation_is_rendered_in_bodies() {
        let corpus = tiny_corpus();
        let mut esharp = Esharp::new(
            DomainCollection::from_groups(vec![vec!["49ers".into()]]),
            EsharpConfig::tiny(),
        );
        assert!(esharp.reload_domains("/nonexistent/domains.bin").is_err());
        let body = search_and_render(&corpus, &esharp, "49ers", 1, 0);
        let text = String::from_utf8(body).unwrap();
        assert!(
            text.contains("\"degradation\":{\"kind\":\"stale_domains\",\"error\":"),
            "{text}"
        );
    }
}
