//! # esharp-serve
//!
//! The concurrent query-serving layer for e# — the piece that turns the
//! one-shot library calls of `esharp-core` into the interactive *service*
//! the paper budgets for (§5, Table 9: expansion < 100 ms, detection
//! < 1 s per query). Production expert-search systems serve rankings from
//! precomputed artifacts behind a caching service layer (Spasojevic et
//! al., "Mining Half a Billion Topical Experts"); this crate is that
//! layer for the e# reproduction, std-only so the build stays hermetic.
//!
//! ## Shape
//!
//! A multi-threaded HTTP/1.1 server with an event-driven front end: one
//! nonblocking readiness loop ([`poller`]: epoll on Linux, poll(2)
//! portable fallback, selectable via `ESHARP_FORCE_POLL=1`) owns every
//! socket, speaks keep-alive and pipelining through per-connection
//! state machines, and fans parsed requests out to a fixed worker pool
//! through a **bounded admission queue** (the `esharp-par` caller/worker
//! idiom, adapted from batch to streaming; completions return over a
//! self-pipe wakeup). Seven endpoints:
//!
//! | Endpoint             | Purpose                                          |
//! |----------------------|--------------------------------------------------|
//! | `GET /search?q=…`    | e# search, JSON body, result-cached              |
//! | `POST /search/batch` | newline-separated queries, shared index traversal|
//! | `GET /healthz`       | liveness + degradation state                     |
//! | `GET /metrics`       | counters, cache stats, latency histograms        |
//! | `POST /reload`       | hot domain reload (the weekly refresh hand-off)  |
//! | `POST /ingest`       | streaming op batch into the live corpus          |
//! | `POST /compact`      | synchronous delta-segment compaction             |
//!
//! Search serves from an `esharp-ingest`
//! [`LiveCorpus`](esharp_ingest::LiveCorpus): ingested tweets are
//! visible to the next query, and a background compactor (enabled via
//! [`ServeConfig::compact_threshold`]) folds the delta segment into a
//! fresh persisted base without pausing reads.
//!
//! ## Correctness anchors
//!
//! * **Epoch-keyed caching** — the result cache keys on `(normalized
//!   query, domains epoch, corpus epoch)` where the domains epoch comes
//!   from the same [`SharedEsharp`](esharp_core::SharedEsharp) snapshot
//!   as the collection searched (*every* reload attempt advances it) and
//!   the corpus epoch from the same `LiveCorpus` snapshot as the index
//!   searched (every ingested batch and compaction publish advances it).
//!   A cached body is therefore always byte-identical to a cold search
//!   against the collection *and index* that were live when it was
//!   cached; stale expansions, stale degradation states, and stale
//!   matches can never be served.
//! * **Load shedding** — when the admission queue is full the event
//!   loop answers `503 Retry-After` inline instead of queueing
//!   unboundedly: under overload the server sheds, it does not collapse,
//!   and admitted requests keep their latency. On a keep-alive
//!   connection the shed costs one request, not the connection.
//! * **Degraded serving** — a failed reload keeps the last known-good
//!   collection serving; outcomes carry the
//!   [`Degradation`](esharp_core::Degradation) in the JSON body and
//!   `/healthz` flips to `"degraded"`. Reload failures are injectable
//!   through `esharp-fault` (site `reload:domains`) for tests.
//!
//! All JSON is hand-rolled ([`json`]): deterministic output, no
//! serialization dependency on the serving path.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
mod conn;
mod event_loop;
pub mod http;
pub mod json;
pub mod metrics;
pub mod poller;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use metrics::{BreakerStats, Histogram, Metrics};
pub use server::{render_search_body, search_and_render, ServeConfig, ServeHooks, Server};
