//! A deliberately small HTTP/1.1 subset on std sockets.
//!
//! Enough protocol for the serving endpoints and their load generator:
//! request-line + headers parsing with hard size caps, query string
//! decoding, and response rendering. Parsing is **incremental**
//! ([`parse_request`]): the event loop feeds whatever bytes have arrived
//! and gets back either a complete request plus how many bytes it
//! consumed, "need more", or a typed protocol error — which is what
//! makes keep-alive and pipelined connections parse correctly no matter
//! how the client fragments its writes. The blocking one-shot readers
//! ([`read_request`]/[`read_request_limited`]) are thin loops over the
//! same parser.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Default max bytes of request head (request line + headers).
pub const DEFAULT_MAX_HEAD: usize = 16 * 1024;
/// Default max request body bytes.
pub const DEFAULT_MAX_BODY: usize = 64 * 1024;

/// Request size caps, rejected **before** the offending bytes are read:
/// an oversized `Content-Length` is refused from its declaration alone
/// (`413`), and a head that keeps growing past `max_head` is cut off
/// (`431`) — either way a hostile or confused client cannot pin a
/// worker on an unbounded read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Max bytes of request head (request line + headers).
    pub max_head: usize,
    /// Max declared/readable body bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: DEFAULT_MAX_HEAD,
            max_body: DEFAULT_MAX_BODY,
        }
    }
}

/// Why a request could not be parsed, mapped 1:1 onto a response status
/// so handlers answer the precise protocol error instead of a blanket
/// `400`.
#[derive(Debug)]
pub enum RequestError {
    /// `400` — syntactically invalid request.
    Malformed(io::Error),
    /// `413` — declared `Content-Length` above the cap; the body was
    /// **not** read.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// `431` — request head grew past the cap.
    HeadTooLarge {
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// Socket-level failure (timeout, reset) — no response is owed.
    Io(io::Error),
}

impl RequestError {
    /// The response status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Malformed(_) => 400,
            RequestError::BodyTooLarge { .. } => 413,
            RequestError::HeadTooLarge { .. } => 431,
            RequestError::Io(_) => 400,
        }
    }
}

/// A parsed request: method, decoded path, decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (upper-case as sent).
    pub method: String,
    /// The path component, percent-decoded (`/search`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Headers in order of appearance, names lower-cased, values
    /// trimmed. (`X-Esharp-Deadline-Ms` rides here.)
    pub headers: Vec<(String, String)>,
    /// The request body (`content-length` bytes; empty for bodiless
    /// requests). `POST /ingest` reads op lines from here.
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to be closed after
    /// this response (`Connection: close`, or an HTTP/1.0 request —
    /// this subset does not honor 1.0 keep-alive).
    pub close: bool,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from the stream with default [`Limits`].
/// Returns `Ok(None)` when the peer closed before sending anything (a
/// clean no-request connection); malformed or oversized requests are
/// `Err`.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    read_request_limited(stream, &Limits::default()).map_err(|e| match e {
        RequestError::Malformed(e) | RequestError::Io(e) => e,
        RequestError::BodyTooLarge { .. } => bad("request body too large"),
        RequestError::HeadTooLarge { .. } => bad("request head too large"),
    })
}

/// [`read_request`] with explicit size caps and a typed error that maps
/// onto the exact rejection status (`400`/`413`/`431`).
pub fn read_request_limited(
    stream: &mut TcpStream,
    limits: &Limits,
) -> Result<Option<Request>, RequestError> {
    let mut pending = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        if let Some((request, _consumed)) = parse_request(&pending, limits)? {
            return Ok(Some(request));
        }
        let n = stream.read(&mut buf).map_err(RequestError::Io)?;
        if n == 0 {
            if pending.is_empty() {
                return Ok(None);
            }
            return Err(RequestError::Malformed(bad("connection closed mid-request")));
        }
        pending.extend_from_slice(&buf[..n]);
    }
}

/// Incrementally parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller
///   drains `consumed` bytes and may call again on the remainder (a
///   pipelined connection carries the next request right there).
/// * `Ok(None)` — the bytes so far are a valid prefix; read more.
/// * `Err(_)` — the prefix can never become a valid in-cap request:
///   malformed syntax (`400`), declared body above cap (`413`, from the
///   declaration alone — the body bytes need never arrive), or a head
///   still headerless past `max_head` (`431`).
pub fn parse_request(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(Request, usize)>, RequestError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > limits.max_head {
            return Err(RequestError::HeadTooLarge {
                cap: limits.max_head,
            });
        }
        return Ok(None);
    };
    let (mut request, content_length) = parse_head(&buf[..head_end])?;
    // The cap is enforced on the *declared* length, before a single body
    // byte is waited for — an oversized upload is refused at the cost of
    // its headers.
    if content_length > limits.max_body {
        return Err(RequestError::BodyTooLarge {
            declared: content_length,
            cap: limits.max_body,
        });
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    request.body = buf[body_start..body_start + content_length].to_vec();
    Ok(Some((request, body_start + content_length)))
}

/// Parse a complete request head (everything before `\r\n\r\n`) into a
/// bodiless [`Request`] plus its declared content length.
fn parse_head(head: &[u8]) -> Result<(Request, usize), RequestError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| RequestError::Malformed(bad("non-UTF-8 request head")))?;
    let malformed = |msg: &str| RequestError::Malformed(bad(msg));
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or_else(|| malformed("missing method"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("unsupported HTTP version"));
    }
    if method.is_empty() || target.is_empty() {
        return Err(malformed("empty method or target"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| malformed("invalid content-length"))?;
            }
            headers.push((name, value));
        }
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path =
        percent_decode(path_raw).ok_or_else(|| malformed("malformed path encoding"))?;
    let mut query = Vec::new();
    if let Some(q) = query_raw {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k).ok_or_else(|| malformed("malformed query encoding"))?;
            let v = percent_decode(v).ok_or_else(|| malformed("malformed query encoding"))?;
            query.push((k, v));
        }
    }
    // HTTP/1.1 defaults to keep-alive; everything else (and an explicit
    // `Connection: close`) closes after the response.
    let close = version != "HTTP/1.1"
        || headers.iter().any(|(k, v)| {
            k == "connection" && v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close"))
        });
    Ok((
        Request {
            method: method.to_string(),
            path,
            query,
            headers,
            body: Vec::new(),
            close,
        },
        content_length,
    ))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Decode `%XX` escapes and `+`-as-space. `None` on malformed escapes or
/// non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex(*bytes.get(i + 1)?)?;
                let lo = hex(*bytes.get(i + 2)?)?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Encode a query-parameter value: everything but unreserved characters
/// becomes `%XX` (the load generator's counterpart to [`percent_decode`]).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => {
                out.push('%');
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{b:02X}"));
            }
        }
    }
    out
}

fn hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Render a complete response into bytes. `close` selects the
/// `connection:` header — the body length is always declared, so a
/// keep-alive client knows exactly where the response ends.
pub fn render_response(
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let connection = if close { "close" } else { "keep-alive" };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        body.len()
    )
    .into_bytes();
    for (name, value) in extra_headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Write a complete closing response and flush (the one-shot path used
/// by blocking callers and tests; the event loop renders and writes
/// through its connection state machine instead).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let bytes = render_response(status, extra_headers, body, true);
    write_bounded(stream, &bytes)?;
    stream.flush()
}

/// Write all of `buf`, tolerating partial writes and spurious wakeups
/// under `set_write_timeout`. A `WouldBlock`/`TimedOut` while bytes are
/// still moving is retried; one with **zero progress since the last
/// retry** means the client has stopped draining its receive window —
/// the write is abandoned and the error surfaces so the caller can shed
/// the connection (see [`is_slow_client`]).
fn write_bounded(stream: &mut TcpStream, buf: &[u8]) -> io::Result<()> {
    let mut written = 0usize;
    let mut progressed = true;
    while written < buf.len() {
        match stream.write(&buf[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "client closed mid-response",
                ))
            }
            Ok(n) => {
                written += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if !progressed {
                    return Err(e);
                }
                progressed = false;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Whether a write failure means the *client* stalled (stopped reading,
/// filled its window) rather than the server failing — such connections
/// are shed and accounted as `shed_slow_client`, never as success.
pub fn is_slow_client(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::WriteZero
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_roundtrip() {
        for s in ["49ers", "golden gate", "a+b", "tête-à-tête", "%&?=/"] {
            assert_eq!(percent_decode(&percent_encode(s)).as_deref(), Some(s));
        }
        assert_eq!(percent_decode("a+b").as_deref(), Some("a b"));
        assert_eq!(percent_decode("%2"), None);
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%ff"), None, "lone 0xff is not UTF-8");
    }

    #[test]
    fn requests_parse_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(
                b"GET /search?q=golden%20gate&top=3 HTTP/1.1\r\nHost: x\r\n\r\n",
            )
            .unwrap();
            let mut out = String::new();
            c.read_to_string(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.param("q"), Some("golden gate"));
        assert_eq!(req.param("top"), Some("3"));
        assert_eq!(req.param("missing"), None);
        write_response(&mut stream, 200, &[("x-test", "1")], b"{}").unwrap();
        drop(stream);
        let reply = client.join().unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("x-test: 1"));
        assert!(reply.ends_with("{}"));
    }

    #[test]
    fn post_bodies_are_drained() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"POST /reload HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
            let mut out = String::new();
            c.read_to_string(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/reload");
        assert_eq!(req.body, b"hello");
        write_response(&mut stream, 200, &[], b"{}").unwrap();
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        for payload in ["garbage\r\n\r\n", "GET /x%zz HTTP/1.1\r\n\r\n", "GET / SPDY/3\r\n\r\n"] {
            let sent = payload.to_string();
            let client = std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                c.write_all(sent.as_bytes()).unwrap();
                let mut out = Vec::new();
                let _ = c.read_to_end(&mut out);
            });
            let (mut stream, _) = listener.accept().unwrap();
            assert!(read_request(&mut stream).is_err(), "{payload:?}");
            drop(stream);
            client.join().unwrap();
        }
        // Clean EOF before any bytes → Ok(None).
        let client = std::thread::spawn(move || {
            let c = TcpStream::connect(addr).unwrap();
            drop(c);
        });
        let (mut stream, _) = listener.accept().unwrap();
        client.join().unwrap();
        assert!(matches!(read_request(&mut stream), Ok(None)));
    }

    #[test]
    fn headers_are_parsed_case_insensitively() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(
                b"GET /search?q=a HTTP/1.1\r\nX-Esharp-Deadline-Ms: 75\r\nHost: x\r\n\r\n",
            )
            .unwrap();
            let mut out = Vec::new();
            let _ = c.read_to_end(&mut out);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream).unwrap().unwrap();
        assert_eq!(req.header("x-esharp-deadline-ms"), Some("75"));
        assert_eq!(req.header("X-ESHARP-DEADLINE-MS"), Some("75"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("absent"), None);
        write_response(&mut stream, 200, &[], b"{}").unwrap();
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            // Declare a huge body but never send it: the server must
            // reject from the declaration alone without blocking on
            // body bytes.
            c.write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
                .unwrap();
            let mut out = Vec::new();
            let _ = c.read_to_end(&mut out);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let limits = Limits {
            max_head: 1024,
            max_body: 64,
        };
        let err = read_request_limited(&mut stream, &limits).unwrap_err();
        assert!(
            matches!(
                err,
                RequestError::BodyTooLarge {
                    declared: 999999,
                    cap: 64
                }
            ),
            "{err:?}"
        );
        assert_eq!(err.status(), 413);
        write_response(&mut stream, 413, &[], b"{}").unwrap();
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn incremental_parse_handles_every_split_point() {
        let limits = Limits::default();
        let wire = b"POST /ingest HTTP/1.1\r\nHost: x\r\ncontent-length: 5\r\n\r\nhello";
        for cut in 0..wire.len() {
            let prefix = &wire[..cut];
            assert!(
                matches!(parse_request(prefix, &limits), Ok(None)),
                "prefix of {cut} bytes must ask for more"
            );
        }
        let (req, consumed) = parse_request(wire, &limits).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let limits = Limits::default();
        let mut wire = Vec::new();
        wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        wire.extend_from_slice(b"POST /ingest HTTP/1.1\r\ncontent-length: 2\r\n\r\nok");
        wire.extend_from_slice(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        let mut offset = 0;
        let mut parsed = Vec::new();
        while let Some((req, consumed)) = parse_request(&wire[offset..], &limits).unwrap() {
            offset += consumed;
            parsed.push(req);
        }
        assert_eq!(offset, wire.len());
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].path, "/healthz");
        assert_eq!(parsed[1].body, b"ok");
        assert!(!parsed[1].close);
        assert_eq!(parsed[2].path, "/metrics");
        assert!(parsed[2].close, "Connection: close must be honored");
    }

    #[test]
    fn close_is_inferred_from_version_and_header() {
        let limits = Limits::default();
        let (req, _) = parse_request(b"GET / HTTP/1.0\r\n\r\n", &limits).unwrap().unwrap();
        assert!(req.close, "HTTP/1.0 closes");
        let (req, _) =
            parse_request(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", &limits)
                .unwrap()
                .unwrap();
        assert!(req.close, "header is case-insensitive");
    }

    #[test]
    fn render_response_declares_connection_state() {
        let keep = render_response(200, &[("x-a", "1")], b"{}", false);
        let text = String::from_utf8(keep).unwrap();
        assert!(text.contains("connection: keep-alive"), "{text}");
        assert!(text.contains("content-length: 2"), "{text}");
        assert!(text.contains("x-a: 1"), "{text}");
        let close = render_response(503, &[], b"", true);
        assert!(String::from_utf8(close).unwrap().contains("connection: close"));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let huge = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4096));
            let _ = c.write_all(huge.as_bytes());
            let mut out = Vec::new();
            let _ = c.read_to_end(&mut out);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let limits = Limits {
            max_head: 512,
            max_body: 64,
        };
        let err = read_request_limited(&mut stream, &limits).unwrap_err();
        assert!(matches!(err, RequestError::HeadTooLarge { cap: 512 }), "{err:?}");
        assert_eq!(err.status(), 431);
        write_response(&mut stream, 431, &[], b"{}").unwrap();
        drop(stream);
        client.join().unwrap();
    }
}
