//! Per-connection state for the event loop.
//!
//! A [`Conn`] owns one nonblocking socket and the four buffers/queues
//! that carry a keep-alive connection through its lifecycle: an input
//! buffer fed by readiness events and drained by the incremental parser
//! ([`crate::http::parse_request`]), a bounded pipeline of parsed
//! requests waiting for a worker, an output buffer of rendered
//! responses written as the socket allows, and the close/drain
//! bookkeeping (`Connection: close`, protocol-error poisoning, EOF)
//! that decides when the connection ends.
//!
//! The state machine is deliberately passive: the event loop calls
//! these methods and makes every decision. Nothing here blocks — every
//! socket operation stops at `WouldBlock`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::http::{Limits, Request, RequestError};
use crate::poller::Interest;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Read granularity per syscall.
const CHUNK: usize = 4096;
/// Max bytes consumed from one readiness event before yielding back to
/// the loop (level-triggered polling re-reports the rest), so one
/// firehosing connection cannot starve the others.
const READ_BURST: usize = 64 * 1024;

/// What one read+parse pass produced.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ParseStats {
    /// Requests parsed into the pipeline this pass.
    pub(crate) parsed: usize,
    /// Of those, requests parsed while earlier ones were still queued
    /// or executing — true pipelining.
    pub(crate) pipelined: usize,
}

/// One live connection in the event loop.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// Parsed requests waiting for a worker slot, oldest first. Bounded
    /// by `max_pipeline_depth`: when full, the connection stops reading
    /// and TCP backpressure does the rest.
    pub(crate) pending: VecDeque<Request>,
    /// `Some(request.close)` while this connection has a job on the
    /// worker pool (at most one — responses stay in request order).
    pub(crate) executing: Option<bool>,
    /// Pre-rendered protocol-error response (`400`/`413`/`431`), sent
    /// once all prior pipelined responses have gone out; the connection
    /// then closes. Parsing stops the moment this is set.
    pub(crate) poison: Option<Vec<u8>>,
    /// Close once the output buffer drains.
    pub(crate) close_after_flush: bool,
    /// Half-close and read out the client's in-flight bytes before the
    /// final close, so an error response isn't destroyed by an RST
    /// racing ahead of it (set on the poison path, where the client is
    /// mid-send by definition).
    pub(crate) draining: bool,
    /// When a draining connection gives up waiting for the client's EOF.
    pub(crate) drain_deadline: Option<Instant>,
    pub(crate) eof: bool,
    pub(crate) last_activity: Instant,
    /// Requests answered on this connection; >1 means keep-alive reuse.
    pub(crate) served: u64,
    /// Interest currently registered with the poller (`None` =
    /// deregistered).
    pub(crate) registered: Option<Interest>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            pending: VecDeque::new(),
            executing: None,
            poison: None,
            close_after_flush: false,
            draining: false,
            drain_deadline: None,
            eof: false,
            last_activity: now,
            served: 0,
            registered: None,
        }
    }

    /// Whether this connection should be reading more request bytes.
    pub(crate) fn wants_read(&self, max_depth: usize) -> bool {
        !self.eof
            && self.poison.is_none()
            && !self.close_after_flush
            && !self.draining
            && self.pending.len() < max_depth.max(1)
    }

    /// Read whatever the socket has (up to the fairness burst) and parse
    /// as many complete requests as the pipeline bound allows. Stops at
    /// `WouldBlock`, EOF, a full pipeline, or a protocol error.
    ///
    /// `Err` is either a protocol error (the caller poisons the
    /// connection and still flushes prior responses) or
    /// [`RequestError::Io`] (the socket died; the caller destroys the
    /// connection silently).
    pub(crate) fn fill_and_parse(
        &mut self,
        limits: &Limits,
        max_depth: usize,
    ) -> Result<ParseStats, RequestError> {
        let max_depth = max_depth.max(1);
        let mut stats = ParseStats::default();
        let mut read_total = 0usize;
        loop {
            // Parse everything already buffered first: a single read can
            // carry many pipelined requests.
            while self.pending.len() < max_depth {
                match crate::http::parse_request(&self.inbuf, limits)? {
                    Some((request, consumed)) => {
                        self.inbuf.drain(..consumed);
                        if self.executing.is_some() || !self.pending.is_empty() {
                            stats.pipelined += 1;
                        }
                        stats.parsed += 1;
                        self.pending.push_back(request);
                    }
                    None => break,
                }
            }
            if !self.wants_read(max_depth) || read_total >= READ_BURST {
                return Ok(stats);
            }
            let mut chunk = [0u8; CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(stats);
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    read_total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(stats),
                Err(e) => return Err(RequestError::Io(e)),
            }
        }
    }

    /// Append rendered response bytes to the output buffer.
    pub(crate) fn queue_bytes(&mut self, bytes: &[u8]) {
        self.outbuf.extend_from_slice(bytes);
    }

    pub(crate) fn has_output(&self) -> bool {
        self.outpos < self.outbuf.len()
    }

    /// Write as much buffered output as the socket accepts. `Ok` means
    /// "made whatever progress was possible" (check [`Conn::has_output`]
    /// for leftovers); `Err` means the socket is dead.
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "client closed mid-response",
                    ))
                }
                Ok(n) => {
                    self.outpos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
        self.outbuf.clear();
        self.outpos = 0;
        Ok(())
    }

    /// Read and throw away client bytes (the drain-before-close dance).
    /// Returns `true` when the connection can finally be destroyed (EOF
    /// or a dead socket).
    pub(crate) fn discard(&mut self) -> io::Result<bool> {
        let mut sink = [0u8; 1024];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(true);
                }
                Ok(_) => {
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(_) => return Ok(true),
            }
        }
    }

    /// Nothing queued, nothing executing, nothing to write.
    pub(crate) fn idle(&self) -> bool {
        self.executing.is_none()
            && self.pending.is_empty()
            && !self.has_output()
            && self.poison.is_none()
    }

    /// The poller interest this connection's state calls for, if any.
    pub(crate) fn desired_interest(&self, max_depth: usize) -> Option<Interest> {
        let read = self.wants_read(max_depth) || self.draining;
        let write = self.has_output();
        match (read, write) {
            (true, true) => Some(Interest::Both),
            (true, false) => Some(Interest::Read),
            (false, true) => Some(Interest::Write),
            (false, false) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn pipelined_requests_parse_up_to_the_depth_bound() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Instant::now());
        for _ in 0..4 {
            client
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                .unwrap();
        }
        // Give the kernel a beat to deliver.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let stats = conn.fill_and_parse(&Limits::default(), 2).unwrap();
        assert_eq!(stats.parsed, 2, "depth bound holds");
        assert_eq!(stats.pipelined, 1, "second request counts as pipelined");
        assert!(!conn.wants_read(2), "full pipeline stops reading");
        conn.pending.pop_front();
        let stats = conn.fill_and_parse(&Limits::default(), 2).unwrap();
        assert_eq!(stats.parsed, 1, "freed slot resumes parsing");
    }

    #[test]
    fn flush_tracks_progress_and_completion() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Instant::now());
        conn.queue_bytes(b"hello ");
        conn.queue_bytes(b"world");
        assert!(conn.has_output());
        conn.flush().unwrap();
        assert!(!conn.has_output(), "small writes complete in one pass");
        let mut buf = [0u8; 16];
        use std::io::Read as _;
        client.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        let n = client.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello world");
    }

    #[test]
    fn protocol_errors_surface_and_eof_is_latched() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Instant::now());
        client.write_all(b"garbage\r\n\r\n").unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(50));
        let err = conn.fill_and_parse(&Limits::default(), 8).unwrap_err();
        assert!(matches!(err, RequestError::Malformed(_)), "{err:?}");
        assert!(conn.idle());
    }
}
