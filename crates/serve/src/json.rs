//! Minimal hand-rolled JSON emission.
//!
//! The serving path produces every body through these helpers, mirroring
//! the repository's bench-report idiom: output is a pure function of the
//! input values (stable field order, shortest-roundtrip floats), which is
//! what lets the result cache promise byte-identical hits, and the crate
//! stays free of serialization dependencies.

use std::fmt::Write as _;

/// Append `s` as a JSON string literal (quotes included), escaping
/// control characters, quotes and backslashes per RFC 8259.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` in shortest-roundtrip form; non-finite values
/// (which JSON cannot carry) become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append a comma-separated list of JSON string literals inside `[…]`.
pub fn push_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str(out, item);
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl Fn(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(s(|o| push_str(o, "plain")), "\"plain\"");
        assert_eq!(s(|o| push_str(o, "a\"b\\c")), "\"a\\\"b\\\\c\"");
        assert_eq!(s(|o| push_str(o, "x\n\t\u{1}")), "\"x\\n\\t\\u0001\"");
        assert_eq!(s(|o| push_str(o, "49ers ✓")), "\"49ers ✓\"");
    }

    #[test]
    fn floats_roundtrip_or_null() {
        assert_eq!(s(|o| push_f64(o, 1.25)), "1.25");
        assert_eq!(s(|o| push_f64(o, -0.5)), "-0.5");
        assert_eq!(s(|o| push_f64(o, f64::NAN)), "null");
        assert_eq!(s(|o| push_f64(o, f64::INFINITY)), "null");
        // Shortest-roundtrip is deterministic: same bits, same text.
        let v = 0.1 + 0.2;
        assert_eq!(s(|o| push_f64(o, v)), s(|o| push_f64(o, v)));
    }

    #[test]
    fn string_arrays() {
        assert_eq!(s(|o| push_str_array(o, &[])), "[]");
        assert_eq!(
            s(|o| push_str_array(o, &["a".into(), "b\"".into()])),
            "[\"a\",\"b\\\"\"]"
        );
    }
}
