//! Readiness polling behind one narrow `unsafe` surface.
//!
//! The event loop needs exactly three capabilities from the platform:
//! *register a file descriptor for read/write readiness*, *wait for the
//! next batch of ready descriptors*, and *a wakeup pipe* other threads
//! can write one byte into to interrupt the wait. Everything else in the
//! serve crate is safe std code.
//!
//! Two interchangeable backends implement that contract:
//!
//! * **epoll** (Linux, the default): `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` declared directly — std already links libc, so no
//!   external crate is needed. O(ready) wakeups, level-triggered.
//! * **poll(2)** (portable fallback): a flat `pollfd` array rebuilt from
//!   the registration table on every wait. O(registered) per wakeup but
//!   works on every unix; selected automatically off Linux, or forced
//!   anywhere with `ESHARP_FORCE_POLL=1` so CI exercises the fallback on
//!   the primary platform too.
//!
//! Both backends are level-triggered: a socket that still has unread
//! bytes (or writable space) reports ready again on the next wait, so
//! the loop never needs to drain-to-EAGAIN for correctness — only for
//! throughput.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};

/// What readiness a registered descriptor should be watched for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only.
    Read,
    /// Writable only.
    Write,
    /// Both readable and writable.
    Both,
}

impl Interest {
    fn readable(self) -> bool {
        matches!(self, Interest::Read | Interest::Both)
    }
    fn writable(self) -> bool {
        matches!(self, Interest::Write | Interest::Both)
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or has a pending hangup/error, which
    /// a read will surface as EOF/Err).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The descriptor reported an error or hangup condition.
    pub error: bool,
}

// ---------------------------------------------------------------- ffi --

mod ffi {
    //! The entire unsafe platform surface: direct declarations of the
    //! handful of syscall wrappers std does not re-export.
    #![allow(non_camel_case_types)]

    use std::os::raw::{c_int, c_short};

    pub type nfds_t = usize;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct pollfd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub const POLLIN: c_short = 0x1;
    pub const POLLOUT: c_short = 0x4;
    pub const POLLERR: c_short = 0x8;
    pub const POLLHUP: c_short = 0x10;
    pub const POLLNVAL: c_short = 0x20;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    pub const F_GETFL: c_int = 3;
    pub const F_SETFL: c_int = 4;
    pub const O_NONBLOCK: c_int = 0x800;

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::os::raw::c_int;

        // `epoll_event` is packed on x86-64 (and x32) only; other
        // architectures use natural alignment. Getting this wrong reads
        // garbage tokens, so mirror the kernel UAPI exactly.
        #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
        #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;

        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLL_CLOEXEC: c_int = 0x80000;

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(
                epfd: c_int,
                op: c_int,
                fd: c_int,
                event: *mut epoll_event,
            ) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on a valid owned descriptor; no memory is touched.
    unsafe {
        let flags = ffi::fcntl(fd, ffi::F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if ffi::fcntl(fd, ffi::F_SETFL, flags | ffi::O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

// ------------------------------------------------------------- wakeup --

/// A nonblocking self-pipe: worker threads [`Wakeup::notify`] when they
/// finish a job, the event loop registers the read end and
/// [`Wakeup::drain`]s it on wakeup. Writes to a full pipe are dropped —
/// one pending byte is enough to wake the loop.
#[derive(Debug)]
pub struct Wakeup {
    read: File,
    write: File,
}

impl Wakeup {
    /// Create the pipe pair, both ends nonblocking.
    pub fn new() -> io::Result<Wakeup> {
        let mut fds = [0i32; 2];
        // SAFETY: pipe writes exactly two descriptors into the array;
        // from_raw_fd then owns each exactly once.
        let (read, write) = unsafe {
            if ffi::pipe(fds.as_mut_ptr()) != 0 {
                return Err(io::Error::last_os_error());
            }
            (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1]))
        };
        set_nonblocking_fd(read.as_raw_fd())?;
        set_nonblocking_fd(write.as_raw_fd())?;
        Ok(Wakeup { read, write })
    }

    /// The descriptor the loop registers for read readiness.
    pub fn fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Wake the loop. Safe from any thread; a full pipe already wakes.
    pub fn notify(&self) {
        let _ = (&self.write).write(&[1u8]);
    }

    /// Discard all pending wakeup bytes.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.read).read(&mut sink), Ok(n) if n > 0) {}
    }
}

// ------------------------------------------------------------ backend --

#[cfg(target_os = "linux")]
struct EpollBackend {
    /// Owns the epoll fd (closed on drop).
    ep: File,
    buf: Vec<ffi::epoll::epoll_event>,
}

// Manual impl: `epoll_event` is `repr(packed)` on x86, which rules out
// deriving Debug (field references would be unaligned).
#[cfg(target_os = "linux")]
impl std::fmt::Debug for EpollBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpollBackend").field("ep", &self.ep).finish()
    }
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        use ffi::epoll::*;
        // SAFETY: epoll_create1 returns a fresh descriptor we own.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend {
            // SAFETY: fd is a valid descriptor owned only here.
            ep: unsafe { File::from_raw_fd(fd) },
            buf: vec![ffi::epoll::epoll_event { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        use ffi::epoll::*;
        let mut events = 0u32;
        if interest.readable() {
            events |= EPOLLIN;
        }
        if interest.writable() {
            events |= EPOLLOUT;
        }
        let mut ev = epoll_event { events, data: token };
        // SAFETY: valid epoll fd, valid target fd, event points at a
        // live struct for the duration of the call.
        let rc = unsafe { epoll_ctl(self.ep.as_raw_fd(), op, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        use ffi::epoll::*;
        // SAFETY: buf is a live allocation of epoll_event; the kernel
        // writes at most buf.len() entries.
        let n = unsafe {
            epoll_wait(
                self.ep.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for i in 0..n as usize {
            let ev = self.buf[i];
            let bits = ev.events;
            out.push(PollEvent {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

/// The poll(2) fallback: a registration table flattened into a `pollfd`
/// array per wait.
#[derive(Debug, Default)]
struct PollBackend {
    /// (fd, token, interest), linear — registration counts are small
    /// (one per live connection) and the scan is cache-friendly.
    entries: Vec<(RawFd, u64, Interest)>,
}

impl PollBackend {
    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|(f, _, _)| *f == fd)
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        let mut fds: Vec<ffi::pollfd> = self
            .entries
            .iter()
            .map(|&(fd, _, interest)| ffi::pollfd {
                fd,
                events: {
                    let mut e = 0;
                    if interest.readable() {
                        e |= ffi::POLLIN;
                    }
                    if interest.writable() {
                        e |= ffi::POLLOUT;
                    }
                    e
                },
                revents: 0,
            })
            .collect();
        // SAFETY: fds is a live array of fds.len() pollfd structs.
        let n = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for (slot, &(_, token, _)) in fds.iter().zip(&self.entries) {
            let bits = slot.revents;
            if bits == 0 {
                continue;
            }
            out.push(PollEvent {
                token,
                readable: bits & (ffi::POLLIN | ffi::POLLHUP) != 0,
                writable: bits & ffi::POLLOUT != 0,
                error: bits & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0,
            });
        }
        Ok(())
    }
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(PollBackend),
}

/// The readiness poller the event loop drives. Level-triggered on both
/// backends.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// The platform-preferred backend: epoll on Linux (unless
    /// `ESHARP_FORCE_POLL=1`), poll(2) everywhere else.
    pub fn new() -> io::Result<Poller> {
        let force_poll = std::env::var("ESHARP_FORCE_POLL").is_ok_and(|v| v == "1");
        Poller::with_backend(force_poll)
    }

    /// Explicit backend selection (`force_poll = true` → poll(2)); used
    /// by tests to pin both implementations on the same host.
    pub fn with_backend(force_poll: bool) -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                return Ok(Poller {
                    backend: Backend::Epoll(EpollBackend::new()?),
                });
            }
        }
        let _ = force_poll;
        Ok(Poller {
            backend: Backend::Poll(PollBackend::default()),
        })
    }

    /// The backend's name, for `/metrics` and boot logs.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(ffi::epoll::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll(p) => {
                if p.position(fd).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                p.entries.push((fd, token, interest));
                Ok(())
            }
        }
    }

    /// Change what `fd` is watched for.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(ffi::epoll::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll(p) => match p.position(fd) {
                Some(i) => {
                    p.entries[i] = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            },
        }
    }

    /// Stop watching `fd`. Must be called before the descriptor is
    /// closed (the poll backend would otherwise report `POLLNVAL`).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(ffi::epoll::EPOLL_CTL_DEL, fd, 0, Interest::Read),
            Backend::Poll(p) => match p.position(fd) {
                Some(i) => {
                    p.entries.remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            },
        }
    }

    /// Block until at least one descriptor is ready or `timeout_ms`
    /// elapses (`-1` = forever). Ready events are appended to `out`
    /// (cleared first).
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(out, timeout_ms),
            Backend::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Poller> {
        vec![
            Poller::with_backend(false).expect("native backend"),
            Poller::with_backend(true).expect("poll backend"),
        ]
    }

    #[test]
    fn wakeup_pipe_wakes_and_drains_on_both_backends() {
        for mut poller in backends() {
            let wake = Wakeup::new().expect("pipe");
            poller.register(wake.fd(), 7, Interest::Read).expect("register");
            let mut events = Vec::new();

            // Nothing pending: a zero-timeout wait reports nothing.
            poller.wait(&mut events, 0).expect("wait");
            assert!(events.is_empty(), "{}: spurious event", poller.backend_name());

            wake.notify();
            wake.notify();
            poller.wait(&mut events, 1000).expect("wait");
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Drained: quiet again (level-triggered until drained).
            wake.drain();
            poller.wait(&mut events, 0).expect("wait");
            assert!(events.is_empty(), "{}: not drained", poller.backend_name());
        }
    }

    #[test]
    fn socket_readiness_and_reregister_roundtrip() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let mut client = TcpStream::connect(addr).expect("connect");
            let (server, _) = listener.accept().expect("accept");
            server.set_nonblocking(true).expect("nonblocking");

            poller
                .register(server.as_raw_fd(), 42, Interest::Read)
                .expect("register");
            let mut events = Vec::new();
            poller.wait(&mut events, 0).expect("wait");
            assert!(events.is_empty(), "{}: no bytes yet", poller.backend_name());

            client.write_all(b"x").expect("send");
            poller.wait(&mut events, 1000).expect("wait");
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable && !events[0].writable);

            // Write interest: an idle socket is immediately writable.
            poller
                .reregister(server.as_raw_fd(), 42, Interest::Both)
                .expect("reregister");
            poller.wait(&mut events, 1000).expect("wait");
            assert!(events[0].writable, "{}", poller.backend_name());

            poller.deregister(server.as_raw_fd()).expect("deregister");
            poller.wait(&mut events, 0).expect("wait");
            assert!(events.is_empty(), "{}: deregistered fd still reported", poller.backend_name());
        }
    }

    #[test]
    fn hangup_reports_readable_for_eof_detection() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let client = TcpStream::connect(addr).expect("connect");
            let (server, _) = listener.accept().expect("accept");
            server.set_nonblocking(true).expect("nonblocking");
            poller
                .register(server.as_raw_fd(), 9, Interest::Read)
                .expect("register");
            drop(client);
            let mut events = Vec::new();
            poller.wait(&mut events, 1000).expect("wait");
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert!(events[0].readable, "hangup must surface as readable EOF");
        }
    }
}
