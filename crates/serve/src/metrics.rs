//! Serving metrics: request counters, cache statistics, and per-phase
//! latency histograms — the observability half of the Table 9 budget
//! (expansion < 100 ms, detection < 1 s): the budget only means
//! something in production if the service can show its p99s.
//!
//! Everything is lock-free atomics so recording never contends with the
//! serving path; rendering (`/metrics`) reads whatever snapshot the
//! relaxed loads happen to see, which is the usual monitoring contract.

use crate::json;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Power-of-two microsecond buckets: bucket *i* counts samples in
/// `[2^i, 2^(i+1))` µs, bucket 0 additionally absorbs sub-microsecond
/// samples. 32 buckets reach ~71 minutes — far past any request.
pub const BUCKETS: usize = 32;

/// A fixed-bucket latency histogram with exact count/sum/max.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let index = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[index].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.max_us.fetch_max(us, Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count.load(Relaxed);
        if count == 0 {
            return 0.0;
        }
        self.sum_us.load(Relaxed) as f64 / count as f64
    }

    /// Largest sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket holding the `⌈q·count⌉`-th sample (clamped by the
    /// exact max). Bucket bounds are powers of two, so the estimate is
    /// within 2× — plenty for "is p99 under a second".
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count.load(Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Relaxed);
            if seen >= target {
                return (1u64 << (i + 1)).min(self.max_us());
            }
        }
        self.max_us()
    }

    fn render(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count().to_string());
        out.push_str(",\"mean_us\":");
        json::push_f64(out, (self.mean_us() * 10.0).round() / 10.0);
        out.push_str(",\"p50_us\":");
        out.push_str(&self.quantile_us(0.50).to_string());
        out.push_str(",\"p99_us\":");
        out.push_str(&self.quantile_us(0.99).to_string());
        out.push_str(",\"max_us\":");
        out.push_str(&self.max_us().to_string());
        out.push('}');
    }
}

/// All serving counters and histograms, shared by every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `GET /search` requests admitted to a worker.
    pub search_requests: AtomicU64,
    /// `GET /healthz` requests.
    pub healthz_requests: AtomicU64,
    /// `GET /metrics` requests.
    pub metrics_requests: AtomicU64,
    /// `POST /reload` requests.
    pub reload_requests: AtomicU64,
    /// `POST /ingest` requests.
    pub ingest_requests: AtomicU64,
    /// Ops applied by accepted ingest batches.
    pub ingest_ops: AtomicU64,
    /// `POST /compact` requests.
    pub compact_requests: AtomicU64,
    /// Compaction cycles that published (HTTP or background).
    pub compact_ok: AtomicU64,
    /// Compaction cycles that failed (previous base kept serving).
    pub compact_failed: AtomicU64,
    /// Requests answered 4xx (bad path, method, or parameters).
    pub client_errors: AtomicU64,
    /// Connections answered `503` by the accept loop (queue full).
    pub shed_total: AtomicU64,
    /// Responses abandoned because the *client* stopped draining its
    /// receive window (write timeout with zero progress). Never counted
    /// as success.
    pub shed_slow_client: AtomicU64,
    /// Connections accepted by the event loop.
    pub connections: AtomicU64,
    /// Requests served on an already-used keep-alive connection (the
    /// 2nd request onward on each connection).
    pub keepalive_reuses: AtomicU64,
    /// Requests parsed while an earlier request on the same connection
    /// was still queued or executing — true pipelining.
    pub pipelined_requests: AtomicU64,
    /// `POST /search/batch` requests.
    pub batch_requests: AtomicU64,
    /// Queries carried by batch requests.
    pub batch_queries: AtomicU64,
    /// Search responses marked `partial: true` (some shard missed the
    /// deadline or was breaker-skipped).
    pub partial_responses: AtomicU64,
    /// Hedged duplicate shard probes issued for stragglers.
    pub hedges: AtomicU64,
    /// Hedged probes that answered before their straggling primary.
    pub hedge_wins: AtomicU64,
    /// Shard-task panics contained by the scatter-gather layer.
    pub shard_panics: AtomicU64,
    /// Request-handler panics contained by a worker's `catch_unwind`
    /// (each answered `500`, the worker lived on).
    pub worker_panics: AtomicU64,
    /// Worker threads that died outside the request guard and were
    /// respawned by the supervisor.
    pub workers_resurrected: AtomicU64,
    /// Search responses served from the result cache.
    pub cache_hits: AtomicU64,
    /// Search responses computed cold.
    pub cache_misses: AtomicU64,
    /// Successful reloads.
    pub reload_ok: AtomicU64,
    /// Failed reloads (now serving degraded).
    pub reload_failed: AtomicU64,
    /// Query-expansion phase latency (cache misses only).
    pub expansion: Histogram,
    /// Detection (match + rank) phase latency (cache misses only).
    pub detection: Histogram,
    /// Postings match/union half of detection (cache misses only).
    pub match_phase: Histogram,
    /// Candidate ranking half of detection (cache misses only).
    pub rank_phase: Histogram,
    /// Whole-request latency, parse to flush, hits and misses alike.
    pub total: Histogram,
    /// Write-lock hold time of compaction publishes — the only pause
    /// serving ever observes from the streaming maintenance path.
    pub compaction_pause: Histogram,
}

/// A point-in-time snapshot of the live corpus's shard layout, taken
/// under the read guard and rendered into `/metrics` so operators can
/// see postings balance (a skewed shard caps scatter-gather speedup)
/// and whether the corpus is serving zero-copy out of segment buffers.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Postings bytes (arena + offsets) per shard, in shard order.
    pub postings_bytes: Vec<u64>,
    /// Whether any arena is a zero-copy view of a loaded segment buffer.
    pub zero_copy: bool,
}

impl ShardStats {
    /// Snapshot a corpus's shard layout.
    pub fn of(corpus: &esharp_microblog::Corpus) -> ShardStats {
        ShardStats {
            postings_bytes: corpus.shard_postings_bytes(),
            zero_copy: corpus.is_zero_copy(),
        }
    }

    /// Max-over-mean postings-bytes skew: `1.0` is perfectly balanced,
    /// `k` means one shard holds the whole index. `0.0` when empty.
    pub fn skew(&self) -> f64 {
        let n = self.postings_bytes.len();
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self.postings_bytes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = self.postings_bytes.iter().copied().max().unwrap_or(0);
        max as f64 * n as f64 / total as f64
    }

    fn render(&self, out: &mut String) {
        out.push_str("{\"shards\":");
        out.push_str(&self.postings_bytes.len().to_string());
        out.push_str(",\"postings_bytes\":[");
        for (i, b) in self.postings_bytes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"skew_max_over_mean\":");
        json::push_f64(out, (self.skew() * 1e4).round() / 1e4);
        out.push_str(",\"zero_copy\":");
        out.push_str(if self.zero_copy { "true" } else { "false" });
        out.push('}');
    }
}

/// A point-in-time snapshot of the per-shard circuit breakers, rendered
/// into `/metrics` and `/healthz` so operators can see which shards the
/// scatter-gather is currently routing around (ROBUSTNESS.md §9).
#[derive(Debug, Clone, Default)]
pub struct BreakerStats {
    /// Closed→open transitions since start.
    pub trips: u64,
    /// Half-open→closed recoveries since start.
    pub recoveries: u64,
    /// Monotonic counter bumped on every breaker transition; the 4th
    /// component of the result-cache key.
    pub health_epoch: u64,
    /// Per-shard state names (`"closed"` / `"open"` / `"half_open"`),
    /// in shard order.
    pub states: Vec<&'static str>,
}

impl BreakerStats {
    /// Snapshot a breaker set.
    pub fn of(breakers: &esharp_fault::ShardBreakers) -> BreakerStats {
        BreakerStats {
            trips: breakers.trips(),
            recoveries: breakers.recoveries(),
            health_epoch: breakers.epoch(),
            states: breakers.states().iter().map(|s| s.name()).collect(),
        }
    }

    /// Render as a JSON object (shared by `/metrics` and `/healthz`).
    pub fn render(&self, out: &mut String) {
        out.push_str("{\"trips\":");
        out.push_str(&self.trips.to_string());
        out.push_str(",\"recoveries\":");
        out.push_str(&self.recoveries.to_string());
        out.push_str(",\"health_epoch\":");
        out.push_str(&self.health_epoch.to_string());
        out.push_str(",\"states\":[");
        for (i, s) in self.states.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(s);
            out.push('"');
        }
        out.push_str("]}");
    }
}

impl Metrics {
    /// Cache hit rate in `[0, 1]` (0 when no search has been served).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Relaxed);
        let misses = self.cache_misses.load(Relaxed);
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Render the `/metrics` JSON document. The epochs and cache
    /// occupancy come from the server (they live outside the counter
    /// set): `epoch` is the domains epoch, `corpus_epoch` the live
    /// corpus's.
    pub fn render(
        &self,
        epoch: u64,
        corpus_epoch: u64,
        cache_entries: usize,
        cache_capacity: usize,
        shards: &ShardStats,
        breakers: &BreakerStats,
    ) -> String {
        let c = |a: &AtomicU64| a.load(Relaxed).to_string();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"requests\":{\"search\":");
        out.push_str(&c(&self.search_requests));
        out.push_str(",\"healthz\":");
        out.push_str(&c(&self.healthz_requests));
        out.push_str(",\"metrics\":");
        out.push_str(&c(&self.metrics_requests));
        out.push_str(",\"reload\":");
        out.push_str(&c(&self.reload_requests));
        out.push_str(",\"client_errors\":");
        out.push_str(&c(&self.client_errors));
        out.push_str("},\"shed_total\":");
        out.push_str(&c(&self.shed_total));
        out.push_str(",\"serving\":{\"connections\":");
        out.push_str(&c(&self.connections));
        out.push_str(",\"keepalive_reuses\":");
        out.push_str(&c(&self.keepalive_reuses));
        out.push_str(",\"pipelined_requests\":");
        out.push_str(&c(&self.pipelined_requests));
        out.push_str(",\"batch_requests\":");
        out.push_str(&c(&self.batch_requests));
        out.push_str(",\"batch_queries\":");
        out.push_str(&c(&self.batch_queries));
        out.push_str("},\"tail\":{\"partial_responses\":");
        out.push_str(&c(&self.partial_responses));
        out.push_str(",\"hedges\":");
        out.push_str(&c(&self.hedges));
        out.push_str(",\"hedge_wins\":");
        out.push_str(&c(&self.hedge_wins));
        out.push_str(",\"shard_panics\":");
        out.push_str(&c(&self.shard_panics));
        out.push_str(",\"worker_panics\":");
        out.push_str(&c(&self.worker_panics));
        out.push_str(",\"workers_resurrected\":");
        out.push_str(&c(&self.workers_resurrected));
        out.push_str(",\"shed_slow_client\":");
        out.push_str(&c(&self.shed_slow_client));
        out.push_str(",\"breakers\":");
        breakers.render(&mut out);
        out.push_str("},\"cache\":{\"hits\":");
        out.push_str(&c(&self.cache_hits));
        out.push_str(",\"misses\":");
        out.push_str(&c(&self.cache_misses));
        out.push_str(",\"hit_rate\":");
        json::push_f64(&mut out, (self.hit_rate() * 1e4).round() / 1e4);
        out.push_str(",\"entries\":");
        out.push_str(&cache_entries.to_string());
        out.push_str(",\"capacity\":");
        out.push_str(&cache_capacity.to_string());
        out.push_str("},\"reload\":{\"ok\":");
        out.push_str(&c(&self.reload_ok));
        out.push_str(",\"failed\":");
        out.push_str(&c(&self.reload_failed));
        out.push_str(",\"epoch\":");
        out.push_str(&epoch.to_string());
        out.push_str("},\"ingest\":{\"requests\":");
        out.push_str(&c(&self.ingest_requests));
        out.push_str(",\"ops\":");
        out.push_str(&c(&self.ingest_ops));
        out.push_str(",\"corpus_epoch\":");
        out.push_str(&corpus_epoch.to_string());
        out.push_str("},\"corpus\":");
        shards.render(&mut out);
        out.push_str(",\"compaction\":{\"requests\":");
        out.push_str(&c(&self.compact_requests));
        out.push_str(",\"ok\":");
        out.push_str(&c(&self.compact_ok));
        out.push_str(",\"failed\":");
        out.push_str(&c(&self.compact_failed));
        out.push_str(",\"pause_us\":");
        self.compaction_pause.render(&mut out);
        out.push_str("},\"latency_us\":{\"expansion\":");
        self.expansion.render(&mut out);
        out.push_str(",\"detection\":");
        self.detection.render(&mut out);
        out.push_str(",\"match\":");
        self.match_phase.render(&mut out);
        out.push_str(",\"rank\":");
        self.rank_phase.render(&mut out);
        out.push_str(",\"total\":");
        self.total.render(&mut out);
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0, "empty histogram");
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 100_000);
        // p50 of {1,2,3,100,1000,100000}: the 3rd sample (3µs) lives in
        // bucket [2,4) whose upper bound is 4.
        assert_eq!(h.quantile_us(0.5), 4);
        // p99 → the max sample's bucket, clamped by the exact max.
        assert_eq!(h.quantile_us(0.99), 100_000);
        assert!(h.mean_us() > 0.0);
        // Sub-microsecond samples land in bucket 0 without panicking.
        h.record(Duration::from_nanos(10));
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn render_is_valid_shaped_json() {
        let m = Metrics::default();
        m.search_requests.fetch_add(3, Relaxed);
        m.cache_hits.fetch_add(1, Relaxed);
        m.cache_misses.fetch_add(2, Relaxed);
        m.total.record(Duration::from_micros(250));
        m.ingest_ops.fetch_add(5, Relaxed);
        let shards = ShardStats {
            postings_bytes: vec![4096, 1024, 1024, 2048],
            zero_copy: true,
        };
        m.partial_responses.fetch_add(2, Relaxed);
        m.hedges.fetch_add(4, Relaxed);
        let breakers = BreakerStats {
            trips: 1,
            recoveries: 1,
            health_epoch: 3,
            states: vec!["closed", "open"],
        };
        let doc = m.render(7, 9, 2, 512, &shards, &breakers);
        for needle in [
            "\"requests\":{\"search\":3",
            "\"shed_total\":0",
            "\"serving\":{\"connections\":0,\"keepalive_reuses\":0,\"pipelined_requests\":0,\"batch_requests\":0,\"batch_queries\":0}",
            "\"tail\":{\"partial_responses\":2,\"hedges\":4,\"hedge_wins\":0",
            "\"worker_panics\":0,\"workers_resurrected\":0,\"shed_slow_client\":0",
            "\"breakers\":{\"trips\":1,\"recoveries\":1,\"health_epoch\":3,\"states\":[\"closed\",\"open\"]}",
            "\"hit_rate\":0.3333",
            "\"epoch\":7",
            "\"entries\":2",
            "\"ingest\":{\"requests\":0,\"ops\":5,\"corpus_epoch\":9}",
            "\"corpus\":{\"shards\":4,\"postings_bytes\":[4096,1024,1024,2048]",
            "\"skew_max_over_mean\":2",
            "\"zero_copy\":true",
            "\"compaction\":{\"requests\":0,\"ok\":0,\"failed\":0,\"pause_us\":{\"count\":0",
            "\"latency_us\":{\"expansion\":{\"count\":0",
            "\"match\":{\"count\":0",
            "\"rank\":{\"count\":0",
            "\"p99_us\":",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
