//! The sharded, epoch-keyed LRU result cache.
//!
//! Keys are `(normalized query, domains epoch, corpus epoch, health
//! epoch)` tuples: the domains epoch comes from the same
//! [`SharedEsharp`](esharp_core::SharedEsharp) snapshot the response was
//! computed against (every reload attempt advances it), the corpus
//! epoch from the `LiveCorpus` snapshot (every ingested batch and every
//! compaction publish advances it), and the health epoch from the
//! per-shard circuit breakers (every breaker transition advances it) —
//! so an entry can only ever be hit by a request seeing the *same*
//! collection, degradation state, index contents, **and** shard-health
//! regime. Stale expansions, stale matches, and bodies computed while a
//! shard was dark are structurally impossible rather than merely
//! unlikely. (Partial bodies are additionally never inserted at all —
//! only complete answers are cacheable.) Entries from dead epochs age
//! out through ordinary LRU pressure; no explicit invalidation pass is
//! needed.
//!
//! Sharding bounds contention: a key maps to one of [`SHARDS`] mutexed
//! maps, so concurrent workers serialize only when they touch the same
//! shard. Recency is tracked with a per-shard monotonic tick; eviction
//! scans the full shard for the minimum tick, which is O(shard size) but
//! runs only on insertion into a full shard — for the few-thousand-entry
//! caches this serves, that is noise against a search.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: `(normalized query, domains epoch, corpus epoch,
/// breaker health epoch)`.
pub type CacheKey = (String, u64, u64, u64);

/// Shard count (fixed; keys hash across shards).
pub const SHARDS: usize = 8;

#[derive(Debug)]
struct Entry {
    body: Arc<Vec<u8>>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// A sharded LRU over rendered response bodies.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget; 0 disables the cache entirely.
    shard_capacity: usize,
}

impl ResultCache {
    /// A cache holding about `capacity` bodies in total. `capacity = 0`
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS),
        }
    }

    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let index = (hasher.finish() as usize) % SHARDS;
        self.shards[index].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The cached body for `key`, refreshing its recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if self.shard_capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key);
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(key)?;
        entry.tick = tick;
        Some(Arc::clone(&entry.body))
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// of its shard when the shard is at capacity.
    pub fn insert(&self, key: CacheKey, body: Arc<Vec<u8>>) {
        if self.shard_capacity == 0 {
            return;
        }
        let capacity = self.shard_capacity;
        let mut shard = self.shard(&key);
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= capacity {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(key, Entry { body, tick });
    }

    /// Total entries across all shards (for `/metrics`).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured total capacity (rounded up to a shard multiple).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARDS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hits_are_exact_on_query_and_all_epochs() {
        let cache = ResultCache::new(64);
        cache.insert(("49ers".into(), 0, 0, 0), body("epoch0"));
        assert_eq!(*cache.get(&("49ers".into(), 0, 0, 0)).unwrap(), b"epoch0");
        // Same query, newer domains epoch: a different key entirely.
        assert!(cache.get(&("49ers".into(), 1, 0, 0)).is_none());
        // Same query, newer corpus epoch (an ingest or compaction
        // published): also a different key.
        assert!(cache.get(&("49ers".into(), 0, 1, 0)).is_none());
        // Same query, newer breaker health epoch (a shard tripped or
        // recovered): also a different key.
        assert!(cache.get(&("49ers".into(), 0, 0, 1)).is_none());
        assert!(cache.get(&("niners".into(), 0, 0, 0)).is_none());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(("q".into(), 0, 0, 0), body("x"));
        assert!(cache.get(&("q".into(), 0, 0, 0)).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_per_shard() {
        // One-entry shards make recency observable deterministically.
        let cache = ResultCache::new(SHARDS);
        assert_eq!(cache.shard_capacity, 1);
        // Find two keys in the same shard.
        let in_shard = |k: &CacheKey| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() as usize) % SHARDS
        };
        let a: CacheKey = ("a".into(), 0, 0, 0);
        let mut n = 0u64;
        let b = loop {
            let candidate: CacheKey = (format!("b{n}"), 0, 0, 0);
            if in_shard(&candidate) == in_shard(&a) {
                break candidate;
            }
            n += 1;
        };
        cache.insert(a.clone(), body("A"));
        cache.insert(b.clone(), body("B"));
        assert!(cache.get(&a).is_none(), "A was the LRU victim");
        assert_eq!(*cache.get(&b).unwrap(), b"B");
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let cache = ResultCache::new(SHARDS);
        let key: CacheKey = ("q".into(), 3, 1, 0);
        cache.insert(key.clone(), body("one"));
        cache.insert(key.clone(), body("two"));
        assert_eq!(*cache.get(&key).unwrap(), b"two");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(ResultCache::new(128));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let key = (format!("q{}", i % 40), i % 3, i % 2, i % 2);
                        if let Some(hit) = cache.get(&key) {
                            assert_eq!(*hit, format!("body{}:{}", i % 40, i % 3).into_bytes());
                        } else {
                            cache.insert(
                                key.clone(),
                                Arc::new(format!("body{}:{}", i % 40, i % 3).into_bytes()),
                            );
                        }
                        let _ = t;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity());
    }
}
