//! The acceptor/dispatcher: one thread, one [`Poller`], every socket.
//!
//! The loop owns all socket I/O. It accepts nonblocking connections,
//! reads and incrementally parses requests into each connection's
//! bounded pipeline, dispatches one request per connection at a time to
//! the worker pool through the bounded admission [`Queue`], and writes
//! rendered responses back as sockets allow. Workers never touch a
//! socket: they return [`Completion`]s through a shared vector and wake
//! the loop via the self-pipe ([`crate::poller::Wakeup`]).
//!
//! Admission control moved with the dispatch point: a queue-full
//! rejection now sheds the *request* (inline `503` + `Retry-After`),
//! not the connection — a persistent client keeps its connection and
//! retries on it, which is the whole point of `Retry-After`
//! (ROBUSTNESS.md §6 carries over, minus the connection funeral).
//!
//! Close semantics:
//! * `Connection: close` (or HTTP/1.0) closes after that request's
//!   response — later pipelined requests are dropped, per RFC.
//! * Protocol errors poison the connection: prior pipelined responses
//!   flush first, then the error response (`400`/`413`/`431`), then a
//!   half-close + drain so the response survives the client's unsent
//!   bytes, then close.
//! * A worker that dies at the unguarded `serve:conn` seam aborts the
//!   connection without a response (the supervisor reports the orphaned
//!   job; the client sees a clean EOF — exactly the PR 8 contract).
//! * Idle keep-alive connections are reaped after
//!   `keep_alive_timeout`; so are clients that stop draining responses
//!   (counted `shed_slow_client`).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::conn::Conn;
use crate::http::{self, RequestError};
use crate::poller::{PollEvent, Poller, Wakeup};
use crate::server::{Completion, Job, Queue, State};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const LISTENER_TOKEN: u64 = 0;
const WAKEUP_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Poll tick: the upper bound on shutdown/sweep latency.
const TICK_MS: i32 = 100;
/// How long a poisoned connection waits for the client's EOF before
/// closing anyway.
const DRAIN_GRACE: Duration = Duration::from_millis(250);

/// Everything the loop thread needs, bundled for the spawn call.
pub(crate) struct LoopContext {
    pub(crate) listener: TcpListener,
    pub(crate) state: Arc<State>,
    pub(crate) queue: Arc<Queue>,
    pub(crate) completions: Arc<Mutex<Vec<Completion>>>,
    pub(crate) wakeup: Arc<Wakeup>,
    pub(crate) stop: Arc<AtomicBool>,
}

/// Run the loop until `stop` is set (the error arm only fires when the
/// poller itself fails, which means the process is out of descriptors —
/// there is nothing useful left to serve).
pub(crate) fn run(ctx: LoopContext) {
    let _ = run_inner(ctx);
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    state: Arc<State>,
    queue: Arc<Queue>,
    completions: Arc<Mutex<Vec<Completion>>>,
    wakeup: Arc<Wakeup>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    max_depth: usize,
}

fn run_inner(ctx: LoopContext) -> io::Result<()> {
    let LoopContext {
        listener,
        state,
        queue,
        completions,
        wakeup,
        stop,
    } = ctx;
    listener.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(
        listener.as_raw_fd(),
        LISTENER_TOKEN,
        crate::poller::Interest::Read,
    )?;
    poller.register(wakeup.fd(), WAKEUP_TOKEN, crate::poller::Interest::Read)?;
    let max_depth = state.config.max_pipeline_depth.max(1);
    let mut el = EventLoop {
        poller,
        listener,
        state,
        queue,
        completions,
        wakeup,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        max_depth,
    };
    let mut events: Vec<PollEvent> = Vec::new();
    while !stop.load(SeqCst) {
        el.poller.wait(&mut events, TICK_MS)?;
        if stop.load(SeqCst) {
            return Ok(());
        }
        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => el.accept_ready(),
                WAKEUP_TOKEN => {
                    el.wakeup.drain();
                    el.drain_completions();
                }
                token => {
                    if ev.error && !ev.readable {
                        el.destroy(token);
                        continue;
                    }
                    el.pump(token);
                }
            }
        }
        // Completions can land while we're handling socket events; a
        // notify written after our drain is caught by the next wait, but
        // sweeping here keeps the common case one tick shorter.
        el.drain_completions();
        el.sweep(Instant::now());
    }
    Ok(())
}

impl EventLoop {
    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient accept errors (EMFILE, aborted handshakes):
                // stop for this event, the next readiness retries.
                Err(_) => return,
            };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Pipelined responses are small and latency-sensitive; never
            // let Nagle sit on them.
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            self.state.metrics.connections.fetch_add(1, SeqCst);
            let conn = Conn::new(stream, Instant::now());
            self.conns.insert(token, conn);
            // The client's first request may already be buffered; pump
            // now instead of waiting a tick.
            self.pump(token);
        }
    }

    /// Drive one connection as far as its socket and the worker pool
    /// allow: flush, read+parse, dispatch, flush again, then settle
    /// close/interest bookkeeping.
    fn pump(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.draining {
            match conn.discard() {
                Ok(true) => self.destroy(token),
                Ok(false) => {}
                Err(_) => self.destroy(token),
            }
            return;
        }
        if conn.has_output() && conn.flush().is_err() {
            self.destroy(token);
            return;
        }
        if conn.wants_read(self.max_depth) {
            match conn.fill_and_parse(&self.state.limits, self.max_depth) {
                Ok(stats) => {
                    if stats.pipelined > 0 {
                        self.state
                            .metrics
                            .pipelined_requests
                            .fetch_add(stats.pipelined as u64, SeqCst);
                    }
                }
                Err(RequestError::Io(_)) => {
                    self.destroy(token);
                    return;
                }
                Err(err) => {
                    self.state.metrics.client_errors.fetch_add(1, SeqCst);
                    conn.poison = Some(poison_response(&err));
                }
            }
        }
        self.advance(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.has_output() && conn.flush().is_err() {
            self.destroy(token);
            return;
        }
        self.settle(token);
    }

    /// Dispatch the connection's next request (at most one in flight per
    /// connection, so responses stay in request order), shedding inline
    /// when the admission queue is full, and queueing the poison
    /// response once the pipeline is empty.
    fn advance(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.executing.is_some() || conn.close_after_flush {
                return;
            }
            if let Some(request) = conn.pending.pop_front() {
                conn.served += 1;
                if conn.served > 1 {
                    self.state.metrics.keepalive_reuses.fetch_add(1, SeqCst);
                }
                let close = request.close;
                let attempt = self.state.job_attempts.fetch_add(1, SeqCst);
                let admitted = self.queue.try_push(Job {
                    token,
                    request,
                    attempt,
                });
                if admitted {
                    conn.executing = Some(close);
                    return;
                }
                // Queue full: shed the request, keep the connection
                // (unless the client asked to close).
                self.state.metrics.shed_total.fetch_add(1, SeqCst);
                let body: &[u8] = b"{\"error\":\"overloaded\",\"shed\":true}";
                let bytes = http::render_response(
                    503,
                    &[("retry-after", "1")],
                    body,
                    close,
                );
                conn.queue_bytes(&bytes);
                if close {
                    conn.close_after_flush = true;
                    conn.pending.clear();
                    return;
                }
                // Loop: later pipelined requests get their own
                // shed/dispatch decision.
            } else if let Some(poison) = conn.poison.take() {
                conn.queue_bytes(&poison);
                conn.close_after_flush = true;
                // The client may still be mid-send of the bytes we
                // refused to parse; drain before closing so the error
                // response isn't torn down by an RST.
                conn.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                return;
            } else {
                return;
            }
        }
    }

    /// Post-I/O bookkeeping: close/drain transitions and poller
    /// interest reconciliation.
    fn settle(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_flush && !conn.has_output() {
            if conn.drain_deadline.is_some() && !conn.eof {
                // Error path: half-close, then read the client out.
                conn.draining = true;
                let _ = conn.stream.shutdown(std::net::Shutdown::Write);
            } else {
                self.destroy(token);
                return;
            }
        }
        if conn.eof && conn.idle() {
            self.destroy(token);
            return;
        }
        let desired = conn.desired_interest(self.max_depth);
        let fd = conn.stream.as_raw_fd();
        match (conn.registered, desired) {
            (None, None) => {}
            (None, Some(interest)) => {
                if self.poller.register(fd, token, interest).is_ok() {
                    conn.registered = Some(interest);
                } else {
                    self.destroy(token);
                }
            }
            (Some(_), None) => {
                let _ = self.poller.deregister(fd);
                conn.registered = None;
            }
            (Some(current), Some(interest)) => {
                if current != interest {
                    if self.poller.reregister(fd, token, interest).is_ok() {
                        conn.registered = Some(interest);
                    } else {
                        self.destroy(token);
                    }
                }
            }
        }
    }

    /// Apply worker completions: render and queue each response (or
    /// abort the connection when the worker died mid-job), then let the
    /// connection pump forward — a freed pipeline slot may parse and
    /// dispatch the next request immediately.
    fn drain_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut pending = self
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *pending)
        };
        for completion in batch {
            let token = completion.token;
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            match completion.response {
                None => {
                    // The worker died at an unguarded seam: the PR 8
                    // contract is a closed connection with no response.
                    self.destroy(token);
                    continue;
                }
                Some(response) => {
                    let requested_close = conn.executing.take().unwrap_or(false);
                    let close = response.close || requested_close || conn.eof;
                    let bytes = http::render_response(
                        response.status,
                        &response.headers,
                        &response.body,
                        close,
                    );
                    conn.queue_bytes(&bytes);
                    conn.last_activity = Instant::now();
                    if close {
                        conn.close_after_flush = true;
                        conn.pending.clear();
                        conn.poison = None;
                    }
                }
            }
            self.pump(token);
        }
    }

    /// Reap idle keep-alive connections, stalled writers, and draining
    /// connections past their grace period. Connections with a job on
    /// the worker pool are exempt — they're waiting on us, not us on
    /// them.
    fn sweep(&mut self, now: Instant) {
        let timeout = self.state.config.keep_alive_timeout;
        let mut doomed: Vec<(u64, bool)> = Vec::new();
        for (token, conn) in &self.conns {
            if conn.draining {
                if conn
                    .drain_deadline
                    .is_some_and(|deadline| now >= deadline)
                {
                    doomed.push((*token, false));
                }
                continue;
            }
            if conn.executing.is_some() {
                continue;
            }
            if now.duration_since(conn.last_activity) > timeout {
                doomed.push((*token, conn.has_output()));
            }
        }
        for (token, stalled_writer) in doomed {
            if stalled_writer {
                self.state.metrics.shed_slow_client.fetch_add(1, SeqCst);
            }
            self.destroy(token);
        }
    }

    fn destroy(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.registered.is_some() {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
        }
    }
}

/// Render the close-and-drain error response for a protocol error, with
/// the same bodies the blocking server answered (chaos_smoke pins them).
fn poison_response(err: &RequestError) -> Vec<u8> {
    let body = match err {
        RequestError::BodyTooLarge { declared, cap } => format!(
            "{{\"error\":\"request body too large\",\"declared\":{declared},\"cap\":{cap}}}"
        ),
        RequestError::HeadTooLarge { cap } => {
            format!("{{\"error\":\"request head too large\",\"cap\":{cap}}}")
        }
        _ => "{\"error\":\"malformed request\"}".to_string(),
    };
    http::render_response(err.status(), &[], body.as_bytes(), true)
}
