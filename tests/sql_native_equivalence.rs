//! The SQL-based clustering (Figure 4 on the relational engine) must
//! produce exactly the same partitions as the native 3-step algorithm —
//! on the real pipeline graph and on randomized graphs, serial and
//! parallel, broadcast and co-partitioned.

use esharp_community::{cluster_parallel, cluster_sql, ParallelConfig, SqlClusterConfig};
use esharp_eval::{EvalScale, Testbed};
use esharp_graph::MultiGraph;
use esharp_relation::JoinStrategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_multigraph(seed: u64, nodes: usize, edges: usize) -> MultiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw: Vec<(u32, u32, u64)> = (0..edges)
        .map(|_| {
            (
                rng.gen_range(0..nodes as u32),
                rng.gen_range(0..nodes as u32),
                rng.gen_range(1..5),
            )
        })
        .collect();
    MultiGraph::from_edges(nodes, raw)
}

#[test]
fn equivalence_on_random_graphs() {
    for seed in 0..8 {
        let graph = random_multigraph(seed, 40, 120);
        let native = cluster_parallel(&graph, &ParallelConfig::default());
        let sql = cluster_sql(&graph, &SqlClusterConfig::default()).unwrap();
        assert_eq!(
            native.assignment, sql.assignment,
            "assignment mismatch on seed {seed}"
        );
        assert_eq!(native.trace, sql.trace, "trace mismatch on seed {seed}");
    }
}

#[test]
fn equivalence_on_the_pipeline_graph() {
    let tb = Testbed::build(EvalScale::Tiny, 201);
    let graph = &tb.artifacts.multigraph;
    let native = cluster_parallel(graph, &ParallelConfig::default());
    let sql = cluster_sql(graph, &SqlClusterConfig::default()).unwrap();
    assert_eq!(native.assignment, sql.assignment);
}

#[test]
fn join_strategy_and_parallelism_do_not_change_results() {
    let graph = random_multigraph(42, 60, 200);
    let reference = cluster_sql(&graph, &SqlClusterConfig::default()).unwrap();
    for workers in [1, 4] {
        for strategy in [JoinStrategy::Broadcast, JoinStrategy::CoPartitioned] {
            let out = cluster_sql(
                &graph,
                &SqlClusterConfig {
                    workers,
                    join_strategy: strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                out.assignment, reference.assignment,
                "mismatch with workers={workers}, strategy={strategy:?}"
            );
        }
    }
}

#[test]
fn native_parallel_workers_agree_with_serial() {
    let graph = random_multigraph(7, 80, 300);
    let serial = cluster_parallel(
        &graph,
        &ParallelConfig {
            workers: 1,
            ..Default::default()
        },
    );
    let parallel = cluster_parallel(
        &graph,
        &ParallelConfig {
            workers: 8,
            ..Default::default()
        },
    );
    assert_eq!(serial.assignment, parallel.assignment);
    assert_eq!(serial.trace, parallel.trace);
}
