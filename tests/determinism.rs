//! Everything in the pipeline is seeded; two builds with the same seeds
//! must agree bit for bit, and different seeds must actually differ.

use esharp_eval::{EvalScale, Testbed};

#[test]
fn same_seed_same_world_same_results() {
    let a = Testbed::build(EvalScale::Tiny, 301);
    let b = Testbed::build(EvalScale::Tiny, 301);

    assert_eq!(a.world.terms.len(), b.world.terms.len());
    assert_eq!(a.log.records, b.log.records);
    assert_eq!(
        a.artifacts.outcome.assignment, b.artifacts.outcome.assignment,
        "clustering diverged across identical builds"
    );
    assert_eq!(a.artifacts.outcome.trace, b.artifacts.outcome.trace);
    assert_eq!(a.esharp.domains().len(), b.esharp.domains().len());

    for query in ["49ers", "diabetes", "dow futures", "football"] {
        let ra = a.esharp.search(&a.corpus, query);
        let rb = b.esharp.search(&b.corpus, query);
        assert_eq!(ra.expansion, rb.expansion, "{query}: expansions differ");
        assert_eq!(ra.experts, rb.experts, "{query}: rankings differ");
    }
}

#[test]
fn different_seeds_differ() {
    let a = Testbed::build(EvalScale::Tiny, 303);
    let b = Testbed::build(EvalScale::Tiny, 304);
    // Generated vocabulary differs (showcase terms are shared by design).
    let a_terms: Vec<&String> = a.world.terms.iter().map(|t| &t.text).collect();
    let b_terms: Vec<&String> = b.world.terms.iter().map(|t| &t.text).collect();
    assert_ne!(a_terms, b_terms);
}

#[test]
fn repeated_searches_are_stable() {
    let tb = Testbed::build(EvalScale::Tiny, 305);
    let first = tb.esharp.search(&tb.corpus, "49ers");
    for _ in 0..5 {
        let again = tb.esharp.search(&tb.corpus, "49ers");
        assert_eq!(first.experts, again.experts);
        assert_eq!(first.matched_tweets, again.matched_tweets);
    }
}
