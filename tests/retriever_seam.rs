//! The §7.1 pluggability claim: e# "can work with any Expertise Retrieval
//! system". Swap the ranking strategy behind the expansion and verify the
//! seam behaves.

use esharp_core::{ExpertiseRetriever, FrequencyRetriever, PalCountsRetriever};
use esharp_eval::{Crowd, EvalScale, Testbed};

#[test]
fn default_search_equals_pal_counts_through_the_seam() {
    let tb = Testbed::build(EvalScale::Tiny, 701);
    let retriever = PalCountsRetriever::new(tb.config.detector.clone());
    for query in ["49ers", "diabetes", "football"] {
        let via_seam = tb.esharp.search_with(&tb.corpus, query, &retriever);
        let direct = tb.esharp.search(&tb.corpus, query);
        assert_eq!(via_seam.experts, direct.experts, "{query}");
        assert_eq!(via_seam.matched_tweets, direct.matched_tweets);
    }
}

#[test]
fn frequency_retriever_plugs_in_but_ranks_worse() {
    let tb = Testbed::build(EvalScale::Small, 703);
    let pal = PalCountsRetriever::new(tb.config.detector.clone());
    let freq = FrequencyRetriever::default();

    let queries = ["49ers", "diabetes", "dow futures", "bluetooth speakers"];
    let mut pal_rel = 0usize;
    let mut pal_tot = 0usize;
    let mut freq_rel = 0usize;
    let mut freq_tot = 0usize;
    for query in queries {
        let a = tb.esharp.search_with(&tb.corpus, query, &pal);
        let b = tb.esharp.search_with(&tb.corpus, query, &freq);
        // Same expansion and match set — only the ranking differs.
        assert_eq!(a.expansion, b.expansion);
        assert_eq!(a.matched_tweets, b.matched_tweets);
        for e in &a.experts {
            pal_tot += 1;
            if Crowd::ground_truth(&tb.world, &tb.corpus, query, e.user) {
                pal_rel += 1;
            }
        }
        for e in &b.experts {
            freq_tot += 1;
            if Crowd::ground_truth(&tb.world, &tb.corpus, query, e.user) {
                freq_rel += 1;
            }
        }
    }
    let pal_precision = pal_rel as f64 / pal_tot.max(1) as f64;
    let freq_precision = freq_rel as f64 / freq_tot.max(1) as f64;
    // The specialization-aware detector should beat raw volume; allow a
    // tie, never a collapse of the seam itself.
    assert!(
        pal_precision >= freq_precision - 0.05,
        "Pal&Counts {pal_precision:.2} vs frequency {freq_precision:.2}"
    );
    assert!(freq_tot > 0, "frequency retriever returned nothing at all");
}

#[test]
fn retriever_names_are_stable_identifiers() {
    let retrievers: Vec<Box<dyn ExpertiseRetriever>> = vec![
        Box::new(PalCountsRetriever::default()),
        Box::new(FrequencyRetriever::default()),
    ];
    let names: Vec<&str> = retrievers.iter().map(|r| r.name()).collect();
    assert_eq!(names, vec!["pal-counts", "frequency"]);
}
