//! Every experiment module runs end to end at Tiny scale and produces
//! structurally sane, renderable output.

use esharp_eval::experiments::{ablation, figures, recall_precision, runs, tables};
use esharp_eval::{CrowdConfig, EvalScale, Testbed};

fn testbed() -> Testbed {
    Testbed::build(EvalScale::Tiny, 401)
}

#[test]
fn fig5_fig6_fig7_produce_paper_shapes() {
    let tb = testbed();

    let f5 = figures::fig5(&tb);
    assert!(f5.points.len() >= 2);
    assert!(f5.points[0].1 >= f5.points.last().unwrap().1);
    assert!(f5.render().contains("Figure 5"));

    let f6 = figures::fig6(&tb);
    assert_eq!(
        f6.histogram.total(),
        tb.artifacts.outcome.assignment.num_communities()
    );
    let share_sum: f64 = f6.shares.iter().sum();
    assert!((share_sum - 1.0).abs() < 1e-9);
    assert!(f6.render().contains("2 to 10"));

    let f7 = figures::fig7(&tb, "49ers", 3).expect("49ers must be clustered");
    assert!(f7.seed.members.iter().any(|m| m == "49ers"));
    assert!(!f7.neighbors.is_empty());
    assert!(f7.render().contains("49ers"));
}

#[test]
fn table1_and_examples_render() {
    let tb = testbed();
    let t1 = tables::table1(&tb);
    assert_eq!(t1.sets.len(), 6);
    assert!(t1.render().contains("Top 250"));

    let examples = tables::example_tables(&tb, 3);
    assert_eq!(examples.entries.len(), 6);
    let rendered = examples.render();
    assert!(rendered.contains("49ers"));
    assert!(rendered.contains("e#"));
}

#[test]
fn table8_and_fig8_are_consistent() {
    let tb = testbed();
    let set_runs = runs::run_all_sets(&tb);
    let t8 = tables::table8(&set_runs);
    assert_eq!(t8.rows.len(), 6);
    for row in &t8.rows {
        assert!((0.0..=1.0).contains(&row.baseline));
        assert!((0.0..=1.0).contains(&row.esharp));
        assert!(row.esharp >= row.baseline - 1e-12, "{row:?}");
    }

    let f8 = recall_precision::fig8(&set_runs);
    for (set, baseline, esharp) in &f8.curves {
        assert_eq!(baseline.len(), 15);
        // Coverage (n=1 point of the curve) must match Table 8.
        let row = t8.rows.iter().find(|r| &r.set == set).unwrap();
        assert!((baseline[1] / 100.0 - row.baseline).abs() < 1e-9);
        assert!((esharp[1] / 100.0 - row.esharp).abs() < 1e-9);
        // Curves are non-increasing in n and e# dominates the baseline.
        for pair in esharp.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        for (b, e) in baseline.iter().zip(esharp) {
            assert!(e >= b, "{set}: e# curve dips below the baseline");
        }
    }
}

#[test]
fn fig9_threshold_sweep_is_monotone() {
    let tb = testbed();
    let f9 = recall_precision::fig9(&tb);
    assert!(f9.points.len() >= 10);
    for pair in f9.points.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-9, "baseline not monotone");
        assert!(pair[1].2 <= pair[0].2 + 1e-9, "e# not monotone");
    }
    // e# dominates at the loose end of the sweep and on average. (At high
    // thresholds both curves approach zero and may cross: expansion grows
    // the candidate pool the z-scores are normalized over.)
    let first = f9.points.first().unwrap();
    assert!(first.2 >= first.1 - 1e-9, "e# below baseline at z=0");
    let mean_baseline: f64 =
        f9.points.iter().map(|p| p.1).sum::<f64>() / f9.points.len() as f64;
    let mean_esharp: f64 =
        f9.points.iter().map(|p| p.2).sum::<f64>() / f9.points.len() as f64;
    assert!(mean_esharp >= mean_baseline - 1e-9);
    assert!(f9.render().contains("Figure 9"));
}

#[test]
fn fig10_impurity_is_bounded_and_close_between_algorithms() {
    let tb = testbed();
    let f10 = recall_precision::fig10(&tb, &CrowdConfig::default());
    assert_eq!(f10.curves.len(), 6);
    let mut gaps = Vec::new();
    for (_, baseline, esharp) in &f10.curves {
        for &(avg, impurity) in baseline.iter().chain(esharp) {
            assert!(avg >= 0.0);
            assert!((0.0..=1.0).contains(&impurity));
        }
        // Compare impurity at the loosest threshold (first point).
        if let (Some(b), Some(e)) = (baseline.first(), esharp.first()) {
            gaps.push((e.1 - b.1).abs());
        }
    }
    // "The difference between the algorithms is very subtle": mean gap
    // bounded.
    let mean_gap: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!(mean_gap < 0.3, "impurity gap too large: {mean_gap}");
}

#[test]
fn table9_reports_all_stages() {
    let tb = testbed();
    let queries: Vec<String> = tables::SHOWCASE_QUERIES.iter().map(|s| s.to_string()).collect();
    let t9 = tables::table9(&tb, &queries);
    assert_eq!(t9.offline.len(), 2);
    assert_eq!(t9.offline[0].0, "extraction");
    assert_eq!(t9.offline[1].0, "clustering");
    // Table 9 ordering: raw log in ≫ graph out; expansion ≪ detection is
    // not guaranteed at tiny scale, but both are interactive.
    assert!(t9.offline[0].3 > t9.offline[0].4);
    assert!(t9.expansion_avg.as_millis() < 100);
    assert!(t9.detection_avg.as_secs() < 1);
    assert!(t9.render().contains("Table 9"));
}

#[test]
fn ablations_run() {
    let tb = testbed();
    let scores = ablation::backend_comparison(&tb);
    assert_eq!(scores.len(), 5);
    let sql = scores.iter().find(|s| s.backend == "Sql").unwrap();
    let parallel = scores.iter().find(|s| s.backend == "Parallel").unwrap();
    assert!((sql.nmi - parallel.nmi).abs() < 1e-9, "SQL ≠ native quality");
    for s in &scores {
        assert!((0.0..=1.0).contains(&s.nmi), "{s:?}");
        assert!(s.communities > 0);
    }
    assert!(ablation::render_backend_comparison(&scores).contains("NMI"));

    let queries: Vec<String> = tables::SHOWCASE_QUERIES.iter().map(|s| s.to_string()).collect();
    let filter = ablation::filter_ablation(&tb, &queries);
    assert!(
        filter.experts_with <= filter.experts_without,
        "the precision filter must not increase recall"
    );
    assert!(ablation::render_filter_ablation(&filter).contains("filter"));

    let support = ablation::support_ablation(&tb, &[1, 10, 40]);
    assert_eq!(support.len(), 3);
    for pair in support.windows(2) {
        assert!(
            pair[1].queries_kept <= pair[0].queries_kept,
            "higher support must not keep more queries"
        );
        assert!(pair[1].graph_edges <= pair[0].graph_edges);
    }
    assert!(ablation::render_support_ablation(&support).contains("Min support"));
}
