//! End-to-end integration: world → log → offline pipeline → corpus →
//! online search, validated against ground truth. Exercises every crate
//! in one flow.

use esharp_eval::{EvalScale, Testbed};

#[test]
fn full_pipeline_improves_recall_without_losing_precision() {
    let tb = Testbed::build(EvalScale::Small, 101);
    let runs = esharp_eval::experiments::runs::run_all_sets(&tb);
    let table8 = esharp_eval::experiments::tables::table8(&runs);

    // The paper's headline (Table 8): e# answers at least as many queries
    // as the baseline on every set, and strictly more overall.
    let mut strictly_better = 0;
    for row in &table8.rows {
        assert!(
            row.esharp >= row.baseline - 1e-12,
            "{}: e# coverage {} < baseline {}",
            row.set,
            row.esharp,
            row.baseline
        );
        if row.esharp > row.baseline {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 2,
        "expansion never helped: {:?}",
        table8.rows
    );

    // Precision check against ground truth: among returned experts for the
    // showcase queries, e#'s precision stays close to the baseline's
    // ("the accuracy penalty incurred by e# is minimal").
    let queries: Vec<String> = esharp_eval::experiments::tables::SHOWCASE_QUERIES
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut base_rel = 0usize;
    let mut base_tot = 0usize;
    let mut exp_rel = 0usize;
    let mut exp_tot = 0usize;
    for q in &queries {
        for e in &tb.esharp.search_baseline(&tb.corpus, q).experts {
            base_tot += 1;
            if esharp_eval::Crowd::ground_truth(&tb.world, &tb.corpus, q, e.user) {
                base_rel += 1;
            }
        }
        for e in &tb.esharp.search(&tb.corpus, q).experts {
            exp_tot += 1;
            if esharp_eval::Crowd::ground_truth(&tb.world, &tb.corpus, q, e.user) {
                exp_rel += 1;
            }
        }
    }
    assert!(exp_tot >= base_tot, "expansion returned fewer experts");
    let base_precision = base_rel as f64 / base_tot.max(1) as f64;
    let exp_precision = exp_rel as f64 / exp_tot.max(1) as f64;
    assert!(
        exp_precision >= base_precision - 0.25,
        "precision collapsed: baseline {base_precision:.2} vs e# {exp_precision:.2}"
    );
}

#[test]
fn offline_trace_converges_like_figure5() {
    let tb = Testbed::build(EvalScale::Small, 103);
    let trace = &tb.artifacts.outcome.trace;
    assert!(trace.len() >= 3, "expected several merge iterations");
    assert!(
        trace.len() <= 21,
        "did not converge within the iteration cap"
    );
    // Community count decreases fast then flattens (Figure 5's shape):
    // the first iteration removes more communities than the last.
    let drops: Vec<i64> = trace
        .windows(2)
        .map(|w| w[0].communities as i64 - w[1].communities as i64)
        .collect();
    assert!(drops.first().unwrap() > drops.last().unwrap());
    // Modularity ends above the singleton start.
    assert!(trace.last().unwrap().total_modularity > trace[0].total_modularity);
}

#[test]
fn expansion_recovers_variant_only_experts() {
    // The motivating scenario: an account that tweets `niners`
    // exclusively should be reachable from the query `49ers` only via
    // expansion.
    let tb = Testbed::build(EvalScale::Small, 105);
    let expanded = tb.esharp.search(&tb.corpus, "49ers");
    assert!(
        expanded.expansion.iter().any(|t| t == "niners"),
        "expansion missed the niners variant: {:?}",
        expanded.expansion
    );
    let baseline = tb.esharp.search_baseline(&tb.corpus, "49ers");
    assert!(expanded.matched_tweets > baseline.matched_tweets);
}

#[test]
fn domain_collection_survives_serialization() {
    let tb = Testbed::build(EvalScale::Tiny, 107);
    let json = serde_json::to_string(tb.esharp.domains()).unwrap();
    let back: esharp_core::DomainCollection = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), tb.esharp.domains().len());
    assert_eq!(
        back.lookup("49ers").map(<[String]>::len),
        tb.esharp.domains().lookup("49ers").map(<[String]>::len)
    );
}
