//! The paper's central engineering claim is that the offline pipeline is
//! expressible in a SQL-like declarative language (§4.2.2). These tests
//! run pieces of the pipeline *as SQL* on the bundled engine and compare
//! against the native implementations.

use esharp_graph::relation_io::{graph_to_table, log_to_table};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};
use esharp_relation::{run_sql, Catalog, ExecContext, Value};

fn inputs() -> (World, AggregatedLog) {
    let world = World::generate(&WorldConfig::tiny(501));
    let log = AggregatedLog::from_events(
        LogGenerator::new(&world, &LogConfig::tiny(501)),
        world.terms.len(),
    );
    (world, log)
}

#[test]
fn support_filter_in_sql_matches_native() {
    let (world, log) = inputs();
    let min_support = 25u64;

    // Native path (§4.1).
    let (filtered, _) = log.filter_min_support(min_support);
    let native = log_to_table(&filtered, &world).unwrap();

    // SQL path: HAVING on the per-query click total, then re-join to keep
    // the surviving (query, url, clicks) rows.
    let catalog = Catalog::new();
    catalog.register("log", log_to_table(&log, &world).unwrap());
    let ctx = ExecContext::new(catalog);
    let totals = run_sql(
        &format!(
            "select query, sum(clicks) as total from log group by query \
             having total >= {min_support}"
        ),
        &ctx,
    )
    .unwrap();
    ctx.catalog.register("qualifying", totals);
    let via_sql = run_sql(
        "select l.query as query, l.url as url, l.clicks as clicks \
         from log l inner join qualifying q on q.query = l.query",
        &ctx,
    )
    .unwrap();

    assert_eq!(native.sorted_rows(), via_sql.sorted_rows());
}

#[test]
fn vocabulary_statistics_via_sql() {
    let (world, log) = inputs();
    let catalog = Catalog::new();
    catalog.register("log", log_to_table(&log, &world).unwrap());
    let ctx = ExecContext::new(catalog);

    // Distinct queries via SQL == native count.
    let queries = run_sql("select distinct query from log", &ctx).unwrap();
    assert_eq!(queries.num_rows(), log.num_terms());

    // Total clicks via SQL == raw event count.
    let totals = run_sql("select query, sum(clicks) as total from log group by query", &ctx)
        .unwrap();
    let sql_total: i64 = totals
        .iter_rows()
        .map(|r| r[1].as_int().unwrap())
        .sum();
    assert_eq!(sql_total as u64, log.raw_events);
}

#[test]
fn graph_table_top_neighbors_match_graph_structure() {
    let (world, log) = inputs();
    let (filtered, _) = log.filter_min_support(10);
    let (graph, _) = esharp_graph::build_graph(&filtered, &world, &Default::default());
    let catalog = Catalog::new();
    catalog.register("graph", graph_to_table(&graph).unwrap());
    let ctx = ExecContext::new(catalog);

    // For the 49ers node: the SQL top-neighbor equals the CSR max-weight
    // neighbor.
    let Some(node) = graph.node_by_label("49ers") else {
        panic!("49ers not in graph");
    };
    let best_native = graph
        .neighbors(node)
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|&(v, _)| graph.label(v).to_string())
        .expect("49ers has neighbors");
    let out = run_sql(
        "select query2, distance from graph where query1 = '49ers' \
         order by distance desc, query2 limit 1",
        &ctx,
    )
    .unwrap();
    assert_eq!(out.row(0)[0], Value::str(&best_native));
}

#[test]
fn union_all_reassembles_partitioned_tables() {
    let (world, log) = inputs();
    let catalog = Catalog::new();
    let table = log_to_table(&log, &world).unwrap();
    let parts = esharp_relation::exec::hash_partition(&table, &[0], 3);
    catalog.register("p0", parts[0].clone());
    catalog.register("p1", parts[1].clone());
    catalog.register("p2", parts[2].clone());
    catalog.register("whole", table.clone());
    let ctx = ExecContext::new(catalog);
    let reassembled = run_sql(
        "select query, url, clicks from p0 union all \
         select query, url, clicks from p1 union all \
         select query, url, clicks from p2",
        &ctx,
    )
    .unwrap();
    assert_eq!(reassembled.sorted_rows(), table.sorted_rows());
}
