//! Full persistence round trip: every artifact the weekly pipeline would
//! ship between runs (world, corpus, domain collection, similarity graph)
//! survives a save/load cycle and keeps producing identical answers.

use esharp_core::{DomainCollection, Esharp};
use esharp_eval::{EvalScale, Testbed};
use esharp_microblog::Corpus;
use esharp_querylog::World;

#[test]
fn pipeline_artifacts_round_trip_through_disk() {
    let tb = Testbed::build(EvalScale::Tiny, 601);
    let dir = std::env::temp_dir().join("esharp_persistence_test");
    let _ = std::fs::remove_dir_all(&dir);

    // Save all four artifacts.
    tb.world.save(dir.join("world.json")).unwrap();
    tb.corpus.save(dir.join("corpus.json")).unwrap();
    tb.esharp.domains().save(dir.join("domains.json")).unwrap();
    esharp_graph::io::save_graph(&tb.artifacts.graph, dir.join("graph.bin")).unwrap();

    // Reload and reassemble the online system from disk only.
    let world = World::load(dir.join("world.json")).unwrap();
    let corpus = Corpus::load(dir.join("corpus.json")).unwrap();
    let domains = DomainCollection::load(dir.join("domains.json")).unwrap();
    let graph = esharp_graph::io::load_graph(dir.join("graph.bin")).unwrap();
    let esharp = Esharp::new(domains, tb.config.clone());

    // Ground truth intact.
    assert_eq!(world.num_domains(), tb.world.num_domains());
    assert_eq!(world.term_id("49ers"), tb.world.term_id("49ers"));

    // Graph intact (nodes, edges, labels).
    assert_eq!(graph.num_nodes(), tb.artifacts.graph.num_nodes());
    assert_eq!(graph.num_edges(), tb.artifacts.graph.num_edges());
    assert_eq!(
        graph.node_by_label("49ers"),
        tb.artifacts.graph.node_by_label("49ers")
    );

    // Search results identical to the in-memory system.
    for query in ["49ers", "diabetes", "dow futures", "nonexistent topic"] {
        let fresh = esharp.search(&corpus, query);
        let original = tb.esharp.search(&tb.corpus, query);
        assert_eq!(fresh.expansion, original.expansion, "{query}");
        assert_eq!(fresh.experts, original.experts, "{query}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
