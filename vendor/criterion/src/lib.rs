//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the API subset the workspace's benches use —
//! `benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId::new`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop (warmup + median-of-samples reporting to
//! stdout). No statistical analysis, plots, or baselines: the repo's
//! committed numbers come from `esharp bench`, not from this harness.

use std::time::{Duration, Instant};

/// A benchmark label, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, like upstream.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Measures one closure: `iter` times the body over enough iterations
/// to dampen clock granularity.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last: Duration,
    samples: usize,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration duration.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs for
        // at least ~1ms so Instant resolution is negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        times.sort_unstable();
        self.last = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream-compatible knob;
    /// values below 5 are clamped up).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(5).min(100);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            last: Duration::ZERO,
            samples: self.samples,
        };
        f(&mut b);
        println!("{}/{}: median {:?}", self.name, id.label, b.last);
        self
    }

    /// Run one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _parent: self,
        }
    }
}

/// Collect bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
