//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! API-compatible with the subset the workspace uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, the `Rng` extension methods
//! (`gen_range` over integer/float ranges, `gen`, `gen_bool`) and
//! `seq::SliceRandom::shuffle`/`choose`. The generator is xoshiro256++
//! seeded through splitmix64 — deterministic per seed, not bit-compatible
//! with upstream `StdRng` (nothing in the repo depends on the upstream
//! stream, only on per-seed determinism).

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, span)` by rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Rejection zone to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    }
    // Spans over 2^64 never occur in practice; fall back to a wide draw.
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

/// The user-facing generator methods (blanket-implemented over
/// [`RngCore`], mirroring `rand`'s extension-trait design).
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A value from the type's standard distribution (`f64` in `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ (not
    /// bit-compatible with upstream `StdRng`; deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u128(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u128(rng, self.len() as u128) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "astronomically unlikely identity shuffle");
    }
}
