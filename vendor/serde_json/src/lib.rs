//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! A JSON printer and parser over the vendored `serde`'s [`Value`] tree:
//! `to_string`/`to_string_pretty` render `T: Serialize`, and
//! `from_str`/`from_slice` parse into `T: Deserialize`. Strings are
//! escaped/unescaped per RFC 8259 including `\uXXXX` surrogate pairs;
//! floats print through Rust's shortest-roundtrip `Display`.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.to_string())
    }
}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Render `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parse JSON bytes (must be UTF-8) into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --- printer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {other:?} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("non-ASCII in \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("bad \\u escape".into()))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-ASCII number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_collections() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");

        let f: f64 = from_str("2.5").unwrap();
        assert_eq!(f, 2.5);
        assert_eq!(to_string(&f).unwrap(), "2.5");
        // Floats keep a marker so they re-parse as floats.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");

        let s: String = from_str(r#""a\"b\\c\ndé😀""#).unwrap();
        assert_eq!(s, "a\"b\\c\ndé😀");
        let round: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(round, s);

        let none: Option<u8> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn pretty_print_indents() {
        let v = vec![vec![1u8], vec![2]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  ["));
        let back: Vec<Vec<u8>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
