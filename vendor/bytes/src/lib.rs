//! Offline stand-in for `bytes` (see `vendor/README.md`).
//!
//! `Bytes` is an immutable, cheaply-cloneable byte buffer (`Arc<[u8]>`
//! here — clones share the allocation just like the real crate's common
//! case) and `BytesMut` a growable builder with the little-endian
//! `put_*` writers the binary format uses.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A new buffer holding `range` of this one (copies).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes(Arc::from(&self.0[range]))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes(Arc::from(v.as_bytes()))
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// The writer half of the `bytes` buffer traits (the subset the
/// workspace's binary formats use — unconditional little-endian puts).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
