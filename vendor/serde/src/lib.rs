//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Instead of upstream serde's visitor architecture, this vendored
//! implementation uses a concrete JSON-shaped [`Value`] tree as the data
//! model: `Serialize` renders a value *to* the tree, `Deserialize`
//! rebuilds one *from* it, and `serde_json` is just a printer/parser for
//! the tree. The `#[derive(Serialize, Deserialize)]` macros (re-exported
//! from `serde_derive`) cover what the workspace uses: named-field
//! structs and enums with unit or struct variants, plus the
//! `#[serde(default)]` and `#[serde(skip, default)]` field attributes.
//! Unknown fields are ignored on deserialize, matching upstream's
//! default.

pub use serde_derive::{Deserialize, Serialize};

/// The serialized data model: a JSON-shaped tree.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so
/// serialized output is deterministic and mirrors field declaration
/// order, like upstream serde's struct serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object; `None` for other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// Build an error from a message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render to the [`Value`] data model.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Upstream-compatible alias: with a concrete data model every
/// deserializable type is owned.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// --- primitives -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let out = match v {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
                        // Tolerate integral floats (e.g. "1e3").
                        if *f >= 0.0 && *f <= u64::MAX as f64 {
                            <$t>::try_from(*f as u64).ok()
                        } else if *f < 0.0 && *f >= i64::MIN as f64 {
                            <$t>::try_from(*f as i64).ok()
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        v
                    ))
                })
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Float(*self as f64)
                } else {
                    // JSON has no NaN/Inf; match serde_json's lossy `null`.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Upstream serde's representation: {"secs": u64, "nanos": u32}.
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<std::time::Duration, DeError> {
        let secs = v
            .get("secs")
            .ok_or_else(|| DeError::new("Duration: missing `secs`"))?;
        let nanos = v
            .get("nanos")
            .ok_or_else(|| DeError::new("Duration: missing `nanos`"))?;
        Ok(std::time::Duration::new(
            u64::from_value(secs)?,
            u32::from_value(nanos)?,
        ))
    }
}

// --- composites -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items.try_into().map_err(|_| {
            DeError::new(format!("expected array of length {N}, got {len}"))
        })
    }
}

macro_rules! impl_tuple {
    ($len:literal: $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => Ok((
                        $($t::from_value(&items[$idx])?,)+
                    )),
                    other => Err(DeError::new(format!(
                        concat!("expected ", $len, "-tuple, got {:?}"),
                        other
                    ))),
                }
            }
        }
    };
}
impl_tuple!(2: A.0, B.1);
impl_tuple!(3: A.0, B.1, C.2);
impl_tuple!(4: A.0, B.1, C.2, D.3);
impl_tuple!(5: A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6: A.0, B.1, C.2, D.3, E.4, F.5);

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: std::fmt::Display,
{
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (upstream HashMap order is
        // arbitrary; deterministic is strictly more useful here).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}
