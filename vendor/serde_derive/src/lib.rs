//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde`'s `Value`-tree data model, without `syn`/`quote`:
//! a small hand-rolled token walker extracts just what the generated
//! code needs — the item's name, its field or variant names, and the
//! `#[serde(default)]` / `#[serde(skip)]` flags. Supported shapes are
//! exactly what the workspace derives on: non-generic named-field
//! structs, and enums whose variants are units or named-field structs.
//! Anything else is a compile error with a pointed message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name plus serde flags.
struct Field {
    name: String,
    default: bool,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// `None` for a unit variant, field list for a struct variant.
    fields: Option<Vec<Field>>,
}

/// The parsed item.
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => struct_serialize(name, fields),
        Item::Enum { name, variants } => enum_serialize(name, variants),
    };
    code.parse().expect("serde_derive: generated code must parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => struct_deserialize(name, fields),
        Item::Enum { name, variants } => enum_deserialize(name, variants),
    };
    code.parse().expect("serde_derive: generated code must parse")
}

// --- parsing ----------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => panic!("serde_derive: expected struct or enum, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported; derive on `{name}` by hand");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive (vendored): tuple structs are not supported (`{name}`)")
        }
        other => panic!("serde_derive: expected {{...}} body for `{name}`, got {other:?}"),
    };

    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let (mut default, mut skip) = (false, false);
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(flag) = t {
                            match flag.to_string().as_str() {
                                "default" => default = true,
                                "skip" => skip = true,
                                other => panic!(
                                    "serde_derive (vendored): unsupported #[serde({other})]"
                                ),
                            }
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    (default, skip)
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)` etc.
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parse `name: Type, ...` named fields, recording serde flags and
/// skipping the type tokens (the generated code never needs them).
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (default, skip) = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            default,
            skip,
        });
    }
    fields
}

/// Advance past a type, stopping at a top-level `,` (consumed) or the
/// end. Tracks `<...>` nesting; parens/brackets arrive as single groups.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive (vendored): tuple variants are not supported (`{name}`)")
            }
            _ => None,
        };
        // Consume the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --- codegen ----------------------------------------------------------

fn push_field_ser(out: &mut String, fields: &[Field], access_prefix: &str) {
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value({p}{n})));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
}

fn push_field_de(out: &mut String, fields: &[Field], source: &str, context: &str) {
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            out.push_str(&format!(
                "{n}: match {src}.get(\"{n}\") {{ \
                 Some(__f) => ::serde::Deserialize::from_value(__f)?, \
                 None => ::std::default::Default::default() }},\n",
                n = f.name,
                src = source,
            ));
        } else {
            // Missing fields read as Null: `Option` fields become `None`
            // (matching how the workspace's corpora tolerate older
            // payloads); everything else reports a missing-field error.
            out.push_str(&format!(
                "{n}: match {src}.get(\"{n}\") {{ \
                 Some(__f) => ::serde::Deserialize::from_value(__f)?, \
                 None => ::serde::Deserialize::from_value(&::serde::Value::Null) \
                   .map_err(|_| ::serde::DeError::new(\
                     \"missing field `{n}` in {ctx}\"))? }},\n",
                n = f.name,
                src = source,
                ctx = context,
            ));
        }
    }
}

fn struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    push_field_ser(&mut body, fields, "&self.");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         {body}\
         ::serde::Value::Object(__fields)\n\
         }}\n}}\n"
    )
}

fn struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    push_field_de(&mut body, fields, "__v", name);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         if !matches!(__v, ::serde::Value::Object(_)) {{\n\
         return ::std::result::Result::Err(::serde::DeError::new(\
         \"expected object for struct {name}\"));\n\
         }}\n\
         ::std::result::Result::Ok({name} {{\n{body}}})\n\
         }}\n}}\n"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                v = v.name,
            )),
            Some(fields) => {
                let binds: Vec<String> =
                    fields.iter().map(|f| f.name.clone()).collect();
                let mut body = String::new();
                push_field_ser(&mut body, fields, "");
                arms.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => {{\n\
                     let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                     {body}\
                     ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Object(__fields))])\n\
                     }}\n",
                    v = v.name,
                    binds = binds.join(", "),
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for v in variants {
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name,
            )),
            Some(fields) => {
                let mut body = String::new();
                push_field_de(&mut body, fields, "__inner", &format!("{name}::{}", v.name));
                struct_arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{\n{body}}}),\n",
                    v = v.name,
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"unknown {name} variant `{{__other}}`\"))),\n\
         }},\n\
         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
         let (__key, __inner) = &__entries[0];\n\
         match __key.as_str() {{\n\
         {struct_arms}\
         __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"unknown {name} variant `{{__other}}`\"))),\n\
         }}\n\
         }}\n\
         __other => ::std::result::Result::Err(::serde::DeError::new(::std::format!(\
         \"expected {name} enum value, got {{__other:?}}\"))),\n\
         }}\n\
         }}\n}}\n"
    )
}
