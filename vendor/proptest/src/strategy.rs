//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use.

use crate::collection::SizeRange;
use rand::rngs::StdRng;
use rand::Rng;

/// Derive a stable 64-bit seed from a test's fully qualified name
/// (FNV-1a; only stability matters, not distribution quality).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A generator of values for property tests.
///
/// Object-safe core (`generate`) plus `where Self: Sized` combinators,
/// mirroring upstream proptest's API shape. No shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retain only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: no value satisfied `{}` in 1000 draws", self.reason);
    }
}

/// Always the same (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag: f64 = rng.gen_range(0.0f64..1e12);
        if rng.gen() {
            mag
        } else {
            -mag
        }
    }
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `prop::bool::ANY`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

// --- ranges -----------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// --- tuples and vecs of strategies ------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// A fixed-shape vector of strategies generates element-wise (used for
/// `(Just(x), vec_of_boxed_strategies)` shapes).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof!: zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total");
    }
}

// --- regex-literal string strategies ----------------------------------

/// One parsed regex atom: a set of candidate chars plus a repeat range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the `[class]{m,n}` / `.` / literal grammar used by the repo's
/// string strategies (no escapes, no alternation, no groups).
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    // `a-z` range (a trailing `-` right before `]` is a
                    // literal, but the repo's classes never use one).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend(lo..=hi);
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                set
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated quantifier") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty class in {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = rng.gen_range(atom.min..=atom.max);
            for _ in 0..count {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_strategy_respects_class_and_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = "[a-z0-9]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[ -~]{0,12}".generate(&mut rng);
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));

            let u = "[a-z@# ]{0,60}".generate(&mut rng);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '@' || c == '#' || c == ' '));
        }
    }

    #[test]
    fn union_honors_weights_and_vec_sizes_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let union = crate::prop_oneof![4 => Just(0u8), 1 => Just(1u8)];
        let ones = (0..5000).filter(|_| union.generate(&mut rng) == 1).count();
        assert!((700..1400).contains(&ones), "{ones}");

        let vecs = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..200 {
            let v = vecs.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (2usize..=6).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }
}
