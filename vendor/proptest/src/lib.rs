//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Covers the subset the workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_filter`/`boxed`, strategies for
//! integer and float ranges, regex-literal `&str` strategies (the
//! `[class]{m,n}` grammar the tests use), tuples, `Just`, `any`,
//! `prop::collection::vec`, weighted `prop_oneof!`, and the `proptest!`
//! test macro with `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Unlike upstream there is no shrinking and no failure persistence:
//! each test function derives a deterministic RNG from its own name, so
//! failures reproduce exactly on re-run, which is what the repo's tests
//! rely on (seeds are never read from `proptest-regressions/`).

pub mod strategy;

// Re-exported so `proptest!` expansions resolve the RNG through
// `$crate` even in crates that do not depend on `rand` directly.
#[doc(hidden)]
pub use rand;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// `prop::collection` et al., mirroring upstream's module paths.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Anything convertible to a size range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        /// Inclusive upper bound.
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `prop::bool`.
pub mod bool {
    /// The uniform bool strategy.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// `prop::num` namespace placeholder (ranges implement `Strategy`
/// directly; nothing is needed here for the workspace).
pub mod num {}

/// The prelude, matching the imports the workspace does via
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` module tree (`prop::collection::vec`,
    /// `prop::bool::ANY`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Assert inside a `proptest!` body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current generated case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` deterministic
/// generated inputs (the RNG seed derives from the test name, so a
/// failure reproduces on the next run).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed = $crate::strategy::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                        __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    // One closure per case so `prop_assume!` can bail
                    // with a plain `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                    })();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}
