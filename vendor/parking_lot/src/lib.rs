//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment for this repository has no access to crates.io,
//! so the handful of external dependencies are vendored as minimal
//! API-compatible implementations (see `vendor/README.md`). This one
//! wraps the std lock types and strips poisoning, which is the only
//! behavioral difference the workspace relies on.

use std::sync;

/// A mutex that hands back the data even if a holder panicked.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock that hands back the data even if a holder
/// panicked.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock (never poisons).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquire the exclusive write lock (never poisons).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}
