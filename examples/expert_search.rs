//! The paper's motivating scenario (§1): searching Twitter-like data for
//! American-football expertise. Compares the Pal & Counts baseline with
//! e# on the showcase queries and reports what expansion recovered —
//! including experts hidden behind surface variants like `niners`.
//!
//! ```sh
//! cargo run --example expert_search
//! ```

use esharp_eval::{Crowd, EvalScale, Testbed};

fn main() {
    let tb = Testbed::build(EvalScale::Small, 49);
    let queries = [
        "49ers",
        "49ers draft",
        "niners",
        "bluetooth speakers",
        "dow futures",
        "diabetes",
        "world war i",
        "sarah palin",
    ];

    println!(
        "{:<20} {:>9} {:>9} {:>10} {:>10}  expansion",
        "query", "base hits", "e# hits", "base prec", "e# prec"
    );
    for query in queries {
        let baseline = tb.esharp.search_baseline(&tb.corpus, query);
        let expanded = tb.esharp.search(&tb.corpus, query);
        let precision = |experts: &[esharp_expert::ExpertResult]| {
            if experts.is_empty() {
                return f64::NAN;
            }
            let relevant = experts
                .iter()
                .filter(|e| Crowd::ground_truth(&tb.world, &tb.corpus, query, e.user))
                .count();
            relevant as f64 / experts.len() as f64
        };
        println!(
            "{:<20} {:>9} {:>9} {:>10.2} {:>10.2}  {}",
            query,
            baseline.experts.len(),
            expanded.experts.len(),
            precision(&baseline.experts),
            precision(&expanded.experts),
            if expanded.expansion.len() > 1 {
                format!("+{} related terms", expanded.expansion.len() - 1)
            } else {
                "(none)".to_string()
            }
        );
    }

    // Show who expansion recovered for the flagship query.
    let query = "49ers";
    let baseline = tb.esharp.search_baseline(&tb.corpus, query);
    let expanded = tb.esharp.search(&tb.corpus, query);
    let baseline_users: Vec<u32> = baseline.experts.iter().map(|e| e.user).collect();
    println!("\nexperts only e# finds for {query:?}:");
    for e in &expanded.experts {
        if !baseline_users.contains(&e.user) {
            let u = tb.corpus.user(e.user);
            println!("  @{:<24} {}", u.handle, u.description);
        }
    }
}
