//! Inspect the offline stage: convergence (Figure 5), community sizes
//! (Figure 6), and the communities around "49ers" (Figure 7).
//!
//! ```sh
//! cargo run --release --example offline_pipeline
//! ```

use esharp_eval::experiments::figures;
use esharp_eval::{EvalScale, Testbed};

fn main() {
    let tb = Testbed::build(EvalScale::Small, 7);

    println!("{}", figures::fig5(&tb).render());
    println!("{}", figures::fig6(&tb).render());
    match figures::fig7(&tb, "49ers", 3) {
        Some(fig7) => println!("{}", fig7.render()),
        None => println!("'49ers' did not survive the support filter at this scale"),
    }

    println!("== Stage statistics (Table 9 shape) ==");
    for stage in &tb.artifacts.stages {
        println!("{stage}");
    }
}
