//! Quickstart: build e# end to end on a small synthetic world and search
//! for experts.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use esharp_core::{run_offline, Esharp, EsharpConfig};
use esharp_microblog::{generate_corpus, CorpusConfig};
use esharp_querylog::{AggregatedLog, LogConfig, LogGenerator, World, WorldConfig};

fn main() {
    // 1. Ground truth world (stands in for reality): topics, keyword
    //    variants, URLs. Includes the paper's running examples.
    let world = World::generate(&WorldConfig::tiny(2016));
    println!(
        "world: {} domains, {} terms, {} urls",
        world.num_domains(),
        world.terms.len(),
        world.urls.len()
    );

    // 2. Offline: synthetic search log → similarity graph → communities →
    //    domain collection (Figure 1, left).
    let events = LogGenerator::new(&world, &LogConfig::tiny(2016));
    let log = AggregatedLog::from_events(events, world.terms.len());
    let config = EsharpConfig::tiny();
    let artifacts = run_offline(&log, &world, &config).expect("offline pipeline");
    println!(
        "offline: {} graph nodes, {} edges, {} expertise domains ({} clustering iterations)",
        artifacts.graph.num_nodes(),
        artifacts.graph.num_edges(),
        artifacts.domains.len(),
        artifacts.outcome.iterations(),
    );

    // 3. Online: microblog corpus → expert search with query expansion
    //    (Figure 1, right).
    let corpus = generate_corpus(&world, &CorpusConfig::tiny(2016));
    let esharp = Esharp::new(artifacts.domains, config);

    let query = "49ers";
    let baseline = esharp.search_baseline(&corpus, query);
    let expanded = esharp.search(&corpus, query);
    println!("\nquery: {query:?}");
    println!("expansion: {:?}", expanded.expansion);
    println!(
        "baseline matched {} tweets → {} experts; e# matched {} tweets → {} experts",
        baseline.matched_tweets,
        baseline.experts.len(),
        expanded.matched_tweets,
        expanded.experts.len()
    );
    println!("\ntop e# experts:");
    for result in expanded.experts.iter().take(5) {
        let user = corpus.user(result.user);
        println!(
            "  @{:<24} score {:+.2}  (TS {:.2} MI {:.2} RI {:.2})  {} followers — {}",
            user.handle,
            result.score,
            result.features.ts,
            result.features.mi,
            result.features.ri,
            user.followers,
            user.description
        );
    }
}
