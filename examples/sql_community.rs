//! Run the paper's Figure 4 community-detection SQL *literally* on the
//! bundled relational engine: register a graph table, a communities
//! table and the ModulGain UDF, then execute the two declarative
//! statements and print every intermediate relation.
//!
//! ```sh
//! cargo run --example sql_community
//! ```

use esharp_community::{cluster_sql, SqlClusterConfig, NEIGHBORS_SQL, PARTITIONS_SQL};
use esharp_graph::relation_io::{assignment_to_table, multigraph_to_table};
use esharp_graph::MultiGraph;
use esharp_relation::{run_sql, Catalog, DataType, ExecContext, FnUdf, RelError, Value};
use std::sync::Arc;

fn main() {
    // The Figure 3 example, roughly: two dense groups (football/NFL/49ers
    // and San Francisco/California/SF Bridge) weakly linked.
    let graph = MultiGraph::from_edges(
        6,
        vec![
            (0, 1, 4), // football – nfl
            (0, 2, 3), // football – 49ers
            (1, 2, 4), // nfl – 49ers
            (2, 3, 1), // 49ers – san francisco
            (3, 4, 3), // san francisco – california
            (3, 5, 3), // san francisco – sf bridge
            (4, 5, 2), // california – sf bridge
        ],
    );
    let names = ["football", "nfl", "49ers", "san francisco", "california", "sf bridge"];

    // --- Run one iteration by hand to show the SQL plumbing.
    let catalog = Catalog::new();
    catalog.register("graph", multigraph_to_table(&graph).unwrap());
    let singletons: Vec<u32> = (0..6).collect();
    catalog.register("communities", assignment_to_table(&singletons).unwrap());

    let mut ctx = ExecContext::new(catalog);
    let stats = esharp_community::PartitionStats::compute(
        &graph,
        &esharp_community::Assignment::singletons(6),
    );
    let degree_sum = Arc::new(stats.degree_sum.clone());
    let between = Arc::new(stats.between_edges.clone());
    let m_g = stats.total_edges as f64;
    ctx.udfs.register(Arc::new(FnUdf::new(
        "ModulGain",
        DataType::Float,
        move |args: &[Value]| {
            let (Some(a), Some(b)) = (args[0].as_int(), args[1].as_int()) else {
                return Err(RelError::Eval("ModulGain expects ints".into()));
            };
            let (a, b) = (a as u32, b as u32);
            let m12 = *between.get(&(a.min(b), a.max(b))).unwrap_or(&0) as f64;
            let d1 = *degree_sum.get(&a).unwrap_or(&0) as f64;
            let d2 = *degree_sum.get(&b).unwrap_or(&0) as f64;
            Ok(Value::Float(esharp_community::delta_mod(m12, d1, d2, m_g)))
        },
    )));

    println!("-- Step 1 (Figure 4): neighborhood creation\n{NEIGHBORS_SQL}\n");
    let neighbors = run_sql(NEIGHBORS_SQL, &ctx).unwrap();
    println!("{neighbors}");
    ctx.catalog.register("neighbors", neighbors);

    println!("-- Step 2 (Figure 4): neighborhood separation\n{PARTITIONS_SQL}\n");
    let partitions = run_sql(PARTITIONS_SQL, &ctx).unwrap();
    println!("{partitions}");

    // --- And the full loop to convergence.
    let outcome = cluster_sql(&graph, &SqlClusterConfig::default()).unwrap();
    println!("-- Full SQL clustering loop:");
    for stat in &outcome.trace {
        println!(
            "iteration {}: {} communities, TMod {:.2}",
            stat.iteration, stat.communities, stat.total_modularity
        );
    }
    println!("\nfinal communities:");
    let groups = outcome.assignment.groups();
    let mut keys: Vec<_> = groups.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let members: Vec<&str> = groups[&key].iter().map(|&n| names[n as usize]).collect();
        println!("  {{{}}}", members.join(", "));
    }
}
